//! HeatViT reproduction suite root crate; see `heatvit` (crates/core) for the library API.
