//! HeatViT reproduction suite root crate.
//!
//! This package exists so `cargo build`/`cargo test` at the repository root
//! exercise the whole workspace; the library API lives in the [`heatvit`]
//! crate (`crates/core`), re-exported here.
//!
//! ```
//! use heatvit_suite::heatvit::{Engine, InferenceModel};
//! use heatvit_suite::heatvit::vit::{ViTConfig, VisionTransformer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
//! assert_eq!(Engine::builder(model).build().model().variant(), "dense");
//! ```

#![warn(missing_docs)]

pub use heatvit;
