//! The HeatViT training objective (paper Eq. 20).
//!
//! The full loss is `(1 − α)·CE + α·T²·KL(teacher ‖ student) + β·L_ratio`,
//! where `L_ratio` penalizes each selector's executed keep fraction away
//! from its per-stage target, weighted by the share of model compute that
//! selector governs — the *latency-aware* part of the sparsity loss: a
//! selector sitting in front of many (or expensive) blocks moves on-device
//! latency more per kept token, so missing its target costs more.

use heatvit_fpga::{FpgaCycleModel, Precision};
use heatvit_nn::{Tape, Var};
use heatvit_tensor::Tensor;
use heatvit_vit::flops::{BlockComplexity, BlockLayer};
use heatvit_vit::ViTConfig;

/// Sharpness of the differentiable threshold surrogate: the executed keep
/// fraction `#{s > 0.5}/N` is estimated as `mean(σ((s − 0.5)/T))` with this
/// `T`. Small enough that the estimate tracks the hard count once scores
/// move a few percent off the threshold, large enough that near-threshold
/// tokens still receive gradient.
pub const THRESHOLD_SURROGATE_TEMP: f32 = 0.1;

/// Asymmetry of the rank-target MSE: errors on tokens the budget wants
/// *kept* weigh this much more than errors on tokens it wants pruned.
///
/// Because keep decisions are image-adaptive, a boundary token is in the
/// kept set for some images and out for others; under a symmetric pull its
/// score equilibrates at its membership probability, which leaves tokens
/// with 50/50 membership *below* the 0.5 inference threshold and the
/// executed keep rate systematically under the budget. Weighting the
/// keep-side pull by `ψ` moves the equilibrium to `ψp / (1 + (ψ−1)p)`, so a
/// boundary token clears the threshold once its membership probability
/// exceeds `1/(ψ+1)` — with `ψ = 1.5`, tokens kept in at least ~40 % of
/// images survive thresholding, cancelling the undershoot.
pub const KEEP_PULL_BIAS: f32 = 1.5;

/// How the per-selector latency weights `w_s` of the Eq. 20 penalty are
/// derived from the model architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyWeights {
    /// Weight each selector by the share of dense backbone MACs its
    /// governed blocks execute (block count × per-block MACs at full
    /// tokens) — the hardware-agnostic proxy, and the historical default.
    #[default]
    MacShare,
    /// Weight each selector by the predicted accelerator cycles of its
    /// governed blocks under the default ZCU102 [`FpgaCycleModel`], costed
    /// *at the keep-target-implied token schedule* (cumulative product of
    /// the per-stage targets, package token included). Unlike the MAC
    /// share — which at full tokens is constant per block, reducing to
    /// governed-block count — this sees tile quantization, pipeline fill,
    /// and vector-unit work at the token counts each stage will actually
    /// run, so later selectors (operating on fewer tokens) are relatively
    /// down-weighted: missing an early stage's target moves real device
    /// latency more.
    FpgaCycles,
}

/// Predicted accelerator cycles of one encoder block at `tokens` tokens on
/// the default cycle model (float precision — training concerns the float
/// student).
fn fpga_block_cycles(config: &ViTConfig, tokens: usize) -> u64 {
    let model = FpgaCycleModel::default();
    let mut cycles = 0;
    for layer in BlockLayer::ALL {
        cycles += model
            .gemm_cycles(layer.gemm_shape(config, tokens), Precision::Float)
            .total();
    }
    cycles + model.vector_cycles(config, tokens)
}

/// The Eq. 20 latency-sparsity penalty, precomputed for one selector layout.
///
/// `penalty = Σ_s w_s · [(keep̂_s − target_s)² + λ·spread_s]`, with `w_s`
/// the fraction of dense backbone MACs executed by the blocks selector `s`
/// governs (its own block up to the next selector), normalized to mean 1 so
/// `β` keeps the same magnitude regardless of how many selectors are
/// installed.
///
/// `keep̂_s` is a sharp-sigmoid estimate
/// (`mean(σ((s − 0.5) / `[`THRESHOLD_SURROGATE_TEMP`]`))`) of the fraction
/// of tokens whose exact keep score clears the 0.5 decision threshold —
/// the keep rate the deterministic inference path (and the accelerator)
/// actually executes, which is the paper's `D̂` once training converges.
/// Penalizing a plain score *mean* instead has a degenerate optimum where
/// every score settles uniformly at the target probability and the
/// threshold then prunes nothing.
///
/// `spread_s` is the decisiveness term: the per-token MSE between the
/// scores and the hard decision the keep budget currently implies (the top
/// `⌈target·N⌉` tokens by score → 1, the rest → 0). The mean term alone
/// gives every token an almost identical gradient, so scores drift *as a
/// pack* and saturate on one side of the threshold; the rank-assigned
/// targets break that symmetry, bimodalize the scores, and pin the
/// thresholded count at the budget. Which tokens land in the kept set is
/// decided by the current score ranking — initially arbitrary, then
/// refined by the task gradient as pruning starts to bite.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySparsityLoss {
    targets: Vec<f32>,
    weights: Vec<f32>,
    decisiveness_weight: f32,
}

impl LatencySparsityLoss {
    /// Builds the penalty for selectors at `selector_blocks` (sorted, as
    /// returned by `PrunedViT::selector_blocks`) with one per-stage keep
    /// target each and the decisiveness weight `λ`, weighting stages by
    /// dense MAC share ([`LatencyWeights::MacShare`]).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != selector_blocks.len()`, a block index is
    /// out of range or unsorted, a target is outside `(0, 1]`, or
    /// `decisiveness_weight < 0`.
    pub fn new(
        config: &ViTConfig,
        selector_blocks: &[usize],
        targets: &[f32],
        decisiveness_weight: f32,
    ) -> Self {
        Self::with_latency_weights(
            config,
            selector_blocks,
            targets,
            decisiveness_weight,
            LatencyWeights::MacShare,
        )
    }

    /// [`LatencySparsityLoss::new`] with an explicit latency-weighting
    /// mode: [`LatencyWeights::FpgaCycles`] replaces the MAC-share proxy
    /// with predicted accelerator cycles at the keep-target-implied token
    /// schedule.
    ///
    /// # Panics
    ///
    /// Same conditions as [`LatencySparsityLoss::new`].
    pub fn with_latency_weights(
        config: &ViTConfig,
        selector_blocks: &[usize],
        targets: &[f32],
        decisiveness_weight: f32,
        mode: LatencyWeights,
    ) -> Self {
        assert!(
            decisiveness_weight >= 0.0,
            "decisiveness weight must be non-negative"
        );
        assert_eq!(
            selector_blocks.len(),
            targets.len(),
            "one keep target per selector required"
        );
        for &t in targets {
            assert!(t > 0.0 && t <= 1.0, "keep targets must be in (0, 1]");
        }
        let mut weights = Vec::with_capacity(selector_blocks.len());
        let mut cumulative = 1.0f32;
        for (i, &block) in selector_blocks.iter().enumerate() {
            assert!(block < config.depth, "selector block out of range");
            if i + 1 < selector_blocks.len() {
                assert!(
                    selector_blocks[i + 1] > block,
                    "selector blocks must be strictly increasing"
                );
            }
            let end = selector_blocks.get(i + 1).copied().unwrap_or(config.depth);
            cumulative *= targets[i];
            let per_block = match mode {
                // Every block runs the same MACs at full tokens, so the
                // governed share is block-count × the per-block cost.
                LatencyWeights::MacShare => {
                    BlockComplexity::new(config, config.num_tokens()).total() as f32
                }
                // Cycles at the token count this stage's blocks will run
                // once every stage hits its target: the cumulative keep
                // over the patch tokens, plus class and package tokens
                // (the `ModelComplexity::with_stage_keep_ratios`
                // convention).
                LatencyWeights::FpgaCycles => {
                    let kept = (cumulative * config.num_patches() as f32).ceil() as usize;
                    let tokens = kept + 1 + usize::from(cumulative < 1.0);
                    fpga_block_cycles(config, tokens) as f32
                }
            };
            weights.push((end - block) as f32 * per_block);
        }
        let mean = weights.iter().sum::<f32>() / weights.len().max(1) as f32;
        if mean > 0.0 {
            for w in &mut weights {
                *w /= mean;
            }
        }
        Self {
            targets: targets.to_vec(),
            weights,
            decisiveness_weight,
        }
    }

    /// The per-stage keep targets.
    pub fn targets(&self) -> &[f32] {
        &self.targets
    }

    /// The normalized latency weights (mean 1 across selectors).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Number of selectors the penalty covers.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` when no selectors are covered (the penalty is then the
    /// constant 0).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The decisiveness weight `λ`.
    pub fn decisiveness_weight(&self) -> f32 {
        self.decisiveness_weight
    }

    /// Records the penalty on the tape from one exact keep-score vector per
    /// selector (`PrunedTrainOutput::selector_keep_scores` — `[N]` nodes of
    /// per-token keep probabilities).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the configured selector
    /// count.
    pub fn penalty(&self, tape: &mut Tape, keep_scores: &[Var]) -> Var {
        assert_eq!(
            keep_scores.len(),
            self.targets.len(),
            "one keep-score vector per selector required"
        );
        let mut total = tape.scalar(0.0);
        for ((&s, &t), &w) in keep_scores
            .iter()
            .zip(self.targets.iter())
            .zip(self.weights.iter())
        {
            // Differentiable estimate of the thresholded keep fraction.
            let shifted = tape.add_scalar(s, -0.5);
            let sharpened = tape.scale(shifted, 1.0 / THRESHOLD_SURROGATE_TEMP);
            let indicator = tape.sigmoid(sharpened);
            let keep_est = tape.mean_all(indicator);
            let target = tape.scalar(t);
            let diff = tape.sub(keep_est, target);
            let mut term = tape.mul(diff, diff);
            if self.decisiveness_weight > 0.0 {
                let rank_targets = budget_rank_targets(tape.value(s), t);
                // Asymmetric MSE: mean(ψ_i · (s_i − t_i)²) with ψ_i =
                // KEEP_PULL_BIAS on kept targets, 1 on pruned ones,
                // normalized to mean 1 so λ keeps its scale.
                let pulls: Vec<f32> = rank_targets
                    .data()
                    .iter()
                    .map(|&t| if t > 0.5 { KEEP_PULL_BIAS } else { 1.0 })
                    .collect();
                let pull_mean = pulls.iter().sum::<f32>() / pulls.len().max(1) as f32;
                let pulls = Tensor::from_vec(
                    pulls.iter().map(|p| p / pull_mean).collect(),
                    rank_targets.dims(),
                );
                let neg_targets = rank_targets.scale(-1.0);
                let err = tape.add_const(s, neg_targets);
                let sq = tape.mul(err, err);
                let weighted_sq = tape.mul_const(sq, pulls);
                let rank_mse = tape.mean_all(weighted_sq);
                let weighted_mse = tape.scale(rank_mse, self.decisiveness_weight);
                term = tape.add(term, weighted_mse);
            }
            let weighted = tape.scale(term, w);
            total = tape.add(total, weighted);
        }
        total
    }
}

/// The hard `{0, 1}` targets the keep budget implies for one score vector:
/// the top `⌈target·N⌉` tokens by current score get 1, the rest 0 (at least
/// one token is always kept, matching the selector's keep-at-least-one
/// rule).
fn budget_rank_targets(scores: &Tensor, target_keep: f32) -> Tensor {
    let n = scores.numel();
    let k = ((target_keep * n as f32).round() as usize).clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores.data()[b].total_cmp(&scores.data()[a]));
    let mut targets = vec![0.0f32; n];
    for &i in &order[..k] {
        targets[i] = 1.0;
    }
    Tensor::from_vec(targets, scores.dims())
}

/// Softened teacher distribution for [`Tape::distill_kl`]: the row-wise
/// softmax of `teacher_logits / temperature`.
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn distillation_targets(teacher_logits: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    teacher_logits.scale(1.0 / temperature).softmax_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score_leaf(tape: &mut Tape, scores: &[f32]) -> Var {
        tape.leaf(Tensor::from_vec(scores.to_vec(), &[scores.len()]))
    }

    #[test]
    fn weights_favor_selectors_governing_more_blocks() {
        let cfg = ViTConfig::micro(8);
        // Selector at block 1 governs blocks 1–2; at block 3 governs 3–5.
        let loss = LatencySparsityLoss::new(&cfg, &[1, 3], &[0.7, 0.6], 0.0);
        assert_eq!(loss.len(), 2);
        assert!(loss.weights()[1] > loss.weights()[0]);
        let mean = loss.weights().iter().sum::<f32>() / 2.0;
        assert!((mean - 1.0).abs() < 1e-6, "weights must be mean-normalized");
    }

    #[test]
    fn fpga_cycle_weights_match_mac_share_at_full_keep() {
        // With all-1.0 targets every stage runs at full tokens, the
        // per-block cost is constant under both modes, and both normalize
        // to pure governed-block-count proportions.
        let cfg = ViTConfig::micro(8);
        let mac = LatencySparsityLoss::new(&cfg, &[1, 3], &[1.0, 1.0], 0.0);
        let fpga = LatencySparsityLoss::with_latency_weights(
            &cfg,
            &[1, 3],
            &[1.0, 1.0],
            0.0,
            LatencyWeights::FpgaCycles,
        );
        for (a, b) in mac.weights().iter().zip(fpga.weights()) {
            assert!(
                (a - b).abs() < 1e-5,
                "full-keep weights diverge: {a} vs {b}"
            );
        }
    }

    #[test]
    fn fpga_cycle_weights_discount_late_selectors_under_pruning() {
        // At [0.5, 0.5] the second selector's blocks run on a quarter of
        // the patch tokens; the cycle model sees that (the MAC-share proxy,
        // costed at full tokens, does not), so the late-to-early weight
        // ratio must shrink relative to MAC share.
        let cfg = ViTConfig::micro(8);
        let mac = LatencySparsityLoss::new(&cfg, &[1, 3], &[0.5, 0.5], 0.0);
        let fpga = LatencySparsityLoss::with_latency_weights(
            &cfg,
            &[1, 3],
            &[0.5, 0.5],
            0.0,
            LatencyWeights::FpgaCycles,
        );
        let mac_ratio = mac.weights()[1] / mac.weights()[0];
        let fpga_ratio = fpga.weights()[1] / fpga.weights()[0];
        assert!(
            fpga_ratio < mac_ratio,
            "fpga ratio {fpga_ratio} must fall below MAC-share ratio {mac_ratio}"
        );
        // Still mean-normalized.
        let mean = fpga.weights().iter().sum::<f32>() / 2.0;
        assert!((mean - 1.0).abs() < 1e-6);
    }

    #[test]
    fn penalty_is_small_at_target_and_grows_off_target() {
        let cfg = ViTConfig::micro(8);
        let loss = LatencySparsityLoss::new(&cfg, &[2], &[0.5], 0.0);
        let eval = |scores: &[f32]| {
            let mut tape = Tape::new();
            let s = score_leaf(&mut tape, scores);
            let p = loss.penalty(&mut tape, &[s]);
            tape.value(p).data()[0]
        };
        // Decisive scores keeping exactly half: surrogate ≈ hard count.
        let on_target = eval(&[0.95, 0.95, 0.05, 0.05]);
        let keep_all = eval(&[0.95, 0.95, 0.95, 0.95]);
        let keep_none = eval(&[0.05, 0.05, 0.05, 0.05]);
        assert!(on_target < 1e-3, "on-target penalty {on_target}");
        assert!(keep_all > 0.2, "keep-all penalty {keep_all}");
        assert!(keep_none > 0.2, "keep-none penalty {keep_none}");
    }

    #[test]
    fn decisiveness_term_penalizes_undecided_scores() {
        let cfg = ViTConfig::micro(8);
        let with_dec = LatencySparsityLoss::new(&cfg, &[2], &[0.5], 2.0);
        let without = LatencySparsityLoss::new(&cfg, &[2], &[0.5], 0.0);
        assert_eq!(with_dec.decisiveness_weight(), 2.0);
        let eval = |loss: &LatencySparsityLoss, scores: &[f32]| {
            let mut tape = Tape::new();
            let s = score_leaf(&mut tape, scores);
            let p = loss.penalty(&mut tape, &[s]);
            tape.value(p).data()[0]
        };
        // Undecided scores pay the λ·MSE(s, rank targets) surcharge: with a
        // 0.5 budget over [0.55, 0.55, 0.45, 0.45] the rank targets are
        // [1, 1, 0, 0], so the MSE is 0.45².
        let undecided = [0.55, 0.55, 0.45, 0.45];
        let surcharge = eval(&with_dec, &undecided) - eval(&without, &undecided);
        assert!((surcharge - 2.0 * 0.45 * 0.45).abs() < 0.01);
        // Decisive on-budget scores pay almost nothing extra.
        let decisive = [0.99, 0.99, 0.01, 0.01];
        assert!(eval(&with_dec, &decisive) - eval(&without, &decisive) < 0.05);
    }

    #[test]
    fn budget_rank_targets_keep_the_top_scores() {
        let scores = Tensor::from_vec(vec![0.2, 0.9, 0.6, 0.1], &[4]);
        let t = budget_rank_targets(&scores, 0.5);
        assert_eq!(t.data(), &[0.0, 1.0, 1.0, 0.0]);
        // The keep-at-least-one rule survives a tiny budget.
        let t = budget_rank_targets(&scores, 0.01);
        assert_eq!(t.data().iter().sum::<f32>(), 1.0);
        assert_eq!(t.data()[1], 1.0);
    }

    #[test]
    fn penalty_gradient_prunes_the_weakest_token_first() {
        let cfg = ViTConfig::micro(8);
        let loss = LatencySparsityLoss::new(&cfg, &[2], &[0.5], 0.0);
        let mut tape = Tape::new();
        // Keeping 3/4 with a target of 1/2: scores must come down.
        let s = score_leaf(&mut tape, &[0.95, 0.7, 0.55, 0.05]);
        let p = loss.penalty(&mut tape, &[s]);
        let grads = tape.backward(p);
        let g = grads.get(s).expect("scores must receive gradient");
        // All kept tokens push down (positive gradient under descent), and
        // the token nearest the threshold feels it the strongest.
        assert!(g.data()[2] > g.data()[1]);
        assert!(g.data()[1] > g.data()[0]);
        assert!(g.data()[2] > 0.0);
    }

    #[test]
    fn empty_layout_yields_constant_zero() {
        let cfg = ViTConfig::micro(8);
        let loss = LatencySparsityLoss::new(&cfg, &[], &[], 1.0);
        assert!(loss.is_empty());
        let mut tape = Tape::new();
        let p = loss.penalty(&mut tape, &[]);
        assert_eq!(tape.value(p).data(), &[0.0]);
    }

    #[test]
    fn distillation_targets_are_row_stochastic_and_softened() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, -1.0, 1.0, 1.0, 1.0], &[2, 3]);
        let sharp = distillation_targets(&logits, 1.0);
        let soft = distillation_targets(&logits, 4.0);
        for r in 0..2 {
            let sum: f32 = sharp.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Higher temperature flattens the distribution.
        assert!(soft.at(&[0, 0]) < sharp.at(&[0, 0]));
        assert!(soft.at(&[0, 2]) > sharp.at(&[0, 2]));
    }

    #[test]
    #[should_panic(expected = "one keep target per selector")]
    fn rejects_mismatched_targets() {
        LatencySparsityLoss::new(&ViTConfig::micro(8), &[1, 3], &[0.7], 0.0);
    }
}
