//! Per-epoch training telemetry.

use std::fmt;

/// Aggregated statistics of one training epoch.
///
/// Loss columns report *unweighted* per-sample means of each term; `loss` is
/// the composed objective actually differentiated
/// (`(1 − α)·ce + α·distill + β·sparsity`), so the composed column and the
/// raw terms can both be tracked across epochs.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Optimizer steps executed so far, across all epochs.
    pub steps: u64,
    /// Learning rate of the epoch's final optimizer step.
    pub lr: f32,
    /// Mean composed objective over the epoch's samples.
    pub loss: f32,
    /// Mean cross-entropy term (unweighted).
    pub ce: f32,
    /// Mean distillation KL term (unweighted; 0 when distillation is off).
    pub distill: f32,
    /// Mean latency-sparsity penalty (unweighted; 0 without selectors).
    pub sparsity: f32,
    /// Top-1 accuracy over the training samples (measured on the Gumbel
    /// training forward, so pruning noise is included).
    pub train_top1: f32,
    /// Top-1 accuracy over the validation set (deterministic inference
    /// path).
    pub val_top1: f32,
    /// Mean hard keep fraction per selector over the validation set, in
    /// block order (empty without selectors).
    pub mean_keep: Vec<f32>,
    /// Mean token count entering the final block on the validation set.
    pub final_tokens: f32,
    /// Validation inference throughput (images/s) measured by an
    /// [`heatvit::Engine::run_epoch`] pass over the epoch's model — the
    /// live counterpart of the MAC columns, so an epoch's accuracy cost can
    /// be read next to its measured speed. Wall-clock: excluded from
    /// equality (see the manual `PartialEq`), 0 when not measured.
    pub val_images_per_sec: f64,
}

/// Equality deliberately ignores `val_images_per_sec`: every other field is
/// a deterministic function of `(config, datasets, seed)` and the
/// determinism suite compares reports bitwise, while throughput is
/// wall-clock and never reproducible.
impl PartialEq for TrainReport {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.steps == other.steps
            && self.lr == other.lr
            && self.loss == other.loss
            && self.ce == other.ce
            && self.distill == other.distill
            && self.sparsity == other.sparsity
            && self.train_top1 == other.train_top1
            && self.val_top1 == other.val_top1
            && self.mean_keep == other.mean_keep
            && self.final_tokens == other.final_tokens
    }
}

impl TrainReport {
    /// Mean of the per-selector keep rates (`1.0` without selectors — a
    /// dense model keeps everything).
    pub fn overall_keep(&self) -> f32 {
        if self.mean_keep.is_empty() {
            return 1.0;
        }
        self.mean_keep.iter().sum::<f32>() / self.mean_keep.len() as f32
    }

    /// Header line matching [`TrainReport`]'s `Display` row format.
    pub fn table_header() -> String {
        format!(
            "{:>5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>18} {:>9}",
            "epoch",
            "lr",
            "loss",
            "ce",
            "distill",
            "sparsity",
            "train-top1",
            "val-top1",
            "keep-rate",
            "val-img/s"
        )
    }
}

impl fmt::Display for TrainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let keeps = if self.mean_keep.is_empty() {
            "dense".to_string()
        } else {
            self.mean_keep
                .iter()
                .map(|k| format!("{k:.3}"))
                .collect::<Vec<_>>()
                .join("/")
        };
        write!(
            f,
            "{:>5} {:>9.5} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.1}% {:>8.1}% {:>18} {:>9.1}",
            self.epoch,
            self.lr,
            self.loss,
            self.ce,
            self.distill,
            self.sparsity,
            self.train_top1 * 100.0,
            self.val_top1 * 100.0,
            keeps,
            self.val_images_per_sec
        )
    }
}

/// The full result of [`Trainer::fit`](crate::Trainer::fit): one report per
/// executed epoch plus run-level bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainRun {
    /// Per-epoch reports, in order.
    pub reports: Vec<TrainReport>,
    /// Total optimizer steps executed.
    pub steps: u64,
    /// `true` when the `max_steps` cap stopped the run before all epochs.
    pub capped: bool,
}

impl TrainRun {
    /// The final epoch's report.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no reports (never the case for a
    /// validated config).
    pub fn last(&self) -> &TrainReport {
        self.reports.last().expect("a fit produces >= 1 report")
    }

    /// Composed-loss improvement from the first to the last epoch
    /// (positive = the loss decreased).
    pub fn loss_improvement(&self) -> f32 {
        match (self.reports.first(), self.reports.last()) {
            (Some(first), Some(last)) => first.loss - last.loss,
            _ => 0.0,
        }
    }

    /// Per-selector keep rate averaged over the final `window` epochs
    /// (clamped to the number of reports) — a lower-variance estimate of the
    /// converged keep policy than the last epoch alone, since the rank
    /// targets keep jiggling boundary tokens while the optimizer is still
    /// stepping.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or the run produced no reports.
    pub fn converged_keep(&self, window: usize) -> Vec<f32> {
        assert!(window > 0, "window must be positive");
        assert!(!self.reports.is_empty(), "a fit produces >= 1 report");
        let tail = &self.reports[self.reports.len().saturating_sub(window)..];
        let selectors = tail[0].mean_keep.len();
        (0..selectors)
            .map(|s| tail.iter().map(|r| r.mean_keep[s]).sum::<f32>() / tail.len() as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(epoch: usize, loss: f32, keeps: Vec<f32>) -> TrainReport {
        TrainReport {
            epoch,
            steps: epoch as u64 + 1,
            lr: 1e-3,
            loss,
            ce: loss * 0.5,
            distill: loss * 0.3,
            sparsity: loss * 0.2,
            train_top1: 0.5,
            val_top1: 0.5,
            mean_keep: keeps,
            final_tokens: 12.0,
            val_images_per_sec: 100.0,
        }
    }

    #[test]
    fn equality_ignores_wall_clock_throughput() {
        let a = report(0, 1.0, vec![0.7]);
        let mut b = a.clone();
        b.val_images_per_sec = 999.0;
        assert_eq!(a, b);
        b.loss = 2.0;
        assert_ne!(a, b);
    }

    #[test]
    fn overall_keep_averages_selectors_and_defaults_dense() {
        assert_eq!(report(0, 1.0, vec![]).overall_keep(), 1.0);
        let r = report(0, 1.0, vec![0.8, 0.6]);
        assert!((r.overall_keep() - 0.7).abs() < 1e-6);
    }

    #[test]
    fn display_row_lines_up_with_header() {
        let header = TrainReport::table_header();
        let row = format!("{}", report(3, 1.25, vec![0.71, 0.58]));
        assert!(header.contains("keep-rate"));
        assert!(row.contains("0.710/0.580"));
    }

    #[test]
    fn loss_improvement_is_first_minus_last() {
        let run = TrainRun {
            reports: vec![report(0, 2.0, vec![]), report(1, 1.2, vec![])],
            steps: 2,
            capped: false,
        };
        assert!((run.loss_improvement() - 0.8).abs() < 1e-6);
        assert_eq!(run.last().epoch, 1);
    }

    #[test]
    fn converged_keep_averages_the_final_window() {
        let run = TrainRun {
            reports: vec![
                report(0, 2.0, vec![1.0, 1.0]),
                report(1, 1.5, vec![0.8, 0.6]),
                report(2, 1.2, vec![0.6, 0.4]),
            ],
            steps: 3,
            capped: false,
        };
        let keep = run.converged_keep(2);
        assert!((keep[0] - 0.7).abs() < 1e-6);
        assert!((keep[1] - 0.5).abs() < 1e-6);
        // A window larger than the run falls back to all reports.
        assert!((run.converged_keep(10)[0] - 0.8).abs() < 1e-6);
    }
}
