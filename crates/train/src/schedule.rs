//! Learned keep rates → stage schedule (the block-to-stage pipeline).
//!
//! After selector tuning, each installed selector has an *empirical*
//! per-stage keep rate (the mean hard keep fraction it executes on held-out
//! data). This module turns those measurements into a
//! [`PruningSchedule`] in the paper's cumulative notation, which
//! [`PruningSchedule::merge_similar`] then consolidates into stages
//! (Algorithm 1, Step 2) for comparison against hand-placed schedules.

use heatvit_selector::{PruningSchedule, SelectorPlacement};

/// Converts measured per-stage keep rates into a cumulative
/// [`PruningSchedule`].
///
/// `stage_keeps[i]` is the fraction of *incoming* patch tokens selector `i`
/// keeps (what [`crate::TrainReport::mean_keep`] reports); the cumulative
/// ratio at each placement is the running product. Measurements are clamped
/// into `(0, 1]` and made non-increasing, so noisy estimates (a stage
/// measuring `1.02` from ceil-rounding, say) still produce a valid
/// schedule.
///
/// # Panics
///
/// Panics if the slice lengths differ, `selector_blocks` is not strictly
/// increasing, or a measured keep rate is not positive.
pub fn learned_schedule(selector_blocks: &[usize], stage_keeps: &[f32]) -> PruningSchedule {
    assert_eq!(
        selector_blocks.len(),
        stage_keeps.len(),
        "one measured keep rate per selector required"
    );
    let mut placements = Vec::with_capacity(selector_blocks.len());
    let mut cumulative = 1.0f32;
    for (&block, &keep) in selector_blocks.iter().zip(stage_keeps.iter()) {
        assert!(keep > 0.0, "measured keep rates must be positive");
        cumulative = (cumulative * keep.min(1.0)).clamp(f32::MIN_POSITIVE, 1.0);
        placements.push(SelectorPlacement {
            block,
            target_keep: cumulative,
        });
    }
    PruningSchedule::new(placements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_ratios_are_running_products() {
        let s = learned_schedule(&[1, 3], &[0.7, 0.6]);
        assert_eq!(s.len(), 2);
        assert!((s.placements()[0].target_keep - 0.7).abs() < 1e-6);
        assert!((s.placements()[1].target_keep - 0.42).abs() < 1e-6);
    }

    #[test]
    fn noisy_over_unit_measurements_are_clamped() {
        let s = learned_schedule(&[0, 2, 4], &[1.02, 0.5, 1.0]);
        assert_eq!(s.placements()[0].target_keep, 1.0);
        assert!((s.placements()[1].target_keep - 0.5).abs() < 1e-6);
        // A stage keeping everything leaves the cumulative ratio flat.
        assert!((s.placements()[2].target_keep - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_measurement_yields_dense_schedule() {
        let s = learned_schedule(&[], &[]);
        assert!(s.is_empty());
        assert!((s.mean_keep(6) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn merges_adjacent_similar_learned_stages() {
        // Two nearly identical consecutive stages collapse into one under
        // the paper's 8.5 % tolerance; a genuinely deeper cut survives.
        let s = learned_schedule(&[1, 2, 4], &[0.72, 0.98, 0.55]);
        let merged = s.merge_similar(0.085);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.placements()[0].block, 1);
        assert_eq!(merged.placements()[1].block, 4);
    }

    #[test]
    #[should_panic(expected = "one measured keep rate per selector")]
    fn rejects_length_mismatch() {
        learned_schedule(&[1, 3], &[0.7]);
    }
}
