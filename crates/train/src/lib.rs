//! # heatvit-train
//!
//! The training subsystem of the HeatViT reproduction: DeiT-style
//! distillation plus the latency-aware sparsity loss (paper Eq. 20) over
//! `PrunedViT`'s differentiable forward.
//!
//! The pipeline mirrors the paper's training recipe:
//!
//! 1. [`Trainer::fit_dense`] trains (or fine-tunes) a dense
//!    [`VisionTransformer`](heatvit_vit::VisionTransformer) with plain
//!    cross-entropy — the frozen teacher.
//! 2. [`Trainer::fit`] tunes the token selectors of a
//!    [`PrunedViT`](heatvit_selector::PrunedViT) student under the composed
//!    objective `(1 − α)·CE + α·T²·KL(teacher ‖ student) + β·L_ratio`,
//!    where [`LatencySparsityLoss`] weights each selector's keep-rate error
//!    by the share of model compute it governs.
//! 3. [`learned_schedule`] converts the measured per-stage keep rates into
//!    a cumulative [`PruningSchedule`](heatvit_selector::PruningSchedule),
//!    which `merge_similar` consolidates into the paper's stage notation
//!    (Algorithm 1, Step 2) for comparison against hand-placed schedules.
//!
//! Every fit is bitwise deterministic in its configuration and seed: two
//! runs produce identical selector weights and identical [`TrainReport`]s.

#![warn(missing_docs)]

mod config;
mod loss;
mod report;
mod schedule;
mod trainer;

pub use config::TrainConfig;
pub use loss::{
    distillation_targets, LatencySparsityLoss, LatencyWeights, KEEP_PULL_BIAS,
    THRESHOLD_SURROGATE_TEMP,
};
pub use report::{TrainReport, TrainRun};
pub use schedule::learned_schedule;
pub use trainer::Trainer;
