//! # heatvit-train
//!
//! Training loops for the HeatViT reproduction: DeiT-style distillation and
//! the latency-aware sparsity loss (paper Eq. 20) over `PrunedViT`.
//!
//! Placeholder: the autograd substrate (`heatvit-nn`), the selector's
//! differentiable path (`PrunedViT::forward_train`), and the batched engine
//! (`heatvit::Engine`) are in place; the epoch loop, loss schedule, and
//! checkpointing land in a follow-up PR (see `ROADMAP.md` → Open items).

#![warn(missing_docs)]
