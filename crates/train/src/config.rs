//! Training hyper-parameters.

use crate::loss::LatencyWeights;

/// Hyper-parameters of one [`Trainer`](crate::Trainer) run.
///
/// The defaults mirror the DeiT fine-tuning recipe scaled down to the µDeiT
/// synthetic experiments: AdamW under a warmup + cosine schedule, a
/// distillation temperature of 2 with equal CE/KL weighting, and the Eq. 20
/// latency-sparsity penalty pulling every selector toward its per-stage keep
/// target.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged over the batch before each
    /// optimizer step).
    pub batch_size: usize,
    /// Peak learning rate of the cosine schedule.
    pub peak_lr: f32,
    /// Floor the cosine schedule decays to.
    pub min_lr: f32,
    /// Fraction of the total optimizer steps spent in linear warmup.
    pub warmup_fraction: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// Distillation temperature `T` (teacher and student logits are softened
    /// by `1/T` inside the KL term).
    pub distill_temperature: f32,
    /// Weight `α` of the distillation KL: the task loss is
    /// `(1 − α)·CE + α·T²·KL`. `0` disables distillation entirely (no
    /// teacher forward is run).
    pub distill_alpha: f32,
    /// Per-stage keep-rate target for each installed selector, in block
    /// order. Each entry is the fraction of *incoming* patch tokens that
    /// stage should keep (the paper's per-stage keep ratio, not the
    /// cumulative one).
    pub target_keep: Vec<f32>,
    /// Weight `β` of the latency-sparsity penalty (Eq. 20).
    pub sparsity_weight: f32,
    /// How the penalty's per-selector weights are derived:
    /// [`LatencyWeights::MacShare`] (hardware-agnostic dense MAC share, the
    /// default) or [`LatencyWeights::FpgaCycles`] (predicted accelerator
    /// cycles at the keep-target-implied token schedule).
    pub latency_weights: LatencyWeights,
    /// Weight `λ` of the decisiveness regularizer inside the sparsity
    /// penalty: a per-token MSE toward the hard decision the keep budget
    /// currently implies (top `⌈target·N⌉` scores → 1, rest → 0). This
    /// bimodalizes the keep scores so the trained keep rate carries over to
    /// the deterministic 0.5-threshold inference path. `0` disables it
    /// (the pure Eq. 20 mean penalty).
    pub decisiveness_weight: f32,
    /// When `false` (the HeatViT selector-tuning phase) only selector
    /// parameters receive gradients and optimizer steps; the backbone stays
    /// frozen at its teacher weights. When `true` the whole student trains.
    pub train_backbone: bool,
    /// Maximum random translation (pixels) of the training augmentation;
    /// `0` disables augmentation.
    pub augment_shift: i32,
    /// Reshuffle the training set every epoch.
    pub shuffle: bool,
    /// Hard cap on optimizer steps; `None` runs all `epochs`. The smoke
    /// harness (`HEATVIT_TRAIN_STEPS`) uses this to bound CI time — training
    /// stops mid-epoch once the cap is hit and the partial epoch is still
    /// reported.
    pub max_steps: Option<u64>,
    /// Seed of the loader shuffle, the Gumbel draws, and any augmentation.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 8,
            peak_lr: 1e-2,
            min_lr: 1e-4,
            warmup_fraction: 0.1,
            weight_decay: 0.01,
            distill_temperature: 2.0,
            distill_alpha: 0.5,
            target_keep: Vec::new(),
            sparsity_weight: 4.0,
            latency_weights: LatencyWeights::MacShare,
            decisiveness_weight: 1.0,
            train_backbone: false,
            augment_shift: 0,
            shuffle: true,
            max_steps: None,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Validates every field range.
    ///
    /// # Panics
    ///
    /// Panics if any hyper-parameter is out of range (zero epochs/batch,
    /// non-positive or inverted learning rates, `warmup_fraction` outside
    /// `[0, 1)`, non-positive temperature, `distill_alpha` outside `[0, 1]`,
    /// a keep target outside `(0, 1]`, or a negative sparsity weight).
    pub fn validate(&self) {
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.peak_lr > 0.0, "peak lr must be positive");
        assert!(
            self.min_lr >= 0.0 && self.min_lr <= self.peak_lr,
            "min lr must be in [0, peak_lr]"
        );
        assert!(
            (0.0..1.0).contains(&self.warmup_fraction),
            "warmup fraction must be in [0, 1)"
        );
        assert!(
            self.weight_decay >= 0.0,
            "weight decay must be non-negative"
        );
        assert!(
            self.distill_temperature > 0.0,
            "distillation temperature must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.distill_alpha),
            "distill alpha must be in [0, 1]"
        );
        for &t in &self.target_keep {
            assert!(t > 0.0 && t <= 1.0, "keep targets must be in (0, 1]");
        }
        assert!(
            self.sparsity_weight >= 0.0,
            "sparsity weight must be non-negative"
        );
        assert!(
            self.decisiveness_weight >= 0.0,
            "decisiveness weight must be non-negative"
        );
        assert!(
            self.augment_shift >= 0,
            "augment shift must be non-negative"
        );
        if let Some(cap) = self.max_steps {
            assert!(cap > 0, "max_steps cap must be positive when set");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TrainConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "keep targets must be in (0, 1]")]
    fn rejects_zero_keep_target() {
        TrainConfig {
            target_keep: vec![0.7, 0.0],
            ..TrainConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "distill alpha must be in [0, 1]")]
    fn rejects_out_of_range_alpha() {
        TrainConfig {
            distill_alpha: 1.5,
            ..TrainConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min lr must be in [0, peak_lr]")]
    fn rejects_inverted_lr_range() {
        TrainConfig {
            peak_lr: 1e-3,
            min_lr: 1e-2,
            ..TrainConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_steps cap must be positive")]
    fn rejects_zero_step_cap() {
        TrainConfig {
            max_steps: Some(0),
            ..TrainConfig::default()
        }
        .validate();
    }
}
