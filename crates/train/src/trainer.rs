//! The epoch driver: distillation + latency-sparsity training over
//! `PrunedViT::forward_train`.

use crate::config::TrainConfig;
use crate::loss::{distillation_targets, LatencySparsityLoss};
use crate::report::{TrainReport, TrainRun};
use heatvit::telemetry::Registry;
use heatvit::{Engine, InferenceModel};
use heatvit_data::augment::random_augment;
use heatvit_data::{Loader, SyntheticDataset};
use heatvit_nn::optim::{AdamW, CosineSchedule, Optimizer};
use heatvit_nn::{Module, Tape};
use heatvit_selector::{PruneScratch, PrunedViT};
use heatvit_vit::{InferScratch, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Seed-domain separator so the Gumbel/augmentation stream never collides
/// with the loader shuffle stream derived from the same user seed.
const RNG_DOMAIN: u64 = 0x4755_4D42; // "GUMB"

/// Accumulates the per-term loss sums of one epoch.
#[derive(Debug, Default, Clone, Copy)]
struct EpochSums {
    loss: f64,
    ce: f64,
    distill: f64,
    sparsity: f64,
    correct: usize,
    samples: usize,
}

/// The HeatViT training driver (paper Section IV / Eq. 20).
///
/// One [`Trainer`] owns a validated [`TrainConfig`] and runs two kinds of
/// fits over `heatvit-data` loaders:
///
/// * [`Trainer::fit_dense`] — plain cross-entropy training of a dense
///   [`VisionTransformer`]; this is how the demo produces the frozen
///   teacher.
/// * [`Trainer::fit`] — selector tuning of a [`PrunedViT`] student with the
///   composed objective `(1 − α)·CE + α·T²·KL(teacher ‖ student) +
///   β·L_ratio`, stepping `heatvit-nn`'s AdamW under a warmup + cosine
///   schedule.
///
/// Both fits are bitwise deterministic in `(config, datasets, model
/// seed)` — the loader shuffle, Gumbel draws, and augmentation all derive
/// from [`TrainConfig::seed`], and every step runs on one thread. An
/// attached telemetry registry (see [`Trainer::with_telemetry`]) is purely
/// observational: per-epoch loss/keep/throughput gauges are recorded after
/// each epoch report is built and never feed back into the arithmetic.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    registry: Option<Arc<Registry>>,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TrainConfig::validate`]).
    pub fn new(config: TrainConfig) -> Self {
        config.validate();
        Self {
            config,
            registry: None,
        }
    }

    /// Attaches a telemetry registry; every fit then records a
    /// `heatvit_train_*` per-epoch series (loss, validation top-1, mean
    /// keep, measured throughput) labeled by fit kind and epoch, plus
    /// epoch/step totals.
    pub fn with_telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The validated configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Records one epoch's report into the attached registry (no-op when
    /// telemetry is not attached).
    fn record_epoch(&self, fit: &'static str, report: &TrainReport) {
        let Some(registry) = &self.registry else {
            return;
        };
        registry
            .counter(
                "heatvit_train_epochs_total",
                &[("fit", fit)],
                "Epochs completed by this trainer.",
            )
            .inc();
        registry
            .gauge(
                "heatvit_train_steps",
                &[("fit", fit)],
                "Cumulative optimizer steps executed.",
            )
            .set(report.steps);
        let epoch = report.epoch.to_string();
        let labels = &[("fit", fit), ("epoch", epoch.as_str())][..];
        registry
            .float_gauge(
                "heatvit_train_loss",
                labels,
                "Mean composed objective over the epoch's training samples.",
            )
            .set(f64::from(report.loss));
        registry
            .float_gauge(
                "heatvit_train_val_top1",
                labels,
                "Validation top-1 accuracy after the epoch.",
            )
            .set(f64::from(report.val_top1));
        registry
            .float_gauge(
                "heatvit_train_mean_keep",
                labels,
                "Mean hard keep fraction across selectors (1.0 for dense).",
            )
            .set(f64::from(report.overall_keep()));
        registry
            .float_gauge(
                "heatvit_train_val_images_per_s",
                labels,
                "Measured validation throughput of the epoch (wall-clock).",
            )
            .set(report.val_images_per_sec);
    }

    /// Total optimizer steps the run will execute (epochs × batches, capped
    /// by [`TrainConfig::max_steps`]).
    pub fn planned_steps(&self, train: &SyntheticDataset) -> u64 {
        let loader = Loader::new(train, self.config.batch_size, self.config.shuffle, 0);
        let planned = (self.config.epochs * loader.batches_per_epoch()) as u64;
        self.config.max_steps.map_or(planned, |c| planned.min(c))
    }

    fn schedule(&self, total_steps: u64) -> CosineSchedule {
        let warmup = (self.config.warmup_fraction * total_steps as f32).round() as u64;
        CosineSchedule::new(
            self.config.peak_lr,
            self.config.min_lr,
            warmup.min(total_steps),
            total_steps.max(1),
        )
    }

    /// Trains the student's token selectors (and, with
    /// [`TrainConfig::train_backbone`], the backbone) against a frozen dense
    /// teacher. Pass `None` as the teacher only when
    /// [`TrainConfig::distill_alpha`] is 0.
    ///
    /// # Panics
    ///
    /// Panics if the keep-target count differs from the number of installed
    /// selectors, if distillation is enabled without a teacher, or if the
    /// teacher's class count differs from the student's.
    pub fn fit(
        &self,
        model: &mut PrunedViT,
        teacher: Option<&VisionTransformer>,
        train: &SyntheticDataset,
        val: &SyntheticDataset,
    ) -> TrainRun {
        let selector_blocks = model.selector_blocks();
        assert_eq!(
            selector_blocks.len(),
            self.config.target_keep.len(),
            "one keep target per installed selector required"
        );
        if self.config.distill_alpha > 0.0 {
            let teacher = teacher.expect("distill_alpha > 0 requires a teacher");
            assert_eq!(
                teacher.config().num_classes,
                model.backbone().config().num_classes,
                "teacher/student class counts must match"
            );
        }
        let sparsity = LatencySparsityLoss::with_latency_weights(
            model.backbone().config(),
            &selector_blocks,
            &self.config.target_keep,
            self.config.decisiveness_weight,
            self.config.latency_weights,
        );

        let loader = Loader::new(
            train,
            self.config.batch_size,
            self.config.shuffle,
            self.config.seed,
        );
        let total_steps = self.planned_steps(train);
        let planned_uncapped = (self.config.epochs * loader.batches_per_epoch()) as u64;
        let sched = self.schedule(total_steps);
        let mut opt = AdamW::with_config(
            self.config.peak_lr,
            0.9,
            0.999,
            1e-8,
            self.config.weight_decay,
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ RNG_DOMAIN);
        let mut teacher_scratch = InferScratch::default();

        // Selector-only training records the backbone weights as tape
        // constants: no weight-side vector-Jacobian products are computed
        // for them (gradients still flow *through* the blocks to the
        // selectors). Selector gradients are bitwise identical either way —
        // freezing skips work, it never changes arithmetic.
        let frozen_ids: Vec<u64> = if self.config.train_backbone {
            Vec::new()
        } else {
            model.backbone().params().iter().map(|p| p.id()).collect()
        };

        let alpha = self.config.distill_alpha;
        let beta = self.config.sparsity_weight;
        let mut reports = Vec::with_capacity(self.config.epochs);
        let mut step = 0u64;
        let mut capped = false;
        'epochs: for epoch in 0..self.config.epochs {
            let mut sums = EpochSums::default();
            let mut last_lr = sched.lr_at(step.min(total_steps.saturating_sub(1)));
            for batch in loader.iter_epoch(epoch as u64) {
                for sample in &batch.samples {
                    let augmented;
                    let image = if self.config.augment_shift > 0 {
                        augmented =
                            random_augment(&sample.image, self.config.augment_shift, &mut rng);
                        &augmented
                    } else {
                        &sample.image
                    };
                    let mut tape = Tape::new();
                    tape.freeze_params(frozen_ids.iter().copied());
                    let out = model.forward_train(&mut tape, image, &mut rng);

                    let ce = tape.cross_entropy(out.logits, &[sample.label]);
                    let mut loss = tape.scale(ce, 1.0 - alpha);
                    let mut distill_value = 0.0f32;
                    if alpha > 0.0 {
                        let teacher = teacher.expect("checked above");
                        let teacher_logits = teacher.infer_with(image, &mut teacher_scratch);
                        let probs =
                            distillation_targets(&teacher_logits, self.config.distill_temperature);
                        let kl =
                            tape.distill_kl(out.logits, probs, self.config.distill_temperature);
                        distill_value = tape.value(kl).data()[0];
                        let kl_scaled = tape.scale(kl, alpha);
                        loss = tape.add(loss, kl_scaled);
                    }
                    let mut sparsity_value = 0.0f32;
                    if beta > 0.0 && !sparsity.is_empty() {
                        let penalty = sparsity.penalty(&mut tape, &out.selector_keep_scores);
                        sparsity_value = tape.value(penalty).data()[0];
                        let penalty_scaled = tape.scale(penalty, beta);
                        loss = tape.add(loss, penalty_scaled);
                    }

                    sums.loss += f64::from(tape.value(loss).data()[0]);
                    sums.ce += f64::from(tape.value(ce).data()[0]);
                    sums.distill += f64::from(distill_value);
                    sums.sparsity += f64::from(sparsity_value);
                    sums.samples += 1;
                    if tape.value(out.logits).argmax_rows()[0] == sample.label {
                        sums.correct += 1;
                    }

                    // Average gradients over the batch: scaling the scalar
                    // loss scales every parameter gradient identically.
                    let grad_loss = tape.scale(loss, 1.0 / batch.len() as f32);
                    let grads = tape.backward(grad_loss);
                    if self.config.train_backbone {
                        tape.write_grads(&grads, model.params_mut());
                    } else {
                        tape.write_grads(&grads, model.selector_params_mut());
                    }
                }
                last_lr = sched.lr_at(step);
                sched.apply(&mut opt, step);
                if self.config.train_backbone {
                    opt.step(model.params_mut());
                } else {
                    opt.step(model.selector_params_mut());
                }
                step += 1;
                if step >= total_steps {
                    // Capped only when the max_steps cap actually truncated
                    // the run — a cap at or above the planned step count
                    // changes nothing and must not downgrade the caller's
                    // convergence gates.
                    capped = total_steps < planned_uncapped;
                    let report = self.report_epoch_pruned(model, val, epoch, step, last_lr, &sums);
                    self.record_epoch("pruned", &report);
                    reports.push(report);
                    break 'epochs;
                }
            }
            let report = self.report_epoch_pruned(model, val, epoch, step, last_lr, &sums);
            self.record_epoch("pruned", &report);
            reports.push(report);
        }
        TrainRun {
            reports,
            steps: step,
            capped,
        }
    }

    /// Builds one epoch report from the accumulated training sums plus a
    /// deterministic validation pass (hard pruning, no Gumbel noise).
    fn report_epoch_pruned(
        &self,
        model: &PrunedViT,
        val: &SyntheticDataset,
        epoch: usize,
        steps: u64,
        lr: f32,
        sums: &EpochSums,
    ) -> TrainReport {
        let selectors = model.selector_blocks().len();
        let mut scratch = PruneScratch::default();
        let mut correct = 0usize;
        let mut keep_sums = vec![0.0f64; selectors];
        let mut final_tokens = 0.0f64;
        for sample in val.iter() {
            let out = model.infer_with(&sample.image, &mut scratch);
            if out.logits.argmax_rows()[0] == sample.label {
                correct += 1;
            }
            for (sum, &frac) in keep_sums.iter_mut().zip(out.selector_keep_fractions.iter()) {
                *sum += f64::from(frac);
            }
            final_tokens += *out.tokens_per_block.last().unwrap_or(&0) as f64;
        }
        let n_val = val.len().max(1) as f64;
        TrainReport {
            epoch,
            steps,
            lr,
            loss: (sums.loss / sums.samples.max(1) as f64) as f32,
            ce: (sums.ce / sums.samples.max(1) as f64) as f32,
            distill: (sums.distill / sums.samples.max(1) as f64) as f32,
            sparsity: (sums.sparsity / sums.samples.max(1) as f64) as f32,
            train_top1: sums.correct as f32 / sums.samples.max(1) as f32,
            val_top1: correct as f32 / val.len().max(1) as f32,
            mean_keep: keep_sums.iter().map(|&s| (s / n_val) as f32).collect(),
            final_tokens: (final_tokens / n_val) as f32,
            val_images_per_sec: val_throughput(model, val, self.config.batch_size),
        }
    }

    /// Plain cross-entropy training of a dense backbone — how the demo
    /// produces the frozen distillation teacher. Ignores the distillation
    /// and sparsity knobs; every backbone parameter is trained.
    pub fn fit_dense(
        &self,
        model: &mut VisionTransformer,
        train: &SyntheticDataset,
        val: &SyntheticDataset,
    ) -> TrainRun {
        let loader = Loader::new(
            train,
            self.config.batch_size,
            self.config.shuffle,
            self.config.seed,
        );
        let total_steps = self.planned_steps(train);
        let planned_uncapped = (self.config.epochs * loader.batches_per_epoch()) as u64;
        let sched = self.schedule(total_steps);
        let mut opt = AdamW::with_config(
            self.config.peak_lr,
            0.9,
            0.999,
            1e-8,
            self.config.weight_decay,
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ RNG_DOMAIN);
        let mut reports = Vec::with_capacity(self.config.epochs);
        let mut step = 0u64;
        let mut capped = false;
        'epochs: for epoch in 0..self.config.epochs {
            let mut sums = EpochSums::default();
            let mut last_lr = sched.lr_at(step.min(total_steps.saturating_sub(1)));
            for batch in loader.iter_epoch(epoch as u64) {
                for sample in &batch.samples {
                    let augmented;
                    let image = if self.config.augment_shift > 0 {
                        augmented =
                            random_augment(&sample.image, self.config.augment_shift, &mut rng);
                        &augmented
                    } else {
                        &sample.image
                    };
                    let mut tape = Tape::new();
                    let logits = model.forward(&mut tape, image);
                    let loss = tape.cross_entropy(logits, &[sample.label]);
                    sums.loss += f64::from(tape.value(loss).data()[0]);
                    sums.ce = sums.loss;
                    sums.samples += 1;
                    if tape.value(logits).argmax_rows()[0] == sample.label {
                        sums.correct += 1;
                    }
                    let grad_loss = tape.scale(loss, 1.0 / batch.len() as f32);
                    let grads = tape.backward(grad_loss);
                    tape.write_grads(&grads, model.params_mut());
                }
                last_lr = sched.lr_at(step);
                sched.apply(&mut opt, step);
                opt.step(model.params_mut());
                step += 1;
                if step >= total_steps {
                    capped = total_steps < planned_uncapped;
                    let report = report_epoch_dense(model, val, epoch, step, last_lr, &sums);
                    self.record_epoch("dense", &report);
                    reports.push(report);
                    break 'epochs;
                }
            }
            let report = report_epoch_dense(model, val, epoch, step, last_lr, &sums);
            self.record_epoch("dense", &report);
            reports.push(report);
        }
        TrainRun {
            reports,
            steps: step,
            capped,
        }
    }
}

fn report_epoch_dense(
    model: &VisionTransformer,
    val: &SyntheticDataset,
    epoch: usize,
    steps: u64,
    lr: f32,
    sums: &EpochSums,
) -> TrainReport {
    let mut scratch = InferScratch::default();
    let correct = val
        .iter()
        .filter(|s| model.infer_with(&s.image, &mut scratch).argmax_rows()[0] == s.label)
        .count();
    TrainReport {
        epoch,
        steps,
        lr,
        loss: (sums.loss / sums.samples.max(1) as f64) as f32,
        ce: (sums.ce / sums.samples.max(1) as f64) as f32,
        distill: 0.0,
        sparsity: 0.0,
        train_top1: sums.correct as f32 / sums.samples.max(1) as f32,
        val_top1: correct as f32 / val.len().max(1) as f32,
        mean_keep: Vec::new(),
        final_tokens: model.config().num_tokens() as f32,
        val_images_per_sec: val_throughput(model, val, 8),
    }
}

/// Measured validation throughput: one sharded [`Engine::run_epoch`] pass
/// over the borrowed epoch model — wall-clock only, never part of report
/// equality (the engine's sharding is bitwise-identical to the sequential
/// path, so the extra pass cannot perturb any deterministic column).
fn val_throughput<M: InferenceModel>(model: &M, val: &SyntheticDataset, batch_size: usize) -> f64 {
    let loader = Loader::new(val, batch_size, false, 0);
    Engine::builder(model)
        .build()
        .run_epoch(&loader, 0)
        .images_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_data::SyntheticConfig;
    use heatvit_selector::TokenSelector;
    use heatvit_tensor::Tensor;
    use heatvit_vit::ViTConfig;

    fn tiny_data() -> (SyntheticDataset, SyntheticDataset) {
        let ds = SyntheticDataset::generate(SyntheticConfig::tiny(), 16, 0);
        ds.split(0.25)
    }

    fn tiny_student(seed: u64) -> PrunedViT {
        let mut rng = StdRng::seed_from_u64(seed);
        let backbone = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let dim = backbone.config().embed_dim;
        let heads = backbone.config().num_heads;
        let mut model = PrunedViT::new(backbone);
        model.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
        model
    }

    fn tiny_config() -> TrainConfig {
        TrainConfig {
            epochs: 2,
            batch_size: 4,
            target_keep: vec![0.6],
            distill_alpha: 0.0,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn fit_produces_one_report_per_epoch_and_steps_the_selectors() {
        let (train, val) = tiny_data();
        let mut model = tiny_student(1);
        let before: Vec<Tensor> = model
            .selector_params()
            .iter()
            .map(|p| p.value().clone())
            .collect();
        let backbone_before: Vec<Tensor> = model
            .backbone()
            .params()
            .iter()
            .map(|p| p.value().clone())
            .collect();
        let run = Trainer::new(tiny_config()).fit(&mut model, None, &train, &val);
        assert_eq!(run.reports.len(), 2);
        assert!(!run.capped);
        assert_eq!(run.steps, 2 * 3); // 12 samples / batch 4 = 3 batches
        let after: Vec<Tensor> = model
            .selector_params()
            .iter()
            .map(|p| p.value().clone())
            .collect();
        assert!(
            before
                .iter()
                .zip(after.iter())
                .any(|(b, a)| b.data() != a.data()),
            "selector weights must move"
        );
        // Frozen backbone: bitwise untouched.
        for (b, a) in backbone_before.iter().zip(model.backbone().params()) {
            assert_eq!(b.data(), a.value().data());
        }
        assert_eq!(run.last().mean_keep.len(), 1);
        // The measured validation pass always runs: throughput is live.
        assert!(run.reports.iter().all(|r| r.val_images_per_sec > 0.0));
    }

    #[test]
    fn max_steps_caps_the_run_mid_epoch() {
        let (train, val) = tiny_data();
        let mut model = tiny_student(2);
        let config = TrainConfig {
            epochs: 10,
            max_steps: Some(2),
            ..tiny_config()
        };
        let run = Trainer::new(config).fit(&mut model, None, &train, &val);
        assert!(run.capped);
        assert_eq!(run.steps, 2);
        assert_eq!(run.reports.len(), 1);
    }

    #[test]
    fn cap_equal_to_planned_steps_is_not_a_truncation() {
        // 12 train samples / batch 4 = 3 batches; 2 epochs = 6 steps. A cap
        // of exactly 6 changes nothing and must not mark the run capped
        // (which would downgrade the demo's convergence gates).
        let (train, val) = tiny_data();
        let mut model = tiny_student(7);
        let config = TrainConfig {
            max_steps: Some(6),
            ..tiny_config()
        };
        let run = Trainer::new(config).fit(&mut model, None, &train, &val);
        assert!(!run.capped);
        assert_eq!(run.steps, 6);
        assert_eq!(run.reports.len(), 2);
    }

    #[test]
    fn distillation_requires_a_teacher() {
        let (train, val) = tiny_data();
        let mut model = tiny_student(3);
        let config = TrainConfig {
            distill_alpha: 0.5,
            ..tiny_config()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Trainer::new(config).fit(&mut model, None, &train, &val);
        }));
        assert!(result.is_err(), "missing teacher must panic");
    }

    #[test]
    fn fit_dense_improves_training_loss() {
        let (train, val) = tiny_data();
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let config = TrainConfig {
            epochs: 4,
            batch_size: 4,
            peak_lr: 5e-3,
            distill_alpha: 0.0,
            target_keep: Vec::new(),
            ..TrainConfig::default()
        };
        let run = Trainer::new(config).fit_dense(&mut model, &train, &val);
        assert_eq!(run.reports.len(), 4);
        assert!(
            run.loss_improvement() > 0.0,
            "dense CE must decrease: {:?}",
            run.reports.iter().map(|r| r.loss).collect::<Vec<_>>()
        );
        assert!(run.last().mean_keep.is_empty());
    }

    #[test]
    fn fit_records_per_epoch_telemetry_series() {
        let (train, val) = tiny_data();
        let mut model = tiny_student(6);
        let registry = Registry::new();
        let run = Trainer::new(tiny_config())
            .with_telemetry(Arc::clone(&registry))
            .fit(&mut model, None, &train, &val);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("heatvit_train_epochs_total", &[("fit", "pruned")]),
            2
        );
        assert_eq!(
            snap.gauge("heatvit_train_steps", &[("fit", "pruned")]),
            run.steps
        );
        for (epoch, report) in [("0", &run.reports[0]), ("1", &run.reports[1])] {
            let labels = &[("fit", "pruned"), ("epoch", epoch)][..];
            assert_eq!(
                snap.float_gauge("heatvit_train_loss", labels),
                f64::from(report.loss)
            );
            assert_eq!(
                snap.float_gauge("heatvit_train_mean_keep", labels),
                f64::from(report.overall_keep())
            );
            assert!(snap.float_gauge("heatvit_train_val_images_per_s", labels) > 0.0);
        }
        // The dense fit labels its series separately.
        let mut rng = StdRng::seed_from_u64(8);
        let mut dense = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let config = TrainConfig {
            epochs: 1,
            batch_size: 4,
            distill_alpha: 0.0,
            target_keep: Vec::new(),
            ..TrainConfig::default()
        };
        Trainer::new(config)
            .with_telemetry(Arc::clone(&registry))
            .fit_dense(&mut dense, &train, &val);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("heatvit_train_epochs_total", &[("fit", "dense")]),
            1
        );
        assert_eq!(
            snap.float_gauge(
                "heatvit_train_mean_keep",
                &[("fit", "dense"), ("epoch", "0")]
            ),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "one keep target per installed selector")]
    fn fit_rejects_target_count_mismatch() {
        let (train, val) = tiny_data();
        let mut model = tiny_student(5);
        let config = TrainConfig {
            target_keep: vec![0.6, 0.5],
            ..tiny_config()
        };
        Trainer::new(config).fit(&mut model, None, &train, &val);
    }
}
