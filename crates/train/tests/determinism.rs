//! Whole-loop determinism and the learned block-to-stage round trip.
//!
//! The training loop promises bitwise reproducibility: the loader shuffle,
//! Gumbel draws, and augmentation all derive from `TrainConfig::seed`, and
//! every step runs single-threaded. These tests pin that promise and the
//! `learned_schedule` → `merge_similar` pipeline on *measured* (not
//! hand-placed) keep rates.

use heatvit_data::{SyntheticConfig, SyntheticDataset};
use heatvit_selector::{PrunedViT, TokenSelector};
use heatvit_train::{learned_schedule, TrainConfig, TrainRun, Trainer};
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn datasets() -> (SyntheticDataset, SyntheticDataset) {
    SyntheticDataset::generate(SyntheticConfig::tiny(), 16, 3).split(0.25)
}

fn student(seed: u64) -> PrunedViT {
    let mut rng = StdRng::seed_from_u64(seed);
    let backbone = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut model = PrunedViT::new(backbone);
    model.insert_selector(0, TokenSelector::new(dim, heads, &mut rng));
    model.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
    model
}

fn config() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 4,
        target_keep: vec![0.75, 0.6],
        distill_alpha: 0.0,
        augment_shift: 1,
        seed: 42,
        ..TrainConfig::default()
    }
}

fn fit_once(model_seed: u64) -> (PrunedViT, TrainRun) {
    let (train, val) = datasets();
    let mut model = student(model_seed);
    let run = Trainer::new(config()).fit(&mut model, None, &train, &val);
    (model, run)
}

#[test]
fn two_fits_from_the_same_seed_are_bitwise_identical() {
    let (model_a, run_a) = fit_once(9);
    let (model_b, run_b) = fit_once(9);

    // Every per-epoch report matches exactly — losses, accuracies, keep
    // rates, learning rates.
    assert_eq!(run_a, run_b);
    assert_eq!(run_a.reports.len(), 3);

    // Final selector weights are bitwise identical.
    let params_a = model_a.selector_params();
    let params_b = model_b.selector_params();
    assert_eq!(params_a.len(), params_b.len());
    assert!(!params_a.is_empty());
    for (a, b) in params_a.iter().zip(params_b.iter()) {
        assert_eq!(
            a.value().data(),
            b.value().data(),
            "selector param {} diverged between identical runs",
            a.name()
        );
    }

    // And so is a post-training inference.
    let (_, val) = datasets();
    let image = &val.sample(0).image;
    assert_eq!(
        model_a.infer(image).logits.data(),
        model_b.infer(image).logits.data()
    );
}

#[test]
fn different_seeds_actually_diverge() {
    // Guards the test above against vacuous equality (e.g. nothing being
    // trained at all).
    let (_, run_a) = fit_once(9);
    let (train, val) = datasets();
    let mut model = student(9);
    let run_c = Trainer::new(TrainConfig {
        seed: 43,
        ..config()
    })
    .fit(&mut model, None, &train, &val);
    assert_ne!(run_a, run_c, "changing the seed must change the run");
}

#[test]
fn learned_keep_rates_round_trip_through_merge_similar() {
    let (model, run) = fit_once(11);
    let measured = run.converged_keep(2);
    assert_eq!(measured.len(), 2);
    for &k in &measured {
        assert!(k > 0.0 && k <= 1.0, "measured keep {k} out of range");
    }

    // Learned (non-hand-placed) rates form a valid cumulative schedule at
    // the trained selector blocks.
    let learned = learned_schedule(&model.selector_blocks(), &measured);
    assert_eq!(learned.len(), 2);
    let blocks: Vec<usize> = learned.placements().iter().map(|p| p.block).collect();
    assert_eq!(blocks, model.selector_blocks());

    let tolerance = 0.085;
    let merged = learned.merge_similar(tolerance);
    assert!(merged.len() <= learned.len());
    assert!(!merged.is_empty());

    // Round trip: every merged placement is one of the learned placements
    // (merging only drops selectors, never invents or moves one)...
    for p in merged.placements() {
        assert!(
            learned.placements().contains(p),
            "merged placement {p:?} not in the learned schedule"
        );
    }
    // ...the first learned stage always survives as the run head...
    assert_eq!(merged.placements()[0], learned.placements()[0]);
    // ...and the merged schedule reproduces the learned per-block keep
    // ratios within the merge tolerance everywhere.
    let depth = 2;
    for (m, l) in merged
        .keep_per_block(depth)
        .iter()
        .zip(learned.keep_per_block(depth).iter())
    {
        assert!(
            (m - l).abs() < tolerance,
            "merged keep {m} drifted over tolerance from learned {l}"
        );
    }
}
