//! Hard-drop CLS-attention pruning (the Adaptive Sparse ViT recipe).

use crate::scoring;
use crate::scratch::TfScratch;
use crate::{keep_count, planned_tokens, validate_stages, TfInference, TfStage};
use heatvit_tensor::Tensor;
use heatvit_vit::VisionTransformer;

/// A backbone with training-free CLS-attention token pruning: in front of
/// each configured stage, the class token's attention distribution (from
/// that block's own `W_q`/`W_k`, computed *before* the block runs) ranks
/// the patch tokens, and only the top fraction survives.
///
/// No parameters beyond the backbone's own — the pruning policy is a pure
/// function of weights the model already has, so any pretrained dense
/// checkpoint becomes a pruned variant for free.
///
/// `Clone` so a serving deployment can stamp out per-server replicas,
/// matching the other backend types.
#[derive(Debug, Clone)]
pub struct ClsAttnPrunedViT {
    backbone: VisionTransformer,
    stages: Vec<TfStage>,
}

// Serving worker pools own models and move them across threads; a future
// non-`Send`/`Sync` field must fail to build here rather than at the spawn
// site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ClsAttnPrunedViT>();
};

impl ClsAttnPrunedViT {
    /// Canonical variant label this backend registers in engine and serving
    /// report tables.
    pub const VARIANT: &'static str = "cls-attn";

    /// Wraps a backbone with the given ratio stages.
    ///
    /// # Panics
    ///
    /// Panics if any stage is out of range, out of block order, or has a
    /// ratio outside `(0, 1]`.
    pub fn new(backbone: VisionTransformer, stages: Vec<TfStage>) -> Self {
        validate_stages(&stages, backbone.config().depth);
        Self { backbone, stages }
    }

    /// The wrapped backbone.
    pub fn backbone(&self) -> &VisionTransformer {
        &self.backbone
    }

    /// The installed pruning stages, in block order.
    pub fn stages(&self) -> &[TfStage] {
        &self.stages
    }

    /// The token count entering each block, computed without running
    /// inference — *exact*: the keep arithmetic is input-agnostic, so every
    /// image sees these counts.
    pub fn planned_tokens_per_block(&self) -> Vec<usize> {
        planned_tokens(
            &self.stages,
            self.backbone.config().depth,
            self.backbone.config().num_patches(),
        )
    }

    /// Inference with CLS-attention pruning and dense repacking.
    pub fn infer(&self, image: &Tensor) -> TfInference {
        self.infer_with(image, &mut TfScratch::default())
    }

    /// [`ClsAttnPrunedViT::infer`] reusing a caller-provided scratch
    /// workspace (bit-identical results).
    pub fn infer_with(&self, image: &Tensor, scratch: &mut TfScratch) -> TfInference {
        let mut tokens = self.backbone.patch_embed().infer(image);
        let depth = self.backbone.config().depth;
        let mut tokens_per_block = Vec::with_capacity(depth);
        let mut stage_iter = self.stages.iter().peekable();
        for (bi, block) in self.backbone.blocks().iter().enumerate() {
            if let Some(stage) = stage_iter.peek() {
                if stage.block == bi {
                    let k = keep_count(stage.keep_ratio, tokens.dim(0) - 1);
                    scoring::cls_attention_scores(block, &tokens, scratch);
                    scoring::select_top_patches(k, scratch);
                    scoring::repack_hard(&mut tokens, scratch);
                    stage_iter.next();
                }
            }
            tokens_per_block.push(tokens.dim(0));
            let (out, _) = block.infer_with(&tokens, None, &mut scratch.vit);
            tokens = out;
        }
        TfInference {
            logits: self.backbone.classify_tokens_infer(&tokens),
            tokens_per_block,
        }
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).logits.argmax_rows()[0]
    }

    /// Multiply–accumulate count of one inference, including the scoring
    /// overhead the stages spend before each governed block.
    pub fn macs(&self, inference: &TfInference) -> u64 {
        self.macs_for_tokens(&inference.tokens_per_block)
    }

    /// [`ClsAttnPrunedViT::macs`] at an arbitrary per-block token schedule
    /// (the cost-prediction entry point, typically over
    /// [`ClsAttnPrunedViT::planned_tokens_per_block`]). Scoring runs on the
    /// *pre-prune* token count of each stage, and that overhead is charged
    /// honestly on top of the backbone's own work.
    pub fn macs_for_tokens(&self, tokens_per_block: &[usize]) -> u64 {
        let cfg = self.backbone.config();
        let mut total = self.backbone.patch_embed().macs();
        for (i, block) in self.backbone.blocks().iter().enumerate() {
            total += block.macs(tokens_per_block[i]);
        }
        total += cfg.embed_dim as u64 * cfg.num_classes as u64;
        for stage in &self.stages {
            let pre = if stage.block == 0 {
                cfg.num_tokens()
            } else {
                tokens_per_block[stage.block - 1]
            };
            total += scoring::scoring_macs(&self.backbone.blocks()[stage.block], pre, false);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_vit::ViTConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backbone(seed: u64) -> (VisionTransformer, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
        (b, rng)
    }

    fn stages() -> Vec<TfStage> {
        vec![
            TfStage {
                block: 1,
                keep_ratio: 0.7,
            },
            TfStage {
                block: 3,
                keep_ratio: 0.5,
            },
        ]
    }

    #[test]
    fn keeps_exactly_the_requested_counts() {
        let (b, mut rng) = backbone(0);
        let model = ClsAttnPrunedViT::new(b, stages());
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        // ceil(0.7·16)=12 then ceil(0.5·12)=6, plus the class token.
        assert_eq!(out.tokens_per_block, vec![17, 13, 13, 7, 7, 7]);
    }

    #[test]
    fn stage_in_front_of_block_zero_is_well_defined() {
        // Unlike the attention-reuse baselines, the scorer uses the
        // *upcoming* block's projections, so no fallback rule is needed.
        let (b, mut rng) = backbone(1);
        let model = ClsAttnPrunedViT::new(
            b,
            vec![TfStage {
                block: 0,
                keep_ratio: 0.5,
            }],
        );
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        assert_eq!(model.infer(&image).tokens_per_block[0], 9);
    }

    #[test]
    fn planned_tokens_match_inference_exactly() {
        let (b, mut rng) = backbone(2);
        let model = ClsAttnPrunedViT::new(b, stages());
        let planned = model.planned_tokens_per_block();
        for _ in 0..3 {
            let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
            let out = model.infer(&image);
            assert_eq!(out.tokens_per_block, planned);
            assert_eq!(model.macs_for_tokens(&planned), model.macs(&out));
        }
    }

    #[test]
    fn scratch_and_fresh_paths_are_bit_identical() {
        let (b, mut rng) = backbone(3);
        let model = ClsAttnPrunedViT::new(b, stages());
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let fresh = model.infer(&image);
        let mut scratch = TfScratch::default();
        // A warm scratch (second use) must not change a single bit.
        model.infer_with(&image, &mut scratch);
        let warm = model.infer_with(&image, &mut scratch);
        assert_eq!(fresh.logits.data(), warm.logits.data());
    }

    #[test]
    fn scoring_overhead_is_charged() {
        let (b, _) = backbone(4);
        let dense_macs = b.macs();
        let unpruned = ClsAttnPrunedViT::new(
            b,
            vec![TfStage {
                block: 2,
                keep_ratio: 1.0,
            }],
        );
        // Keeping everything still pays for the stage's scoring pass.
        let planned = unpruned.planned_tokens_per_block();
        assert!(unpruned.macs_for_tokens(&planned) > dense_macs);
    }

    #[test]
    #[should_panic(expected = "block order")]
    fn stages_must_be_ordered() {
        let (b, _) = backbone(5);
        ClsAttnPrunedViT::new(
            b,
            vec![
                TfStage {
                    block: 4,
                    keep_ratio: 0.5,
                },
                TfStage {
                    block: 2,
                    keep_ratio: 0.5,
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn ratio_must_be_valid() {
        let (b, _) = backbone(6);
        ClsAttnPrunedViT::new(
            b,
            vec![TfStage {
                block: 1,
                keep_ratio: 0.0,
            }],
        );
    }
}
