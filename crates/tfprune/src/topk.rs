//! Fixed-layer top-k pruning: static keep *counts* at fixed depths, ranked
//! by CLS attention plus value-vector norm.

use crate::scoring;
use crate::scratch::TfScratch;
use crate::TfInference;
use heatvit_tensor::Tensor;
use heatvit_vit::VisionTransformer;

/// One top-k stage: in front of `block`, keep the `keep` highest-scored
/// patch tokens (the class token is never counted and never pruned).
#[derive(Debug, Clone, Copy)]
pub struct TopKStage {
    /// Block index the stage precedes.
    pub block: usize,
    /// Number of patch tokens to keep (clamped to the tokens present).
    pub keep: usize,
}

/// A backbone with fixed-layer top-k scorer pruning: at each configured
/// depth, tokens are ranked by the sum of their mean CLS-attention
/// probability and their value-norm share (`‖W_v·x‖` normalized across
/// tokens), and a *static count* survives. The two summands are
/// complementary: attention says where the class token looks, the value
/// norm says how much a token injects into the mix when looked at.
///
/// `Clone` so a serving deployment can stamp out per-server replicas,
/// matching the other backend types.
#[derive(Debug, Clone)]
pub struct TopKPrunedViT {
    backbone: VisionTransformer,
    stages: Vec<TopKStage>,
}

// Serving worker pools own models and move them across threads; a future
// non-`Send`/`Sync` field must fail to build here rather than at the spawn
// site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TopKPrunedViT>();
};

impl TopKPrunedViT {
    /// Canonical variant label this backend registers in engine and serving
    /// report tables.
    pub const VARIANT: &'static str = "topk-attn";

    /// Wraps a backbone with the given top-k stages.
    ///
    /// # Panics
    ///
    /// Panics if any stage is out of range, out of block order, or has a
    /// zero keep count.
    pub fn new(backbone: VisionTransformer, stages: Vec<TopKStage>) -> Self {
        let depth = backbone.config().depth;
        let mut last = 0;
        for s in &stages {
            assert!(s.block < depth, "stage block out of range");
            assert!(s.block >= last, "stages must be in block order");
            assert!(s.keep > 0, "keep count must be positive");
            last = s.block;
        }
        Self { backbone, stages }
    }

    /// The wrapped backbone.
    pub fn backbone(&self) -> &VisionTransformer {
        &self.backbone
    }

    /// The installed top-k stages, in block order.
    pub fn stages(&self) -> &[TopKStage] {
        &self.stages
    }

    /// The token count entering each block, computed without running
    /// inference — *exact*: the keep counts are literal.
    pub fn planned_tokens_per_block(&self) -> Vec<usize> {
        let depth = self.backbone.config().depth;
        let mut n = self.backbone.config().num_patches();
        let mut out = Vec::with_capacity(depth);
        let mut iter = self.stages.iter().peekable();
        for bi in 0..depth {
            if let Some(stage) = iter.peek() {
                if stage.block == bi {
                    n = stage.keep.min(n);
                    iter.next();
                }
            }
            out.push(n + 1); // + class token
        }
        out
    }

    /// Inference with fixed-layer top-k pruning.
    pub fn infer(&self, image: &Tensor) -> TfInference {
        self.infer_with(image, &mut TfScratch::default())
    }

    /// [`TopKPrunedViT::infer`] reusing a caller-provided scratch workspace
    /// (bit-identical results).
    pub fn infer_with(&self, image: &Tensor, scratch: &mut TfScratch) -> TfInference {
        let mut tokens = self.backbone.patch_embed().infer(image);
        let depth = self.backbone.config().depth;
        let mut tokens_per_block = Vec::with_capacity(depth);
        let mut stage_iter = self.stages.iter().peekable();
        for (bi, block) in self.backbone.blocks().iter().enumerate() {
            if let Some(stage) = stage_iter.peek() {
                if stage.block == bi {
                    let k = stage.keep.min(tokens.dim(0) - 1);
                    scoring::cls_attention_scores(block, &tokens, scratch);
                    scoring::add_value_norm_scores(block, scratch);
                    scoring::select_top_patches(k, scratch);
                    scoring::repack_hard(&mut tokens, scratch);
                    stage_iter.next();
                }
            }
            tokens_per_block.push(tokens.dim(0));
            let (out, _) = block.infer_with(&tokens, None, &mut scratch.vit);
            tokens = out;
        }
        TfInference {
            logits: self.backbone.classify_tokens_infer(&tokens),
            tokens_per_block,
        }
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).logits.argmax_rows()[0]
    }

    /// Multiply–accumulate count of one inference, including the scoring
    /// overhead (query row, key *and* value projections, dots and norms)
    /// the stages spend before each governed block.
    pub fn macs(&self, inference: &TfInference) -> u64 {
        self.macs_for_tokens(&inference.tokens_per_block)
    }

    /// [`TopKPrunedViT::macs`] at an arbitrary per-block token schedule
    /// (the cost-prediction entry point, typically over
    /// [`TopKPrunedViT::planned_tokens_per_block`]).
    pub fn macs_for_tokens(&self, tokens_per_block: &[usize]) -> u64 {
        let cfg = self.backbone.config();
        let mut total = self.backbone.patch_embed().macs();
        for (i, block) in self.backbone.blocks().iter().enumerate() {
            total += block.macs(tokens_per_block[i]);
        }
        total += cfg.embed_dim as u64 * cfg.num_classes as u64;
        for stage in &self.stages {
            let pre = if stage.block == 0 {
                cfg.num_tokens()
            } else {
                tokens_per_block[stage.block - 1]
            };
            total += scoring::scoring_macs(&self.backbone.blocks()[stage.block], pre, true);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_vit::ViTConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backbone(seed: u64) -> (VisionTransformer, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
        (b, rng)
    }

    fn stages() -> Vec<TopKStage> {
        vec![
            TopKStage { block: 2, keep: 10 },
            TopKStage { block: 4, keep: 5 },
        ]
    }

    #[test]
    fn keeps_literal_counts() {
        let (b, mut rng) = backbone(0);
        let model = TopKPrunedViT::new(b, stages());
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        assert_eq!(out.tokens_per_block, vec![17, 17, 11, 11, 6, 6]);
    }

    #[test]
    fn oversized_keep_is_clamped_to_the_tokens_present() {
        let (b, mut rng) = backbone(1);
        let model = TopKPrunedViT::new(
            b,
            vec![
                TopKStage { block: 1, keep: 4 },
                TopKStage {
                    block: 3,
                    keep: 100,
                },
            ],
        );
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        assert_eq!(out.tokens_per_block, vec![17, 5, 5, 5, 5, 5]);
        assert_eq!(out.tokens_per_block, model.planned_tokens_per_block());
    }

    #[test]
    fn planned_tokens_and_macs_match_inference() {
        let (b, mut rng) = backbone(2);
        let model = TopKPrunedViT::new(b, stages());
        let planned = model.planned_tokens_per_block();
        for _ in 0..3 {
            let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
            let out = model.infer(&image);
            assert_eq!(out.tokens_per_block, planned);
            assert_eq!(model.macs(&out), model.macs_for_tokens(&planned));
        }
    }

    #[test]
    fn value_norms_change_the_ranking() {
        // The top-k criterion must actually differ from pure CLS attention
        // for at least some input, otherwise the value-norm term is dead
        // code. Checked on the scoring level: score vectors diverge.
        let (b, mut rng) = backbone(3);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let tokens = b.patch_embed().infer(&image);
        let mut s = TfScratch::default();
        crate::scoring::cls_attention_scores(&b.blocks()[0], &tokens, &mut s);
        let attn_only = s.scores.clone();
        crate::scoring::add_value_norm_scores(&b.blocks()[0], &mut s);
        assert_ne!(attn_only, s.scores);
        // Both summands are probability-mass-like: each sums to ~1.
        let sum: f32 = s.scores.iter().sum();
        assert!((sum - 2.0).abs() < 1e-4, "score mass {sum}");
    }

    #[test]
    #[should_panic(expected = "keep count must be positive")]
    fn zero_keep_rejected() {
        let (b, _) = backbone(4);
        TopKPrunedViT::new(b, vec![TopKStage { block: 1, keep: 0 }]);
    }
}
