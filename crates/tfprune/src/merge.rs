//! Token mergence: prune by folding, not dropping (Multi-Scale Token
//! Mergence).

use crate::scoring;
use crate::scratch::TfScratch;
use crate::{keep_count, planned_tokens, validate_stages, TfInference, TfStage};
use heatvit_tensor::Tensor;
use heatvit_vit::VisionTransformer;

/// A backbone with training-free token *mergence*: stages and CLS-attention
/// ranking identical to [`crate::ClsAttnPrunedViT`], but instead of
/// discarding the low-scored tokens, each one is folded into its most
/// cosine-similar kept token by a score-weighted average (the class token
/// is always kept and never merged into).
///
/// Downstream blocks see exactly the hard drop's token counts — the same
/// MAC budget — but the kept rows still carry a weighted trace of what was
/// removed, which is what preserves the accuracy hard dropping loses.
///
/// `Clone` so a serving deployment can stamp out per-server replicas,
/// matching the other backend types.
#[derive(Debug, Clone)]
pub struct TokenMergeViT {
    backbone: VisionTransformer,
    stages: Vec<TfStage>,
}

// Serving worker pools own models and move them across threads; a future
// non-`Send`/`Sync` field must fail to build here rather than at the spawn
// site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TokenMergeViT>();
};

impl TokenMergeViT {
    /// Canonical variant label this backend registers in engine and serving
    /// report tables.
    pub const VARIANT: &'static str = "token-merge";

    /// Wraps a backbone with the given ratio stages.
    ///
    /// # Panics
    ///
    /// Panics if any stage is out of range, out of block order, or has a
    /// ratio outside `(0, 1]`.
    pub fn new(backbone: VisionTransformer, stages: Vec<TfStage>) -> Self {
        validate_stages(&stages, backbone.config().depth);
        Self { backbone, stages }
    }

    /// The wrapped backbone.
    pub fn backbone(&self) -> &VisionTransformer {
        &self.backbone
    }

    /// The installed mergence stages, in block order.
    pub fn stages(&self) -> &[TfStage] {
        &self.stages
    }

    /// The token count entering each block, computed without running
    /// inference — *exact*, and identical to the hard drop's schedule at
    /// equal stages: mergence changes token *content*, never token counts.
    pub fn planned_tokens_per_block(&self) -> Vec<usize> {
        planned_tokens(
            &self.stages,
            self.backbone.config().depth,
            self.backbone.config().num_patches(),
        )
    }

    /// Inference with CLS-attention-ranked token mergence.
    pub fn infer(&self, image: &Tensor) -> TfInference {
        self.infer_with(image, &mut TfScratch::default())
    }

    /// [`TokenMergeViT::infer`] reusing a caller-provided scratch workspace
    /// (bit-identical results).
    pub fn infer_with(&self, image: &Tensor, scratch: &mut TfScratch) -> TfInference {
        let mut tokens = self.backbone.patch_embed().infer(image);
        let depth = self.backbone.config().depth;
        let mut tokens_per_block = Vec::with_capacity(depth);
        let mut stage_iter = self.stages.iter().peekable();
        for (bi, block) in self.backbone.blocks().iter().enumerate() {
            if let Some(stage) = stage_iter.peek() {
                if stage.block == bi {
                    let k = keep_count(stage.keep_ratio, tokens.dim(0) - 1);
                    scoring::cls_attention_scores(block, &tokens, scratch);
                    scoring::select_top_patches(k, scratch);
                    scoring::repack_merge(&mut tokens, scratch);
                    stage_iter.next();
                }
            }
            tokens_per_block.push(tokens.dim(0));
            let (out, _) = block.infer_with(&tokens, None, &mut scratch.vit);
            tokens = out;
        }
        TfInference {
            logits: self.backbone.classify_tokens_infer(&tokens),
            tokens_per_block,
        }
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).logits.argmax_rows()[0]
    }

    /// Multiply–accumulate count of one inference, including scoring and
    /// merge overhead.
    pub fn macs(&self, inference: &TfInference) -> u64 {
        self.macs_for_tokens(&inference.tokens_per_block)
    }

    /// [`TokenMergeViT::macs`] at an arbitrary per-block token schedule.
    /// On top of the hard drop's accounting this charges the
    /// pruned-to-kept cosine-similarity products (`pruned · kept · D` per
    /// stage); the remaining merge arithmetic is `O((pruned + kept) · D)`
    /// element-wise work, in the same class as the residual adds the MAC
    /// model already leaves to the vector units.
    pub fn macs_for_tokens(&self, tokens_per_block: &[usize]) -> u64 {
        let cfg = self.backbone.config();
        let mut total = self.backbone.patch_embed().macs();
        for (i, block) in self.backbone.blocks().iter().enumerate() {
            total += block.macs(tokens_per_block[i]);
        }
        total += cfg.embed_dim as u64 * cfg.num_classes as u64;
        for stage in &self.stages {
            let pre = if stage.block == 0 {
                cfg.num_tokens()
            } else {
                tokens_per_block[stage.block - 1]
            };
            total += scoring::scoring_macs(&self.backbone.blocks()[stage.block], pre, false);
            let kept = tokens_per_block[stage.block] - 1;
            let pruned = (pre - 1) - kept;
            total += (pruned * kept * cfg.embed_dim) as u64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClsAttnPrunedViT;
    use heatvit_vit::ViTConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backbone(seed: u64) -> (VisionTransformer, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
        (b, rng)
    }

    fn stages() -> Vec<TfStage> {
        vec![
            TfStage {
                block: 1,
                keep_ratio: 0.7,
            },
            TfStage {
                block: 3,
                keep_ratio: 0.5,
            },
        ]
    }

    #[test]
    fn token_counts_match_the_hard_drop_exactly() {
        let (b, mut rng) = backbone(0);
        let merge = TokenMergeViT::new(b.clone(), stages());
        let drop = ClsAttnPrunedViT::new(b, stages());
        assert_eq!(
            merge.planned_tokens_per_block(),
            drop.planned_tokens_per_block()
        );
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        assert_eq!(
            merge.infer(&image).tokens_per_block,
            drop.infer(&image).tokens_per_block
        );
    }

    #[test]
    fn merged_logits_differ_from_hard_dropped_logits() {
        // If they didn't, the fold was a no-op and nothing was preserved.
        let (b, mut rng) = backbone(1);
        let merge = TokenMergeViT::new(b.clone(), stages());
        let drop = ClsAttnPrunedViT::new(b, stages());
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        assert_ne!(
            merge.infer(&image).logits.data(),
            drop.infer(&image).logits.data()
        );
    }

    #[test]
    fn full_keep_stage_is_a_numerical_no_op() {
        // With nothing pruned there is nothing to fold: mergence at ratio 1
        // must reproduce the dense backbone bitwise (the merge normalizes
        // each kept row by its own weight, w·x/w = x exactly in floats
        // only when untouched — this pins the kept-row passthrough).
        let (b, mut rng) = backbone(2);
        let merge = TokenMergeViT::new(
            b.clone(),
            vec![TfStage {
                block: 2,
                keep_ratio: 1.0,
            }],
        );
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        assert_eq!(merge.infer(&image).logits.data(), b.infer(&image).data());
    }

    #[test]
    fn planned_tokens_and_macs_are_consistent() {
        let (b, mut rng) = backbone(3);
        let model = TokenMergeViT::new(b, stages());
        let planned = model.planned_tokens_per_block();
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        assert_eq!(out.tokens_per_block, planned);
        assert_eq!(model.macs(&out), model.macs_for_tokens(&planned));
    }

    #[test]
    fn mergence_charges_more_macs_than_the_hard_drop() {
        let (b, _) = backbone(4);
        let merge = TokenMergeViT::new(b.clone(), stages());
        let drop = ClsAttnPrunedViT::new(b, stages());
        assert!(
            merge.macs_for_tokens(&merge.planned_tokens_per_block())
                > drop.macs_for_tokens(&drop.planned_tokens_per_block()),
            "the similarity products must be charged"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_depth_is_validated() {
        let (b, _) = backbone(5);
        TokenMergeViT::new(
            b,
            vec![TfStage {
                block: 9,
                keep_ratio: 0.5,
            }],
        );
    }
}
