//! # heatvit-tfprune
//!
//! Training-free token pruning over the shared ViT backbone: three
//! inference-only backends that need **no selector training**, giving the
//! learned HeatViT schedule in-repo baselines to beat.
//!
//! All three rank tokens with the same cheap statistic, computed *before*
//! the block's full attention expansion: the class token's attention
//! distribution. Only the upcoming block's `LayerNorm → W_q` row for the
//! class token and `W_k` for every token are evaluated — `≈ N·D²` MACs, a
//! small fraction of the `2N²·D + 4N·D²` the full block would spend — then
//! `softmax(q_cls · Kᵀ / √d)` is averaged over heads. Tokens the class
//! token barely attends to are the ones the classification head will barely
//! read, so they can be removed *before* paying for the block.
//!
//! The three backends differ only in what they do with the ranking:
//!
//! * [`ClsAttnPrunedViT`] — hard drop: keep the top fraction of patch
//!   tokens per configured stage (the Adaptive Sparse ViT recipe).
//! * [`TokenMergeViT`] — mergence: same stages, but each pruned token is
//!   folded into its most similar kept token by a score-weighted average
//!   (Multi-Scale Token Mergence), preserving information at the same
//!   downstream MAC budget as the hard drop.
//! * [`TopKPrunedViT`] — fixed-layer top-k: static keep *counts* at fixed
//!   depths, ranked by CLS attention plus each token's value-vector norm
//!   (attention says where the class token looks, the value norm says how
//!   much a token injects when looked at).
//!
//! Every model is input-agnostic in its *token counts* (which tokens
//! survive varies per image, how many never does), so cost profiles are
//! exact: the planned per-block schedule is the schedule every image
//! executes, and a latency model over it predicts real work.

#![warn(missing_docs)]

mod cls_attn;
mod merge;
mod scoring;
mod scratch;
mod topk;

pub use cls_attn::ClsAttnPrunedViT;
pub use merge::TokenMergeViT;
pub use scratch::TfScratch;
pub use topk::{TopKPrunedViT, TopKStage};

use heatvit_tensor::Tensor;

/// One training-free ratio stage: in front of `block`, keep
/// `ceil(keep_ratio · N)` of the `N` current patch tokens (the class token
/// is never counted and never pruned).
#[derive(Debug, Clone, Copy)]
pub struct TfStage {
    /// Block index the stage precedes (scores come from this block's own
    /// `W_q`/`W_k`, so a stage in front of block 0 is well-defined).
    pub block: usize,
    /// Fraction of current patch tokens to keep, in `(0, 1]`.
    pub keep_ratio: f32,
}

/// Inference result of a training-free pruned ViT.
#[derive(Debug, Clone)]
pub struct TfInference {
    /// Classification logits `[1, classes]`.
    pub logits: Tensor,
    /// Token count entering each block (class token included).
    pub tokens_per_block: Vec<usize>,
}

/// Validates a ratio-stage schedule against a backbone depth.
///
/// # Panics
///
/// Panics with the same messages as the other pruned model types if a
/// stage is out of range, out of block order, or has a ratio outside
/// `(0, 1]`.
pub(crate) fn validate_stages(stages: &[TfStage], depth: usize) {
    let mut last = 0;
    for s in stages {
        assert!(s.block < depth, "stage block out of range");
        assert!(s.block >= last, "stages must be in block order");
        assert!(
            s.keep_ratio > 0.0 && s.keep_ratio <= 1.0,
            "keep ratio must be in (0, 1]"
        );
        last = s.block;
    }
}

/// The ceil-and-clamp keep arithmetic every ratio stage uses: at least one
/// patch token always survives.
pub(crate) fn keep_count(keep_ratio: f32, n_patches: usize) -> usize {
    ((keep_ratio * n_patches as f32).ceil() as usize).clamp(1, n_patches)
}

/// The planned per-block token counts of a ratio-stage schedule — exact,
/// since the keep arithmetic depends only on the schedule, never on the
/// image.
pub(crate) fn planned_tokens(stages: &[TfStage], depth: usize, n_patches: usize) -> Vec<usize> {
    let mut n = n_patches;
    let mut out = Vec::with_capacity(depth);
    let mut iter = stages.iter().peekable();
    for bi in 0..depth {
        if let Some(stage) = iter.peek() {
            if stage.block == bi {
                n = keep_count(stage.keep_ratio, n);
                iter.next();
            }
        }
        out.push(n + 1); // + class token
    }
    out
}
