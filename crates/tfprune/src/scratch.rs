//! The reusable workspace of the training-free pruning paths.

use heatvit_tensor::{GemmScratch, Tensor};
use heatvit_vit::InferScratch;

/// Workspace for CLS-attention scoring, token repacking/merging, and the
/// backbone blocks — everything a training-free pruned inference touches,
/// so a batched engine allocates once per worker instead of once per image.
///
/// Cheap to construct; the single-image convenience paths build a fresh
/// one, which keeps the scratch and non-scratch paths executing identical
/// arithmetic (bit-identical results).
#[derive(Debug, Clone, Default)]
pub struct TfScratch {
    /// Backbone (per-block) activation buffers.
    pub vit: InferScratch,
    /// Packed-panel staging for the scoring projections.
    pub(crate) gs: GemmScratch,
    /// Layer-normed tokens the scoring projections read `[N, D]`.
    pub(crate) normed: Tensor,
    /// The normed class-token row `[1, D]` (query input).
    pub(crate) cls_normed: Tensor,
    /// The class token's query `[1, D]`.
    pub(crate) q_cls: Tensor,
    /// Key projection of every token `[N, D]`.
    pub(crate) k_proj: Tensor,
    /// Value projection of every token `[N, D]` (top-k scoring only).
    pub(crate) v_proj: Tensor,
    /// Patch-token rows of the *original* (un-normed) tokens `[N-1, D]`.
    pub(crate) patches: Tensor,
    /// The original class-token row `[1, D]`.
    pub(crate) cls: Tensor,
    /// Gathered (and, for mergence, merged-into) kept rows `[K, D]`.
    pub(crate) kept_rows: Tensor,
    /// The repacked token matrix handed to the next block.
    pub(crate) repacked: Tensor,
    /// Mean-over-heads CLS-attention probability per token (index 0 is the
    /// class token's self-attention mass).
    pub(crate) scores: Vec<f32>,
    /// One head's attention logits/probabilities during scoring.
    pub(crate) head_row: Vec<f32>,
    /// Patch indices in descending score order (`[..k]` kept, `[k..]`
    /// pruned).
    pub(crate) order: Vec<usize>,
    /// Kept patch indices, restored to block order.
    pub(crate) kept: Vec<usize>,
    /// Accumulated merge weight per kept row (mergence only).
    pub(crate) merge_weight: Vec<f32>,
    /// Whether a kept row has absorbed at least one pruned token (mergence
    /// only; untouched rows pass through bit-identical to the hard drop).
    pub(crate) merged: Vec<bool>,
}

// Each engine worker thread owns one scratch; a future non-`Send` field
// must fail to build here, not at the distant thread-spawn site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<TfScratch>();
};
