//! The shared CLS-attention scorer and the repacking primitives.
//!
//! The scorer runs *in front of* a block: it evaluates only the block's
//! `ln1 → W_q` row for the class token and `ln1 → W_k` for every token,
//! then averages `softmax(q_cls · Kᵀ / √d)` over heads — the first row of
//! the attention matrix the block is about to compute, at `≈ N·D²` MACs
//! instead of the block's full `4N·D² + 2N²·D`. The block then runs on the
//! repacked survivors, so the expensive quadratic work is only ever done on
//! kept tokens.

use crate::scratch::TfScratch;
use heatvit_tensor::Tensor;
use heatvit_vit::EncoderBlock;

/// Fills `scratch.scores` with the mean-over-heads CLS-attention
/// probability of every current token (index 0 is the class token's
/// self-attention mass; indices `1..N` are the patch tokens). Also leaves
/// the layer-normed tokens in `scratch.normed` for follow-up projections.
pub(crate) fn cls_attention_scores(block: &EncoderBlock, tokens: &Tensor, s: &mut TfScratch) {
    let attn = block.attention();
    let n = tokens.dim(0);
    let heads = attn.num_heads();
    let hd = attn.head_dim();
    let scale = 1.0 / (hd as f32).sqrt();
    block.ln1().infer_into(tokens, &mut s.normed);
    s.normed.slice_rows_into(0, 1, &mut s.cls_normed);
    attn.wq().infer_with(&s.cls_normed, &mut s.gs, &mut s.q_cls);
    attn.wk().infer_with(&s.normed, &mut s.gs, &mut s.k_proj);
    s.scores.clear();
    s.scores.resize(n, 0.0);
    for h in 0..heads {
        let base = h * hd;
        let q = &s.q_cls.row(0)[base..base + hd];
        s.head_row.clear();
        for j in 0..n {
            let k = &s.k_proj.row(j)[base..base + hd];
            s.head_row.push(dot(q, k) * scale);
        }
        softmax_in_place(&mut s.head_row);
        for (acc, &p) in s.scores.iter_mut().zip(&s.head_row) {
            *acc += p;
        }
    }
    for v in &mut s.scores {
        *v /= heads as f32;
    }
}

/// Adds each token's value-norm share to `scratch.scores` (the top-k
/// criterion: CLS attention says where the class token looks, the value
/// norm says how much a token injects when looked at). Norm shares are
/// normalized to sum 1 across tokens so both summands live on the same
/// scale. Requires [`cls_attention_scores`] to have run (reads
/// `scratch.normed`).
pub(crate) fn add_value_norm_scores(block: &EncoderBlock, s: &mut TfScratch) {
    let attn = block.attention();
    attn.wv().infer_with(&s.normed, &mut s.gs, &mut s.v_proj);
    let n = s.v_proj.dim(0);
    s.head_row.clear();
    for j in 0..n {
        s.head_row.push(norm(s.v_proj.row(j)));
    }
    let total: f32 = s.head_row.iter().sum();
    if total > 0.0 {
        for (acc, &v) in s.scores.iter_mut().zip(&s.head_row) {
            *acc += v / total;
        }
    }
}

/// Ranks the patch entries of `scratch.scores` (descending into
/// `scratch.order`) and selects the top `k` into `scratch.kept`, restored
/// to block order. Ties break toward the earlier patch, so selection is
/// deterministic.
pub(crate) fn select_top_patches(k: usize, s: &mut TfScratch) {
    let n_patches = s.scores.len() - 1;
    s.order.clear();
    s.order.extend(0..n_patches);
    let scores = &s.scores;
    s.order
        .sort_by(|&a, &b| scores[b + 1].total_cmp(&scores[a + 1]).then(a.cmp(&b)));
    s.kept.clear();
    s.kept.extend_from_slice(&s.order[..k]);
    s.kept.sort_unstable();
}

/// Repacks `tokens` to `[1 + kept, D]`: the class token followed by the
/// kept patch rows (block order), dropping the rest.
pub(crate) fn repack_hard(tokens: &mut Tensor, s: &mut TfScratch) {
    let n = tokens.dim(0);
    tokens.slice_rows_into(1, n, &mut s.patches);
    tokens.slice_rows_into(0, 1, &mut s.cls);
    s.patches.gather_rows_into(&s.kept, &mut s.kept_rows);
    Tensor::concat_rows_into(&[&s.cls, &s.kept_rows], &mut s.repacked);
    std::mem::swap(tokens, &mut s.repacked);
}

/// Repacks `tokens` like [`repack_hard`] but folds every pruned patch into
/// its most cosine-similar kept patch first: each kept row becomes the
/// score-weighted average of itself and the pruned rows assigned to it
/// (weights are the CLS-attention probabilities, so a near-discarded token
/// nudges its host only slightly). The class token passes through
/// untouched, and token counts match the hard drop exactly.
pub(crate) fn repack_merge(tokens: &mut Tensor, s: &mut TfScratch) {
    let n = tokens.dim(0);
    tokens.slice_rows_into(1, n, &mut s.patches);
    tokens.slice_rows_into(0, 1, &mut s.cls);
    s.patches.gather_rows_into(&s.kept, &mut s.kept_rows);
    let k = s.kept.len();

    // Seed each kept row's score weight; the row itself is premultiplied
    // *lazily* on first fold, so a kept token that absorbs nothing passes
    // through bit-identical to the hard drop.
    s.merge_weight.clear();
    s.merged.clear();
    for &i in &s.kept {
        s.merge_weight.push(weight(s.scores[i + 1]));
        s.merged.push(false);
    }
    // Fold every pruned patch into its nearest kept patch.
    for &p in &s.order[k..] {
        let pruned = s.patches.row(p);
        let pruned_norm = norm(pruned).max(1e-12);
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for (j, &i) in s.kept.iter().enumerate() {
            let kept = s.patches.row(i);
            let sim = dot(pruned, kept) / (pruned_norm * norm(kept).max(1e-12));
            if sim > best_sim {
                best_sim = sim;
                best = j;
            }
        }
        if !s.merged[best] {
            s.merged[best] = true;
            let w = s.merge_weight[best];
            for v in s.kept_rows.row_mut(best) {
                *v *= w;
            }
        }
        let w = weight(s.scores[p + 1]);
        for (acc, &v) in s.kept_rows.row_mut(best).iter_mut().zip(pruned) {
            *acc += w * v;
        }
        s.merge_weight[best] += w;
    }
    // Normalize the folded rows back to a weighted average.
    for j in 0..k {
        if s.merged[j] {
            let w = s.merge_weight[j];
            for v in s.kept_rows.row_mut(j) {
                *v /= w;
            }
        }
    }
    Tensor::concat_rows_into(&[&s.cls, &s.kept_rows], &mut s.repacked);
    std::mem::swap(tokens, &mut s.repacked);
}

/// Multiply–accumulate cost of one scoring pass over `n` tokens: the class
/// token's query row (`D²`), the key projection (`n·D²`), and the
/// per-head attention dots (`n·D`); `with_values` adds the value
/// projection (`n·D²`) and the value norms (`n·D`) of the top-k criterion.
pub(crate) fn scoring_macs(block: &EncoderBlock, n: usize, with_values: bool) -> u64 {
    let attn = block.attention();
    let d = (attn.num_heads() * attn.head_dim()) as u64;
    let mut macs = attn.wq().macs(1) + attn.wk().macs(n) + n as u64 * d;
    if with_values {
        macs += attn.wv().macs(n) + n as u64 * d;
    }
    macs
}

/// A merge weight is never allowed to vanish: a zero-attention token still
/// averages in with a floor weight instead of dividing by zero.
fn weight(score: f32) -> f32 {
    score.max(1e-8)
}

pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

pub(crate) fn norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}
