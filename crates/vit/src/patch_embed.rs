//! Patch extraction and linear patch embedding.

use crate::ViTConfig;
use heatvit_nn::{layers::Linear, Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Reshapes a `[C, H, W]` image into flattened patches `[N, P²·C]`.
///
/// Row-major patch order (left-to-right, top-to-bottom), channel-major
/// within a patch — the same layout a ViT's convolutional stem produces
/// after flattening.
///
/// # Panics
///
/// Panics if `image` is not rank 3 or not divisible into `patch`-sized
/// tiles.
///
/// # Examples
///
/// ```
/// use heatvit_vit::image_to_patches;
/// use heatvit_tensor::Tensor;
///
/// let image = Tensor::from_fn(&[3, 4, 4], |ix| ix[1] as f32);
/// let patches = image_to_patches(&image, 2);
/// assert_eq!(patches.dims(), &[4, 12]); // 4 patches of 2·2·3 values
/// ```
pub fn image_to_patches(image: &Tensor, patch: usize) -> Tensor {
    assert_eq!(image.rank(), 3, "expected [C, H, W]");
    let (c, h, w) = (image.dim(0), image.dim(1), image.dim(2));
    assert!(
        h % patch == 0 && w % patch == 0,
        "image {h}x{w} not divisible into {patch}x{patch} patches"
    );
    let (ph, pw) = (h / patch, w / patch);
    let n = ph * pw;
    let dim = c * patch * patch;
    let mut out = Tensor::zeros(&[n, dim]);
    for pr in 0..ph {
        for pc in 0..pw {
            let row = out.row_mut(pr * pw + pc);
            let mut k = 0;
            for ch in 0..c {
                for dy in 0..patch {
                    for dx in 0..patch {
                        row[k] = image.at(&[ch, pr * patch + dy, pc * patch + dx]);
                        k += 1;
                    }
                }
            }
        }
    }
    out
}

/// Linear patch embedding plus class token and position embeddings.
///
/// Produces the encoder input `X₀ = [x_cls; x₁E; …; x_N·E] + E_pos`
/// (paper Section II-A).
#[derive(Debug, Clone)]
pub struct PatchEmbed {
    projection: Linear,
    cls_token: Param,
    pos_embed: Param,
    patch_size: usize,
}

impl PatchEmbed {
    /// Creates the embedding for a configuration.
    pub fn new(config: &ViTConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let projection = Linear::new(config.patch_dim(), config.embed_dim, true, rng);
        let cls_token = Param::new(
            "cls_token",
            Tensor::rand_trunc_normal(&[1, config.embed_dim], 0.0, 0.02, rng),
        );
        let pos_embed = Param::new(
            "pos_embed",
            Tensor::rand_trunc_normal(&[config.num_tokens(), config.embed_dim], 0.0, 0.02, rng),
        );
        Self {
            projection,
            cls_token,
            pos_embed,
            patch_size: config.patch_size,
        }
    }

    /// The linear projection applied to flattened patches.
    pub fn projection(&self) -> &Linear {
        &self.projection
    }

    /// The learnable class token `[1, D]`.
    pub fn cls_token(&self) -> &Param {
        &self.cls_token
    }

    /// The learnable position embeddings `[N+1, D]`.
    pub fn pos_embed(&self) -> &Param {
        &self.pos_embed
    }

    /// The patch side length.
    pub fn patch_size(&self) -> usize {
        self.patch_size
    }

    /// Differentiable forward: `[C,H,W]` image → `[N+1, D]` tokens.
    pub fn forward(&self, tape: &mut Tape, image: &Tensor) -> Var {
        let patches = image_to_patches(image, self.patch_size);
        let p = tape.constant(patches);
        let embedded = self.projection.forward(tape, p);
        let cls = tape.param(&self.cls_token);
        let tokens = tape.concat_rows(&[cls, embedded]);
        let pos = tape.param(&self.pos_embed);
        tape.add(tokens, pos)
    }

    /// Inference forward (no tape).
    pub fn infer(&self, image: &Tensor) -> Tensor {
        let patches = image_to_patches(image, self.patch_size);
        let embedded = self.projection.infer(&patches);
        let tokens = Tensor::concat_rows(&[self.cls_token.value(), &embedded]);
        tokens.add(self.pos_embed.value())
    }

    /// Multiply–accumulate count of the projection for one image.
    pub fn macs(&self) -> u64 {
        self.projection.macs(self.pos_embed.value().dim(0) - 1)
    }
}

impl Module for PatchEmbed {
    fn params(&self) -> Vec<&Param> {
        let mut v = self.projection.params();
        v.push(&self.cls_token);
        v.push(&self.pos_embed);
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.projection.params_mut();
        v.push(&mut self.cls_token);
        v.push(&mut self.pos_embed);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn patches_cover_image_exactly() {
        let image = Tensor::from_fn(&[1, 4, 4], |ix| (ix[1] * 4 + ix[2]) as f32);
        let patches = image_to_patches(&image, 2);
        // Patch 0 is the top-left 2x2 tile.
        assert_eq!(patches.row(0), &[0.0, 1.0, 4.0, 5.0]);
        // Patch 3 is the bottom-right tile.
        assert_eq!(patches.row(3), &[10.0, 11.0, 14.0, 15.0]);
        // Element multiset is preserved.
        let mut all: Vec<f32> = patches.data().to_vec();
        all.sort_by(f32::total_cmp);
        let mut orig: Vec<f32> = image.data().to_vec();
        orig.sort_by(f32::total_cmp);
        assert_eq!(all, orig);
    }

    #[test]
    fn channels_are_contiguous_within_patch() {
        let image = Tensor::from_fn(&[2, 2, 2], |ix| ix[0] as f32 * 100.0);
        let patches = image_to_patches(&image, 2);
        assert_eq!(patches.dims(), &[1, 8]);
        assert_eq!(&patches.row(0)[..4], &[0.0; 4]);
        assert_eq!(&patches.row(0)[4..], &[100.0; 4]);
    }

    #[test]
    fn embed_output_shape_and_paths_agree() {
        let cfg = ViTConfig::test_tiny(4);
        let mut rng = StdRng::seed_from_u64(0);
        let embed = PatchEmbed::new(&cfg, &mut rng);
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let out = embed.infer(&image);
        assert_eq!(out.dims(), &[cfg.num_tokens(), cfg.embed_dim]);
        let mut tape = Tape::new();
        let v = embed.forward(&mut tape, &image);
        assert!(tape.value(v).allclose(&out, 1e-5));
    }

    #[test]
    fn cls_token_occupies_row_zero() {
        let cfg = ViTConfig::test_tiny(4);
        let mut rng = StdRng::seed_from_u64(1);
        let embed = PatchEmbed::new(&cfg, &mut rng);
        let image = Tensor::zeros(&[3, 16, 16]);
        let out = embed.infer(&image);
        // With a zero image, row 0 = cls_token + pos_embed[0].
        let expect: Vec<f32> = embed
            .cls_token
            .value()
            .row(0)
            .iter()
            .zip(embed.pos_embed.value().row(0))
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(out.row(0), &expect[..]);
    }

    #[test]
    fn gradients_reach_cls_and_pos() {
        let cfg = ViTConfig::test_tiny(4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut embed = PatchEmbed::new(&cfg, &mut rng);
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let v = embed.forward(&mut tape, &image);
        let loss = tape.mean_all(v);
        let grads = tape.backward(loss);
        tape.write_grads(&grads, embed.params_mut());
        for p in embed.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }
}
