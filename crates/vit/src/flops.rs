//! Computational-complexity model of ViT blocks (paper Table II).
//!
//! The paper decomposes one encoder block into six GEMM-shaped layers and
//! derives `Total MACs = 4·N·D_ch·(h·D_attn) + 2·N²·(h·D_attn) + 8·N·D_ch·D_fc`
//! — the quantity every pruning decision trades against accuracy. This module
//! reproduces that accounting exactly and extends it to whole models with
//! per-block token counts (so pruned models can be costed).

use crate::ViTConfig;

/// The six layers of Table II, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockLayer {
    /// ① Q/K/V linear transformation: `N×D_ch → N×h·D_attn` (three GEMMs).
    LinearTransformation,
    /// ② Attention scores `Q·Kᵀ`: `N×h·D_attn → N×N` per head.
    QueryKey,
    /// ③ Attention context `(QKᵀ)·V`: `N×N → N×h·D_attn` per head.
    ScoreValue,
    /// ④ Output projection: `N×h·D_attn → N×D_ch`.
    Projection,
    /// ⑤ FFN expansion: `N×D_ch → N×4·D_fc`.
    FfnExpand,
    /// ⑥ FFN reduction: `N×4·D_fc → N×D_ch`.
    FfnReduce,
}

impl BlockLayer {
    /// All six layers in Table II order.
    pub const ALL: [BlockLayer; 6] = [
        BlockLayer::LinearTransformation,
        BlockLayer::QueryKey,
        BlockLayer::ScoreValue,
        BlockLayer::Projection,
        BlockLayer::FfnExpand,
        BlockLayer::FfnReduce,
    ];

    /// Display label matching the paper's row names.
    pub fn label(&self) -> &'static str {
        match self {
            BlockLayer::LinearTransformation => "Linear Transformation",
            BlockLayer::QueryKey => "Q x K^T",
            BlockLayer::ScoreValue => "QK^T x V",
            BlockLayer::Projection => "Projection",
            BlockLayer::FfnExpand => "FC Layer (expand)",
            BlockLayer::FfnReduce => "FC Layer (reduce)",
        }
    }
}

/// Geometry of one GEMM-shaped layer: `reps` independent products of an
/// `m × k` matrix with a `k × n` matrix.
///
/// This is the shape a tiled GEMM engine schedules (paper Fig. 8): the
/// attention layers run once per head (`reps = num_heads`), the projections
/// once per block. `reps · m · k · n` equals the corresponding
/// [`BlockComplexity`] MAC entry exactly, so a cycle model costed from these
/// shapes and the MAC model stay consistent by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Independent repetitions of the product (per-head layers repeat).
    pub reps: u64,
    /// Output rows.
    pub m: u64,
    /// Reduction depth.
    pub k: u64,
    /// Output columns.
    pub n: u64,
}

impl GemmShape {
    /// Total MACs of all `reps` products.
    pub fn macs(&self) -> u64 {
        self.reps * self.m * self.k * self.n
    }
}

impl BlockLayer {
    /// The GEMM geometry of this layer in a block processing `tokens`
    /// tokens (see [`GemmShape`]; `reps · m · k · n` matches
    /// [`BlockComplexity::layer`] exactly).
    pub fn gemm_shape(&self, config: &ViTConfig, tokens: usize) -> GemmShape {
        let n = tokens as u64;
        let dch = config.embed_dim as u64;
        let h = config.num_heads as u64;
        let dattn = config.head_dim() as u64;
        let hidden = config.ffn_hidden() as u64;
        match self {
            // Three projections (Q, K, V), each N×D_ch · D_ch×(h·D_attn).
            BlockLayer::LinearTransformation => GemmShape {
                reps: 3,
                m: n,
                k: dch,
                n: h * dattn,
            },
            // Per head: N×D_attn · D_attn×N.
            BlockLayer::QueryKey => GemmShape {
                reps: h,
                m: n,
                k: dattn,
                n,
            },
            // Per head: N×N · N×D_attn.
            BlockLayer::ScoreValue => GemmShape {
                reps: h,
                m: n,
                k: n,
                n: dattn,
            },
            BlockLayer::Projection => GemmShape {
                reps: 1,
                m: n,
                k: h * dattn,
                n: dch,
            },
            BlockLayer::FfnExpand => GemmShape {
                reps: 1,
                m: n,
                k: dch,
                n: hidden,
            },
            BlockLayer::FfnReduce => GemmShape {
                reps: 1,
                m: n,
                k: hidden,
                n: dch,
            },
        }
    }
}

/// The patch-embedding projection as a GEMM
/// (`num_patches × patch_dim · patch_dim × embed_dim`).
pub fn patch_embed_gemm(config: &ViTConfig) -> GemmShape {
    GemmShape {
        reps: 1,
        m: config.num_patches() as u64,
        k: config.patch_dim() as u64,
        n: config.embed_dim as u64,
    }
}

/// The classification head as a GEMM (`1 × embed_dim · embed_dim × classes`).
pub fn head_gemm(config: &ViTConfig) -> GemmShape {
    GemmShape {
        reps: 1,
        m: 1,
        k: config.embed_dim as u64,
        n: config.num_classes as u64,
    }
}

/// Per-layer MAC counts of one encoder block with `n` tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockComplexity {
    /// Token count the block was costed at.
    pub tokens: usize,
    /// MACs per [`BlockLayer`], in Table II order.
    pub layer_macs: [u64; 6],
}

impl BlockComplexity {
    /// Costs one block of `config` processing `n` tokens.
    pub fn new(config: &ViTConfig, n: usize) -> Self {
        let n = n as u64;
        let dch = config.embed_dim as u64;
        let h = config.num_heads as u64;
        let dattn = config.head_dim() as u64;
        // In DeiT D_fc = D_ch and the FFN hidden width is mlp_ratio·D_fc;
        // Table II assumes ratio 4, we keep the ratio explicit.
        let hidden = config.ffn_hidden() as u64;
        Self {
            tokens: n as usize,
            layer_macs: [
                3 * n * dch * (h * dattn), // ① three QKV projections
                n * n * (h * dattn),       // ②
                n * n * (h * dattn),       // ③
                n * (h * dattn) * dch,     // ④
                n * dch * hidden,          // ⑤
                n * hidden * dch,          // ⑥
            ],
        }
    }

    /// Total MACs of the block.
    pub fn total(&self) -> u64 {
        self.layer_macs.iter().sum()
    }

    /// MACs of one layer.
    pub fn layer(&self, layer: BlockLayer) -> u64 {
        let idx = BlockLayer::ALL.iter().position(|l| *l == layer).unwrap();
        self.layer_macs[idx]
    }

    /// The paper's closed form
    /// `4·N·D_ch·(h·D_attn) + 2·N²·(h·D_attn) + 2·N·D_ch·hidden`.
    pub fn closed_form(config: &ViTConfig, n: usize) -> u64 {
        let n = n as u64;
        let dch = config.embed_dim as u64;
        let hd = (config.num_heads * config.head_dim()) as u64;
        let hidden = config.ffn_hidden() as u64;
        4 * n * dch * hd + 2 * n * n * hd + 2 * n * dch * hidden
    }
}

/// Whole-model complexity with a per-block token schedule.
#[derive(Debug, Clone)]
pub struct ModelComplexity {
    /// The costed configuration.
    pub config: ViTConfig,
    /// One entry per block.
    pub blocks: Vec<BlockComplexity>,
    /// Patch-embedding MACs.
    pub patch_embed_macs: u64,
    /// Classification-head MACs.
    pub head_macs: u64,
}

impl ModelComplexity {
    /// Costs a model whose block `i` processes `tokens_per_block[i]` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `tokens_per_block.len() != config.depth`.
    pub fn with_schedule(config: &ViTConfig, tokens_per_block: &[usize]) -> Self {
        assert_eq!(
            tokens_per_block.len(),
            config.depth,
            "one token count per block required"
        );
        let blocks = tokens_per_block
            .iter()
            .map(|&n| BlockComplexity::new(config, n))
            .collect();
        Self {
            config: config.clone(),
            blocks,
            patch_embed_macs: (config.num_patches() * config.patch_dim() * config.embed_dim) as u64,
            head_macs: (config.embed_dim * config.num_classes) as u64,
        }
    }

    /// Costs the unpruned model (full tokens in every block).
    pub fn dense(config: &ViTConfig) -> Self {
        Self::with_schedule(config, &vec![config.num_tokens(); config.depth])
    }

    /// Costs a pruned model given per-stage keep ratios.
    ///
    /// `stage_keep` maps block index → cumulative keep ratio from that block
    /// on (the paper's `Keep Ratio (Stage 1/2/3)` notation: ratios apply from
    /// the stage's first block until the next stage). Block token counts are
    /// `ceil(keep · N_patches) + 1 + 1` — surviving patch tokens plus the
    /// class token plus the package token once pruning has begun.
    ///
    /// # Panics
    ///
    /// Panics if a stage index is out of range or a ratio is outside `(0, 1]`.
    pub fn with_stage_keep_ratios(config: &ViTConfig, stage_keep: &[(usize, f32)]) -> Self {
        let mut keep = vec![1.0f32; config.depth];
        for &(block, ratio) in stage_keep {
            assert!(block < config.depth, "stage start block out of range");
            assert!(ratio > 0.0 && ratio <= 1.0, "keep ratio must be in (0, 1]");
            for k in keep.iter_mut().skip(block) {
                *k = ratio;
            }
        }
        let n_patches = config.num_patches() as f32;
        let tokens: Vec<usize> = keep
            .iter()
            .map(|&k| {
                let kept = (k * n_patches).ceil() as usize;
                let package = usize::from(k < 1.0);
                kept + 1 + package
            })
            .collect();
        Self::with_schedule(config, &tokens)
    }

    /// Total MACs across the whole model.
    pub fn total_macs(&self) -> u64 {
        self.patch_embed_macs + self.head_macs + self.blocks.iter().map(|b| b.total()).sum::<u64>()
    }

    /// Total in GMACs (the unit used throughout the paper).
    pub fn gmacs(&self) -> f64 {
        self.total_macs() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_total_matches_closed_form() {
        for cfg in ViTConfig::paper_backbones() {
            for n in [50, 100, cfg.num_tokens()] {
                let b = BlockComplexity::new(&cfg, n);
                assert_eq!(
                    b.total(),
                    BlockComplexity::closed_form(&cfg, n),
                    "mismatch for {} at N={n}",
                    cfg.name
                );
            }
        }
    }

    #[test]
    fn deit_models_match_published_gmacs() {
        // Published GMACs: DeiT-T 1.3, DeiT-S 4.6, DeiT-B 17.6 (paper Fig. 2
        // and Table VI report the same values).
        let cases = [
            (ViTConfig::deit_tiny(), 1.30),
            (ViTConfig::deit_small(), 4.60),
            (ViTConfig::deit_base(), 17.60),
        ];
        for (cfg, expect) in cases {
            let g = ModelComplexity::dense(&cfg).gmacs();
            let rel = (g - expect).abs() / expect;
            // Published numbers are rounded to two significant figures
            // (e.g. DeiT-T's exact MAC count is 1.254 G, reported as 1.3).
            assert!(
                rel < 0.05,
                "{}: model says {g:.3} GMACs, paper says {expect}",
                cfg.name
            );
        }
    }

    #[test]
    fn gemm_shapes_reproduce_layer_macs_exactly() {
        for cfg in ViTConfig::paper_backbones() {
            for n in [50, cfg.num_tokens()] {
                let b = BlockComplexity::new(&cfg, n);
                for layer in BlockLayer::ALL {
                    assert_eq!(
                        layer.gemm_shape(&cfg, n).macs(),
                        b.layer(layer),
                        "{} at N={n}: GEMM geometry diverged from the MAC model",
                        layer.label()
                    );
                }
            }
            let dense = ModelComplexity::dense(&cfg);
            assert_eq!(patch_embed_gemm(&cfg).macs(), dense.patch_embed_macs);
            assert_eq!(head_gemm(&cfg).macs(), dense.head_macs);
        }
    }

    #[test]
    fn attention_layers_scale_quadratically() {
        let cfg = ViTConfig::deit_small();
        let b1 = BlockComplexity::new(&cfg, 100);
        let b2 = BlockComplexity::new(&cfg, 200);
        assert_eq!(
            b2.layer(BlockLayer::QueryKey),
            4 * b1.layer(BlockLayer::QueryKey)
        );
        assert_eq!(
            b2.layer(BlockLayer::FfnExpand),
            2 * b1.layer(BlockLayer::FfnExpand)
        );
    }

    #[test]
    fn ffn_dominates_deit_block() {
        // Paper Section II-E: FFN is ~65% of total compute; heads contribute
        // less than 43%.
        let cfg = ViTConfig::deit_small();
        let b = BlockComplexity::new(&cfg, cfg.num_tokens());
        let ffn = b.layer(BlockLayer::FfnExpand) + b.layer(BlockLayer::FfnReduce);
        let frac = ffn as f64 / b.total() as f64;
        assert!(frac > 0.5 && frac < 0.75, "FFN fraction {frac}");
    }

    #[test]
    fn stage_ratios_reproduce_paper_pruned_gmacs() {
        // Table VI: DeiT-S at stage keep ratios 0.70/0.39/0.21 (stages begin
        // at blocks 3/6/9) is reported as 2.64 GMACs.
        let cfg = ViTConfig::deit_small();
        let pruned =
            ModelComplexity::with_stage_keep_ratios(&cfg, &[(3, 0.70), (6, 0.39), (9, 0.21)]);
        let g = pruned.gmacs();
        assert!(
            (g - 2.64).abs() / 2.64 < 0.08,
            "pruned DeiT-S expected ≈2.64 GMACs, got {g:.3}"
        );
    }

    #[test]
    fn pruning_reduces_cost_monotonically() {
        let cfg = ViTConfig::deit_tiny();
        let dense = ModelComplexity::dense(&cfg).total_macs();
        let mild = ModelComplexity::with_stage_keep_ratios(&cfg, &[(3, 0.9)]).total_macs();
        let heavy = ModelComplexity::with_stage_keep_ratios(&cfg, &[(3, 0.5)]).total_macs();
        assert!(dense > mild && mild > heavy);
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn invalid_ratio_rejected() {
        ModelComplexity::with_stage_keep_ratios(&ViTConfig::deit_tiny(), &[(3, 0.0)]);
    }
}
