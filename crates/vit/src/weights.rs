//! Weight checkpointing in a small self-describing binary format.
//!
//! The format exists so that the multi-stage training pipeline can snapshot a
//! backbone before each selector insertion (Algorithm 1 restores "the model
//! … from the end of the last Step 1" when constraints fail) without pulling
//! a serialization framework into the workspace.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "HVIT" | version u32 | param count u32 |
//!   per param: name len u32 | name bytes | rank u32 | dims u32… | f32 data…
//! ```

use heatvit_nn::Module;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"HVIT";
const VERSION: u32 = 1;

/// Error produced by checkpoint loading.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a HeatViT checkpoint or has the wrong version.
    BadHeader,
    /// The checkpoint's parameters do not line up with the target module.
    Mismatch {
        /// Human-readable description of what differed.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadHeader => write!(f, "not a heatvit checkpoint (bad magic/version)"),
            CheckpointError::Mismatch { detail } => {
                write!(f, "checkpoint does not match module: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes every parameter of `module` to `w`.
///
/// Parameters are identified positionally (via [`Module::params`] order), so
/// save/load pairs must use the same architecture.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_weights<W: Write>(module: &dyn Module, mut w: W) -> Result<(), CheckpointError> {
    let params = module.params();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let dims = p.value().dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in p.value().data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores every parameter of `module` from `r`.
///
/// # Errors
///
/// Returns [`CheckpointError::BadHeader`] for foreign data and
/// [`CheckpointError::Mismatch`] if the parameter count or any shape differs
/// from the target module.
pub fn load_weights<R: Read>(module: &mut dyn Module, mut r: R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadHeader);
    }
    let count = read_u32(&mut r)? as usize;
    let mut params = module.params_mut();
    if count != params.len() {
        return Err(CheckpointError::Mismatch {
            detail: format!("checkpoint has {count} params, module has {}", params.len()),
        });
    }
    for p in params.iter_mut() {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u32(&mut r)? as usize);
        }
        if dims != p.value().dims() {
            return Err(CheckpointError::Mismatch {
                detail: format!(
                    "param {} expects shape {:?}, checkpoint has {:?}",
                    p.name(),
                    p.value().dims(),
                    dims
                ),
            });
        }
        let numel: usize = dims.iter().product();
        let mut buf = [0u8; 4];
        let data = p.value_mut().data_mut();
        for slot in data.iter_mut().take(numel) {
            r.read_exact(&mut buf)?;
            *slot = f32::from_le_bytes(buf);
        }
    }
    Ok(())
}

/// Serializes a module's weights to a byte vector.
pub fn weights_to_vec(module: &dyn Module) -> Vec<u8> {
    let mut out = Vec::new();
    save_weights(module, &mut out).expect("writing to a Vec cannot fail");
    out
}

/// Restores a module's weights from a byte slice.
///
/// # Errors
///
/// See [`load_weights`].
pub fn weights_from_slice(module: &mut dyn Module, bytes: &[u8]) -> Result<(), CheckpointError> {
    load_weights(module, bytes)
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ViTConfig, VisionTransformer};
    use heatvit_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_restores_exact_outputs() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let before = model.infer(&image);
        let bytes = weights_to_vec(&model);

        let mut other = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        assert!(other.infer(&image).max_abs_diff(&before) > 1e-3);
        weights_from_slice(&mut other, &bytes).unwrap();
        assert!(other.infer(&image).allclose(&before, 0.0));
    }

    #[test]
    fn rejects_foreign_bytes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let err = weights_from_slice(&mut model, b"not a checkpoint").unwrap_err();
        assert!(matches!(err, CheckpointError::BadHeader));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let bytes = weights_to_vec(&small);
        let mut big = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
        let err = weights_from_slice(&mut big, &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch { .. }));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let bytes = weights_to_vec(&model);
        let mut copy = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let err = weights_from_slice(&mut copy, &bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
