//! # heatvit-vit
//!
//! The Vision Transformer family for the
//! [HeatViT](https://arxiv.org/abs/2211.08110) reproduction: architecture
//! configurations ([`ViTConfig`] — DeiT-T/S/B, LV-ViT-S/M, the paper's
//! width-scaled baselines, and the reduced trainable µDeiT), the model itself
//! ([`VisionTransformer`] with both a differentiable `forward` and a
//! tape-free `infer` path), the Table II complexity model
//! ([`flops::ModelComplexity`]), representation analysis backing the paper's
//! motivating observations ([`analysis`]: CKA curves and per-head receptive
//! fields), and binary weight checkpointing ([`weights`]).
//!
//! ## Example
//!
//! ```
//! use heatvit_vit::{flops::ModelComplexity, ViTConfig, VisionTransformer};
//! use heatvit_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Full-size configs power the analytic experiments…
//! let deit_s = ViTConfig::deit_small();
//! let gmacs = ModelComplexity::dense(&deit_s).gmacs();
//! assert!((gmacs - 4.6).abs() < 0.2); // the published 4.6 GMACs
//!
//! // …while the reduced config actually runs on a laptop.
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
//! let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
//! assert_eq!(model.infer(&image).dims(), &[1, 4]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod attention;
mod block;
mod config;
pub mod flops;
mod model;
mod patch_embed;
mod scratch;
pub mod weights;

pub use attention::{AttentionMaps, MultiHeadAttention, MASK_PENALTY};
pub use block::EncoderBlock;
pub use config::ViTConfig;
pub use model::{InferenceTrace, VisionTransformer};
pub use patch_embed::{image_to_patches, PatchEmbed};
pub use scratch::{AttnScratch, InferScratch};
