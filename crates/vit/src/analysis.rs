//! Representation analysis: CKA similarity and per-head receptive fields.
//!
//! Backs the paper's two motivating observations (Section III-A):
//!
//! 1. different attention heads detect *different* information regions
//!    (Fig. 5) — quantified here by inter-head divergence of the class
//!    token's attention distribution;
//! 2. tokens align with the final class token only gradually across blocks
//!    (Fig. 6, measured with CKA) — so early blocks must prune cautiously.

use heatvit_tensor::Tensor;

/// Linear Centered Kernel Alignment between two representations with the
/// same number of rows (examples).
///
/// `CKA(X, Y) = ‖Yᶜᵀ·Xᶜ‖²_F / (‖Xᶜᵀ·Xᶜ‖_F · ‖Yᶜᵀ·Yᶜ‖_F)` with column-centered
/// `Xᶜ`, `Yᶜ` (Kornblith et al., 2019 — the paper’s reference \[28\]).
///
/// # Panics
///
/// Panics if the operands are not rank 2 or row counts differ.
///
/// # Examples
///
/// ```
/// use heatvit_vit::analysis::linear_cka;
/// use heatvit_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
/// // CKA is invariant to isotropic scaling.
/// let y = x.scale(3.0);
/// assert!((linear_cka(&x, &y) - 1.0).abs() < 1e-5);
/// ```
pub fn linear_cka(x: &Tensor, y: &Tensor) -> f32 {
    assert_eq!(x.rank(), 2, "cka operands must be rank 2");
    assert_eq!(y.rank(), 2, "cka operands must be rank 2");
    assert_eq!(x.dim(0), y.dim(0), "cka operands must share rows");
    let center = |t: &Tensor| {
        let means = t.mean_cols();
        let cols = t.dim(1);
        Tensor::from_fn(t.dims(), |ix| t.at(ix) - means.data()[ix[1] % cols])
    };
    let xc = center(x);
    let yc = center(y);
    let cross = yc.transpose2().matmul(&xc).norm().powi(2);
    let xx = xc.transpose2().matmul(&xc).norm();
    let yy = yc.transpose2().matmul(&yc).norm();
    if xx == 0.0 || yy == 0.0 {
        return 0.0;
    }
    cross / (xx * yy)
}

/// CKA between each block's token matrix and the final class token
/// (paper Fig. 6): for every block output, each token row is compared with
/// the final CLS embedding replicated across rows.
///
/// `block_tokens` is the trace from
/// [`VisionTransformer::infer_traced`](crate::VisionTransformer::infer_traced);
/// the result has one entry per block output (entry 0 compares the embedding
/// output).
pub fn cls_alignment_curve(block_tokens: &[Tensor]) -> Vec<f32> {
    assert!(!block_tokens.is_empty(), "empty trace");
    let last = block_tokens.last().unwrap();
    let final_cls = last.slice_rows(0, 1);
    let n = last.dim(0);
    let mut tiled = Vec::with_capacity(n * final_cls.dim(1));
    for _ in 0..n {
        tiled.extend_from_slice(final_cls.data());
    }
    let target = Tensor::from_vec(tiled, &[n, final_cls.dim(1)]);
    block_tokens
        .iter()
        .map(|tokens| {
            // Compare patch tokens (rows 1..) against the tiled final CLS.
            let patches = tokens.slice_rows(1, tokens.dim(0));
            let target_patches = target.slice_rows(1, n);
            linear_cka(&patches, &target_patches)
        })
        .collect()
}

/// The class token's attention distribution over patch tokens for one head:
/// row 0 of the head's attention map with the CLS column dropped,
/// renormalized to sum to one.
///
/// # Panics
///
/// Panics if `map` is not a square rank-2 tensor with at least 2 rows.
pub fn cls_attention_over_patches(map: &Tensor) -> Vec<f32> {
    assert_eq!(map.rank(), 2, "attention map must be rank 2");
    assert_eq!(map.dim(0), map.dim(1), "attention map must be square");
    assert!(map.dim(0) >= 2, "need at least one patch token");
    let row = &map.row(0)[1..];
    let sum: f32 = row.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / row.len() as f32; row.len()];
    }
    row.iter().map(|&v| v / sum).collect()
}

/// Shannon entropy (nats) of a probability vector.
pub fn entropy(p: &[f32]) -> f32 {
    p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum()
}

/// Jensen–Shannon divergence between two probability vectors (nats).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn js_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "distributions must share support");
    let kl = |a: &[f32], b: &[f32]| -> f32 {
        a.iter()
            .zip(b.iter())
            .filter(|(&x, _)| x > 0.0)
            .map(|(&x, &y)| x * (x / y.max(1e-12)).ln())
            .sum()
    };
    let m: Vec<f32> = p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    0.5 * kl(p, &m) + 0.5 * kl(q, &m)
}

/// Summary of how differently the heads of one block look at the image
/// (the quantitative form of paper Fig. 5).
#[derive(Debug, Clone)]
pub struct HeadDivergence {
    /// Mean pairwise Jensen–Shannon divergence between per-head CLS
    /// attention distributions.
    pub mean_pairwise_js: f32,
    /// Entropy of each head's CLS attention distribution.
    pub head_entropies: Vec<f32>,
    /// Patch index each head attends to most.
    pub head_argmax: Vec<usize>,
}

/// Computes [`HeadDivergence`] for one block's attention maps.
///
/// # Panics
///
/// Panics if `maps` is empty.
pub fn head_divergence(maps: &[Tensor]) -> HeadDivergence {
    assert!(!maps.is_empty(), "no attention maps given");
    let dists: Vec<Vec<f32>> = maps.iter().map(cls_attention_over_patches).collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..dists.len() {
        for j in (i + 1)..dists.len() {
            total += js_divergence(&dists[i], &dists[j]);
            pairs += 1;
        }
    }
    HeadDivergence {
        mean_pairwise_js: if pairs == 0 {
            0.0
        } else {
            total / pairs as f32
        },
        head_entropies: dists.iter().map(|d| entropy(d)).collect(),
        head_argmax: dists
            .iter()
            .map(|d| {
                d.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cka_identity_is_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::rand_normal(&[10, 5], 0.0, 1.0, &mut rng);
        assert!((linear_cka(&x, &x) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cka_is_symmetric_and_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_normal(&[12, 4], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal(&[12, 6], 0.0, 1.0, &mut rng);
        let a = linear_cka(&x, &y);
        let b = linear_cka(&y, &x);
        assert!((a - b).abs() < 1e-5);
        assert!((0.0..=1.0 + 1e-5).contains(&a));
    }

    #[test]
    fn cka_detects_unrelated_representations() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::rand_normal(&[50, 8], 0.0, 1.0, &mut rng);
        let y = Tensor::rand_normal(&[50, 8], 0.0, 1.0, &mut rng);
        let related = linear_cka(&x, &x.scale(2.0));
        let unrelated = linear_cka(&x, &y);
        assert!(related > 0.99);
        assert!(unrelated < 0.5);
    }

    #[test]
    fn cls_attention_is_normalized() {
        let map = Tensor::from_vec(vec![0.2, 0.5, 0.3, 0.1, 0.8, 0.1, 0.3, 0.3, 0.4], &[3, 3]);
        let d = cls_attention_over_patches(&map);
        assert_eq!(d.len(), 2);
        assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((d[0] - 0.5 / 0.8).abs() < 1e-6);
    }

    #[test]
    fn entropy_extremes() {
        assert!(entropy(&[1.0, 0.0, 0.0]) < 1e-6);
        let uniform = entropy(&[0.25; 4]);
        assert!((uniform - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn js_divergence_properties() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.2, 0.7];
        assert!(js_divergence(&p, &p) < 1e-6);
        let d = js_divergence(&p, &q);
        assert!(d > 0.0 && d <= (2.0f32).ln() + 1e-5);
        assert!((d - js_divergence(&q, &p)).abs() < 1e-6);
    }

    #[test]
    fn head_divergence_flags_distinct_heads() {
        // Two heads attending to disjoint patches → high divergence.
        let focused =
            |idx: usize| Tensor::from_fn(&[4, 4], |ix| if ix[1] == idx { 0.97 } else { 0.01 });
        let distinct = head_divergence(&[focused(1), focused(3)]);
        let same = head_divergence(&[focused(2), focused(2)]);
        assert!(distinct.mean_pairwise_js > 10.0 * same.mean_pairwise_js.max(1e-9));
        assert_eq!(distinct.head_argmax, vec![0, 2]);
    }

    #[test]
    fn alignment_curve_ends_near_one() {
        // The final entry compares the last block with itself.
        let mut rng = StdRng::seed_from_u64(3);
        let t0 = Tensor::rand_normal(&[6, 4], 0.0, 1.0, &mut rng);
        let t1 = Tensor::rand_normal(&[6, 4], 0.0, 1.0, &mut rng);
        let curve = cls_alignment_curve(&[t0, t1]);
        assert_eq!(curve.len(), 2);
        for v in &curve {
            assert!((0.0..=1.0 + 1e-5).contains(v));
        }
    }
}
