//! The Vision Transformer model.

use crate::attention::AttentionMaps;
use crate::block::EncoderBlock;
use crate::patch_embed::PatchEmbed;
use crate::scratch::InferScratch;
use crate::ViTConfig;
use heatvit_nn::layers::{LayerNorm, Linear};
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Everything captured by a traced inference pass.
#[derive(Debug, Clone)]
pub struct InferenceTrace {
    /// Classification logits `[1, num_classes]`.
    pub logits: Tensor,
    /// Token matrix after each block, `depth + 1` entries (index 0 is the
    /// embedding output).
    pub block_tokens: Vec<Tensor>,
    /// Per-block, per-head attention maps.
    pub attention: Vec<AttentionMaps>,
}

/// A Vision Transformer backbone (DeiT-style).
///
/// The model exposes its sub-components (`patch_embed`, `blocks`,
/// `classify_tokens`) so that `heatvit-selector` can interleave token
/// selectors between blocks without this crate knowing about pruning.
///
/// # Examples
///
/// ```
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use heatvit_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
/// let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
/// let logits = model.infer(&image);
/// assert_eq!(logits.dims(), &[1, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct VisionTransformer {
    config: ViTConfig,
    patch_embed: PatchEmbed,
    blocks: Vec<EncoderBlock>,
    norm: LayerNorm,
    head: Linear,
}

// A serving worker pool owns models and moves them across threads; a future
// non-`Send`/`Sync` field (an `Rc`, a raw pointer cache) must fail to build
// here, not at the distant engine or server spawn site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VisionTransformer>();
};

impl VisionTransformer {
    /// Canonical variant label this backend registers in engine and serving
    /// report tables.
    pub const VARIANT: &'static str = "dense";

    /// Creates a randomly-initialized model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: ViTConfig, rng: &mut impl Rng) -> Self {
        config.validate();
        let patch_embed = PatchEmbed::new(&config, rng);
        let blocks = (0..config.depth)
            .map(|_| EncoderBlock::new(&config, rng))
            .collect();
        let norm = LayerNorm::new(config.embed_dim);
        let head = Linear::new(config.embed_dim, config.num_classes, true, rng);
        Self {
            config,
            patch_embed,
            blocks,
            norm,
            head,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &ViTConfig {
        &self.config
    }

    /// The patch embedding stage.
    pub fn patch_embed(&self) -> &PatchEmbed {
        &self.patch_embed
    }

    /// The encoder blocks, in order.
    pub fn blocks(&self) -> &[EncoderBlock] {
        &self.blocks
    }

    /// The final layer norm.
    pub fn norm(&self) -> &LayerNorm {
        &self.norm
    }

    /// The classification head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// Differentiable end-to-end forward: image → logits `[1, classes]`.
    pub fn forward(&self, tape: &mut Tape, image: &Tensor) -> Var {
        let mut tokens = self.patch_embed.forward(tape, image);
        for block in &self.blocks {
            let (out, _) = block.forward(tape, tokens, None, false);
            tokens = out;
        }
        self.classify_tokens(tape, tokens)
    }

    /// Differentiable classification head: final LN, take the class token,
    /// project to logits. Exposed for pruned-model wrappers.
    pub fn classify_tokens(&self, tape: &mut Tape, tokens: Var) -> Var {
        let normed = self.norm.forward(tape, tokens);
        let cls = tape.slice_rows(normed, 0, 1);
        self.head.forward(tape, cls)
    }

    /// Inference: image → logits `[1, classes]`.
    pub fn infer(&self, image: &Tensor) -> Tensor {
        self.infer_with(image, &mut InferScratch::default())
    }

    /// [`VisionTransformer::infer`] reusing a caller-provided scratch
    /// workspace (bit-identical results; see [`InferScratch`]).
    pub fn infer_with(&self, image: &Tensor, scratch: &mut InferScratch) -> Tensor {
        let mut tokens = self.patch_embed.infer(image);
        for block in &self.blocks {
            let (out, _) = block.infer_with(&tokens, None, scratch);
            tokens = out;
        }
        self.classify_tokens_infer(&tokens)
    }

    /// Runs a batch of images through one shared scratch workspace,
    /// returning per-image logits. Equivalent to mapping
    /// [`VisionTransformer::infer`] over `images`, but after the first image
    /// the activation buffers are warm and reused.
    pub fn infer_batch(&self, images: &[Tensor]) -> Vec<Tensor> {
        let mut scratch = InferScratch::default();
        images
            .iter()
            .map(|image| self.infer_with(image, &mut scratch))
            .collect()
    }

    /// Inference classification head (no tape).
    pub fn classify_tokens_infer(&self, tokens: &Tensor) -> Tensor {
        let normed = self.norm.infer(tokens);
        self.head.infer(&normed.slice_rows(0, 1))
    }

    /// Traced inference capturing per-block tokens and attention maps
    /// (used by the CKA and receptive-field analyses, paper Figs. 5–6).
    pub fn infer_traced(&self, image: &Tensor) -> InferenceTrace {
        let mut tokens = self.patch_embed.infer(image);
        let mut block_tokens = vec![tokens.clone()];
        let mut attention = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (out, maps) = block.infer(&tokens, None);
            tokens = out;
            block_tokens.push(tokens.clone());
            attention.push(maps);
        }
        InferenceTrace {
            logits: self.classify_tokens_infer(&tokens),
            block_tokens,
            attention,
        }
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).argmax_rows()[0]
    }

    /// Total multiply–accumulate count for one image with the full token
    /// count in every block.
    pub fn macs(&self) -> u64 {
        let n = self.config.num_tokens();
        self.patch_embed.macs()
            + self.blocks.iter().map(|b| b.macs(n)).sum::<u64>()
            + self.head.macs(1)
    }
}

impl Module for VisionTransformer {
    fn params(&self) -> Vec<&Param> {
        let mut v = self.patch_embed.params();
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.norm.params());
        v.extend(self.head.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.patch_embed.params_mut();
        for b in &mut self.blocks {
            v.extend(b.params_mut());
        }
        v.extend(self.norm.params_mut());
        v.extend(self.head.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> (VisionTransformer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let m = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        (m, rng)
    }

    #[test]
    fn forward_matches_infer() {
        let (m, mut rng) = model();
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let logits = m.forward(&mut tape, &image);
        assert!(tape.value(logits).allclose(&m.infer(&image), 1e-4));
    }

    #[test]
    fn trace_has_expected_structure() {
        let (m, mut rng) = model();
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let trace = m.infer_traced(&image);
        assert_eq!(trace.block_tokens.len(), 3); // embed + 2 blocks
        assert_eq!(trace.attention.len(), 2);
        assert_eq!(trace.attention[0].len(), 2); // heads
        assert_eq!(trace.logits.dims(), &[1, 4]);
    }

    #[test]
    fn parameter_count_is_plausible() {
        let (m, _) = model();
        let cfg = m.config();
        // Patch embed + 2 blocks + norm + head, each block dominated by
        // 4 D² attention weights and 2·ratio·D² FFN weights.
        let d = cfg.embed_dim;
        let approx_block = 4 * d * d + 2 * cfg.mlp_ratio * d * d;
        let total = m.num_parameters();
        assert!(total > 2 * approx_block);
        assert!(total < 4 * approx_block + 10_000);
    }

    #[test]
    fn one_training_step_reduces_loss() {
        use heatvit_nn::optim::{Optimizer, Sgd};
        let (mut m, mut rng) = model();
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let loss_of = |m: &VisionTransformer| {
            let mut tape = Tape::new();
            let logits = m.forward(&mut tape, &image);
            let loss = tape.cross_entropy(logits, &[2]);
            (tape, loss)
        };
        let (tape, loss) = loss_of(&m);
        let before = tape.value(loss).data()[0];
        let grads = tape.backward(loss);
        tape.write_grads(&grads, m.params_mut());
        let mut opt = Sgd::new(0.05);
        opt.step(m.params_mut());
        let (tape, loss) = loss_of(&m);
        let after = tape.value(loss).data()[0];
        assert!(after < before, "loss should drop: {before} -> {after}");
    }

    #[test]
    fn macs_match_config_formula() {
        let (m, _) = model();
        let cfg = m.config();
        let n = cfg.num_tokens() as u64;
        let d = cfg.embed_dim as u64;
        let block = 4 * n * d * d + 2 * n * n * d + 2 * n * d * (cfg.mlp_ratio as u64 * d);
        let expect = cfg.num_patches() as u64 * cfg.patch_dim() as u64 * d
            + cfg.depth as u64 * block
            + d * cfg.num_classes as u64;
        assert_eq!(m.macs(), expect);
    }
}
