//! Vision Transformer architecture configurations.
//!
//! The full-size presets match the models evaluated in the paper (DeiT-T/S/B
//! from Touvron et al., LV-ViT-S/M from Jiang et al., plus the width-scaled
//! DeiT baselines of Section VII-B). The `micro` preset is the reduced
//! trainable configuration used wherever gradient steps are needed on one
//! CPU core (see `DESIGN.md` §5).

/// Architecture hyperparameters of a ViT backbone.
///
/// # Examples
///
/// ```
/// use heatvit_vit::ViTConfig;
///
/// let cfg = ViTConfig::deit_tiny();
/// assert_eq!(cfg.num_patches(), 196);
/// assert_eq!(cfg.num_tokens(), 197);  // +1 class token
/// assert_eq!(cfg.head_dim(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViTConfig {
    /// Human-readable model name (used in experiment tables).
    pub name: String,
    /// Input image side length (square images).
    pub image_size: usize,
    /// Patch side length; `image_size` must be divisible by it.
    pub patch_size: usize,
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Token embedding width `D_ch`.
    pub embed_dim: usize,
    /// Number of transformer encoder blocks `L`.
    pub depth: usize,
    /// Number of attention heads `h`.
    pub num_heads: usize,
    /// FFN hidden width as a multiple of `embed_dim` (4 in DeiT).
    pub mlp_ratio: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl ViTConfig {
    /// DeiT-tiny: 12 × (192, 3 heads), 224²/16 (paper Table V).
    pub fn deit_tiny() -> Self {
        Self::full_size("DeiT-T", 192, 12, 3)
    }

    /// DeiT-small: 12 × (384, 6 heads).
    pub fn deit_small() -> Self {
        Self::full_size("DeiT-S", 384, 12, 6)
    }

    /// DeiT-base: 12 × (768, 12 heads).
    pub fn deit_base() -> Self {
        Self::full_size("DeiT-B", 768, 12, 12)
    }

    /// LV-ViT-small: 16 × (384, 6 heads).
    pub fn lv_vit_small() -> Self {
        Self::full_size("LV-ViT-S", 384, 16, 6)
    }

    /// LV-ViT-medium: 20 × (512, 8 heads).
    pub fn lv_vit_medium() -> Self {
        Self::full_size("LV-ViT-M", 512, 20, 8)
    }

    /// The width-scaled DeiT baselines the paper trains for the model-scaling
    /// comparison (embedding dim 160/256/288/320, Section VII-B).
    ///
    /// Head counts are chosen to keep the per-head width near DeiT's 64
    /// (40/64/48/64 respectively) since the paper does not state them.
    ///
    /// # Panics
    ///
    /// Panics if `embed_dim` is not one of 160, 256, 288, 320.
    pub fn deit_width_variant(embed_dim: usize) -> Self {
        let heads = match embed_dim {
            160 => 4,
            256 => 4,
            288 => 6,
            320 => 5,
            _ => panic!("unsupported width variant {embed_dim}"),
        };
        Self::full_size(format!("DeiT-T-{embed_dim}"), embed_dim, 12, heads)
    }

    fn full_size(name: impl Into<String>, embed_dim: usize, depth: usize, heads: usize) -> Self {
        Self {
            name: name.into(),
            image_size: 224,
            patch_size: 16,
            in_channels: 3,
            embed_dim,
            depth,
            num_heads: heads,
            mlp_ratio: 4,
            num_classes: 1000,
        }
    }

    /// The reduced trainable configuration ("µDeiT"): 32²/8 inputs
    /// (16 patches + class token), 6 × (48, 3 heads).
    pub fn micro(num_classes: usize) -> Self {
        Self {
            name: "uDeiT".to_string(),
            image_size: 32,
            patch_size: 8,
            in_channels: 3,
            embed_dim: 48,
            depth: 6,
            num_heads: 3,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// An even smaller configuration for unit tests (16²/8, depth 2).
    pub fn test_tiny(num_classes: usize) -> Self {
        Self {
            name: "test-tiny".to_string(),
            image_size: 16,
            patch_size: 8,
            in_channels: 3,
            embed_dim: 24,
            depth: 2,
            num_heads: 2,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// All five full-size backbones evaluated in the paper.
    pub fn paper_backbones() -> Vec<ViTConfig> {
        vec![
            Self::deit_tiny(),
            Self::deit_small(),
            Self::deit_base(),
            Self::lv_vit_small(),
            Self::lv_vit_medium(),
        ]
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the image is not patch-divisible, the embedding is not
    /// head-divisible, or any field is zero.
    pub fn validate(&self) {
        assert!(self.image_size > 0 && self.patch_size > 0, "zero size");
        assert_eq!(
            self.image_size % self.patch_size,
            0,
            "image size must be divisible by patch size"
        );
        assert!(self.embed_dim > 0 && self.depth > 0 && self.num_heads > 0);
        assert_eq!(
            self.embed_dim % self.num_heads,
            0,
            "embedding width must be divisible by head count"
        );
        assert!(self.mlp_ratio > 0 && self.num_classes > 0);
        assert!(matches!(self.in_channels, 1 | 3), "channels must be 1 or 3");
    }

    /// Number of image patches `N = (H/P)²`.
    pub fn num_patches(&self) -> usize {
        let side = self.image_size / self.patch_size;
        side * side
    }

    /// Number of tokens entering the encoder (patches + class token).
    pub fn num_tokens(&self) -> usize {
        self.num_patches() + 1
    }

    /// Per-head width `D_attn = D_ch / h`.
    pub fn head_dim(&self) -> usize {
        self.embed_dim / self.num_heads
    }

    /// FFN hidden width `4·D_fc` in the paper's notation.
    pub fn ffn_hidden(&self) -> usize {
        self.embed_dim * self.mlp_ratio
    }

    /// Flattened patch width `P²·C` (the patch-embedding input).
    pub fn patch_dim(&self) -> usize {
        self.patch_size * self.patch_size * self.in_channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table_v() {
        // Paper Table V: heads / embed dim / depth.
        let t = ViTConfig::deit_tiny();
        assert_eq!((t.num_heads, t.embed_dim, t.depth), (3, 192, 12));
        let s = ViTConfig::deit_small();
        assert_eq!((s.num_heads, s.embed_dim, s.depth), (6, 384, 12));
        let b = ViTConfig::deit_base();
        assert_eq!((b.num_heads, b.embed_dim, b.depth), (12, 768, 12));
        let lvs = ViTConfig::lv_vit_small();
        assert_eq!((lvs.num_heads, lvs.embed_dim, lvs.depth), (6, 384, 16));
        let lvm = ViTConfig::lv_vit_medium();
        assert_eq!((lvm.num_heads, lvm.embed_dim, lvm.depth), (8, 512, 20));
    }

    #[test]
    fn all_presets_validate() {
        for cfg in ViTConfig::paper_backbones() {
            cfg.validate();
        }
        ViTConfig::micro(8).validate();
        ViTConfig::test_tiny(4).validate();
        for w in [160, 256, 288, 320] {
            ViTConfig::deit_width_variant(w).validate();
        }
    }

    #[test]
    fn token_counts() {
        assert_eq!(ViTConfig::deit_small().num_tokens(), 197);
        assert_eq!(ViTConfig::micro(8).num_tokens(), 17);
        assert_eq!(ViTConfig::test_tiny(4).num_tokens(), 5);
    }

    #[test]
    #[should_panic(expected = "divisible by head count")]
    fn head_divisibility_checked() {
        let mut cfg = ViTConfig::deit_tiny();
        cfg.num_heads = 5;
        cfg.validate();
    }

    #[test]
    fn patch_dim_matches() {
        assert_eq!(ViTConfig::deit_tiny().patch_dim(), 16 * 16 * 3);
        assert_eq!(ViTConfig::micro(8).patch_dim(), 8 * 8 * 3);
    }
}
