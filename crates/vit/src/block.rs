//! The transformer encoder block (MSA + FFN with pre-norm residuals).

use crate::attention::{AttentionMaps, MultiHeadAttention};
use crate::scratch::InferScratch;
use crate::ViTConfig;
use heatvit_nn::layers::{Activation, LayerNorm, Mlp};
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// One ViT encoder block (paper Eq. 1):
///
/// ```text
/// x' = MSA(LN(x)) + x
/// y  = FFN(LN(x')) + x'
/// ```
#[derive(Debug, Clone)]
pub struct EncoderBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn: Mlp,
}

impl EncoderBlock {
    /// Creates a block for the given configuration.
    pub fn new(config: &ViTConfig, rng: &mut impl Rng) -> Self {
        Self {
            ln1: LayerNorm::new(config.embed_dim),
            attn: MultiHeadAttention::new(config.embed_dim, config.num_heads, rng),
            ln2: LayerNorm::new(config.embed_dim),
            ffn: Mlp::new(
                config.embed_dim,
                config.ffn_hidden(),
                config.embed_dim,
                Activation::Gelu,
                rng,
            ),
        }
    }

    /// The attention sub-module.
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// The feed-forward sub-module.
    pub fn ffn(&self) -> &Mlp {
        &self.ffn
    }

    /// The pre-attention layer norm.
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// The pre-FFN layer norm.
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// Differentiable forward with optional key mask and map capture.
    pub fn forward(
        &self,
        tape: &mut Tape,
        x: Var,
        key_mask: Option<&[f32]>,
        capture_maps: bool,
    ) -> (Var, Option<AttentionMaps>) {
        let normed = self.ln1.forward(tape, x);
        let (attn_out, maps) = self.attn.forward(tape, normed, key_mask, capture_maps);
        let x = tape.add(attn_out, x);
        let normed = self.ln2.forward(tape, x);
        let ffn_out = self.ffn.forward(tape, normed);
        (tape.add(ffn_out, x), maps)
    }

    /// Inference forward (no tape); always returns the attention maps.
    pub fn infer(&self, x: &Tensor, key_mask: Option<&[f32]>) -> (Tensor, AttentionMaps) {
        self.infer_with(x, key_mask, &mut InferScratch::default())
    }

    /// [`EncoderBlock::infer`] reusing a caller-provided scratch workspace
    /// for the layer-norm, attention, and FFN intermediates.
    ///
    /// Bit-identical to the allocating path. One [`InferScratch`] serves all
    /// blocks of a model and all images of a batch: the buffers reshape in
    /// place as the token count shrinks under pruning.
    pub fn infer_with(
        &self,
        x: &Tensor,
        key_mask: Option<&[f32]>,
        scratch: &mut InferScratch,
    ) -> (Tensor, AttentionMaps) {
        // Both layer norms are fused into their downstream projections: the
        // normalized activations stream tile-by-tile into the packed GEMM
        // microkernel instead of round-tripping through `scratch.normed`.
        let (attn_out, maps) = self
            .attn
            .infer_ln_with(&self.ln1, x, key_mask, &mut scratch.attn);
        let x = attn_out.add(x);
        self.ffn.infer_fused_ln_with(
            &self.ln2,
            &x,
            &mut scratch.gs,
            &mut scratch.ffn_hidden,
            &mut scratch.ffn_out,
        );
        let y = scratch.ffn_out.add(&x);
        (y, maps)
    }

    /// Multiply–accumulate count for `n` tokens (linear + attention parts).
    pub fn macs(&self, n: usize) -> u64 {
        let (linear, attention) = self.attn.macs(n);
        linear + attention + self.ffn.macs(n)
    }
}

impl Module for EncoderBlock {
    fn params(&self) -> Vec<&Param> {
        let mut v = self.ln1.params();
        v.extend(self.attn.params());
        v.extend(self.ln2.params());
        v.extend(self.ffn.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.ln1.params_mut();
        v.extend(self.attn.params_mut());
        v.extend(self.ln2.params_mut());
        v.extend(self.ffn.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block() -> (EncoderBlock, StdRng) {
        let cfg = ViTConfig::test_tiny(4);
        let mut rng = StdRng::seed_from_u64(0);
        let b = EncoderBlock::new(&cfg, &mut rng);
        (b, rng)
    }

    #[test]
    fn forward_matches_infer() {
        let (b, mut rng) = block();
        let x = Tensor::rand_normal(&[5, 24], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let (y, _) = b.forward(&mut tape, xv, None, false);
        let (y2, _) = b.infer(&x, None);
        assert!(tape.value(y).allclose(&y2, 1e-4));
    }

    #[test]
    fn preserves_token_shape() {
        let (b, mut rng) = block();
        let x = Tensor::rand_normal(&[7, 24], 0.0, 1.0, &mut rng);
        let (y, maps) = b.infer(&x, None);
        assert_eq!(y.dims(), x.dims());
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].dims(), &[7, 7]);
    }

    #[test]
    fn residual_keeps_input_influence() {
        // Zeroing all block weights must reduce the block to identity
        // (residual connections dominate).
        let (mut b, mut rng) = block();
        for p in b.params_mut() {
            p.value_mut().fill(0.0);
        }
        let x = Tensor::rand_normal(&[4, 24], 0.0, 1.0, &mut rng);
        let (y, _) = b.infer(&x, None);
        assert!(y.allclose(&x, 1e-5));
    }

    #[test]
    fn macs_scale_between_linear_and_quadratic() {
        let (b, _) = block();
        let m1 = b.macs(10) as f64;
        let m2 = b.macs(20) as f64;
        let ratio = m2 / m1;
        assert!(
            ratio > 2.0 && ratio < 4.0,
            "token MACs must grow superlinearly but subquadratically, got {ratio}"
        );
    }
}
