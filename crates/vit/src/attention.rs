//! Multi-head self-attention (MSA).

use crate::scratch::AttnScratch;
use heatvit_nn::layers::{layer_norm_project_into, LayerNorm, Linear};
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Additive score penalty applied to masked-out key columns.
///
/// Large enough to zero the post-softmax probability in `f32` without
/// overflowing when summed with real scores. Public so downstream kernels
/// (e.g. `heatvit-quant`'s approximated softmax) can regression-test the
/// exact constant their flush-to-zero handling must absorb.
pub const MASK_PENALTY: f32 = -1e4;

/// Per-head attention maps of one MSA invocation: `maps[h]` is the `[N, N]`
/// row-stochastic attention matrix of head `h`.
pub type AttentionMaps = Vec<Tensor>;

/// Multi-head self-attention.
///
/// The projections are stored full-width (`D → D`) and sliced per head,
/// matching how the FPGA GEMM engine tiles the head dimension (`Th`) rather
/// than instantiating separate per-head matrices (paper Fig. 8b).
///
/// # Examples
///
/// ```
/// use heatvit_vit::MultiHeadAttention;
/// use heatvit_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let msa = MultiHeadAttention::new(16, 4, &mut rng);
/// let x = Tensor::rand_normal(&[5, 16], 0.0, 1.0, &mut rng);
/// let (out, maps) = msa.infer(&x, None);
/// assert_eq!(out.dims(), &[5, 16]);
/// assert_eq!(maps.len(), 4);
/// // Every attention row is a probability distribution.
/// let sum: f32 = maps[0].row(0).iter().sum();
/// assert!((sum - 1.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    proj: Linear,
    num_heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an MSA layer for width `dim` with `num_heads` heads.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `num_heads`.
    pub fn new(dim: usize, num_heads: usize, rng: &mut impl Rng) -> Self {
        assert!(num_heads > 0, "at least one head required");
        assert_eq!(dim % num_heads, 0, "dim must divide evenly into heads");
        Self {
            wq: Linear::new(dim, dim, true, rng),
            wk: Linear::new(dim, dim, true, rng),
            wv: Linear::new(dim, dim, true, rng),
            proj: Linear::new(dim, dim, true, rng),
            num_heads,
            head_dim: dim / num_heads,
        }
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The query projection.
    pub fn wq(&self) -> &Linear {
        &self.wq
    }

    /// The key projection.
    pub fn wk(&self) -> &Linear {
        &self.wk
    }

    /// The value projection.
    pub fn wv(&self) -> &Linear {
        &self.wv
    }

    /// The output projection.
    pub fn proj(&self) -> &Linear {
        &self.proj
    }

    /// Builds the `[N, N]` additive mask matrix for a key-side keep mask.
    ///
    /// Column `j` receives [`MASK_PENALTY`] when `keep[j] < 0.5`, except on
    /// the diagonal so a pruned token may still attend to itself (keeps the
    /// softmax well-defined for its own row).
    fn additive_mask(keep: &[f32]) -> Tensor {
        let n = keep.len();
        Tensor::from_fn(&[n, n], |ix| {
            if ix[0] != ix[1] && keep[ix[1]] < 0.5 {
                MASK_PENALTY
            } else {
                0.0
            }
        })
    }

    /// Differentiable forward.
    ///
    /// `key_mask`, when given, is a per-token keep indicator (`1.0` keep,
    /// `0.0` prune) applied additively to the attention scores so pruned
    /// tokens cannot be attended to. `capture_maps` additionally copies each
    /// head's attention matrix off the tape for analysis.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]` or the mask length is not `N`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        x: Var,
        key_mask: Option<&[f32]>,
        capture_maps: bool,
    ) -> (Var, Option<AttentionMaps>) {
        let n = tape.dims(x)[0];
        if let Some(m) = key_mask {
            assert_eq!(m.len(), n, "mask length must equal token count");
        }
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mask = key_mask.map(Self::additive_mask);
        let mut head_outputs = Vec::with_capacity(self.num_heads);
        let mut maps = capture_maps.then(Vec::new);
        for h in 0..self.num_heads {
            let (lo, hi) = (h * self.head_dim, (h + 1) * self.head_dim);
            let qh = tape.slice_cols(q, lo, hi);
            let kh = tape.slice_cols(k, lo, hi);
            let vh = tape.slice_cols(v, lo, hi);
            let kht = tape.transpose(kh);
            let scores = tape.matmul(qh, kht);
            let mut scores = tape.scale(scores, scale);
            if let Some(m) = &mask {
                scores = tape.add_const(scores, m.clone());
            }
            let attn = tape.softmax_rows(scores);
            if let Some(maps) = maps.as_mut() {
                maps.push(tape.value(attn).clone());
            }
            head_outputs.push(tape.matmul(attn, vh));
        }
        let concat = tape.concat_cols(&head_outputs);
        (self.proj.forward(tape, concat), maps)
    }

    /// Inference forward (no tape). Always returns the attention maps.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]` or the mask length is not `N`.
    pub fn infer(&self, x: &Tensor, key_mask: Option<&[f32]>) -> (Tensor, AttentionMaps) {
        self.infer_with(x, key_mask, &mut AttnScratch::default())
    }

    /// [`MultiHeadAttention::infer`] reusing a caller-provided scratch
    /// workspace for the Q/K/V projections and the head concatenation.
    ///
    /// Bit-identical to the allocating path; the batched engine holds one
    /// [`AttnScratch`] (inside [`crate::InferScratch`]) for a whole batch so
    /// the four largest per-call tensors are allocated once, not per image.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]` or the mask length is not `N`.
    pub fn infer_with(
        &self,
        x: &Tensor,
        key_mask: Option<&[f32]>,
        scratch: &mut AttnScratch,
    ) -> (Tensor, AttentionMaps) {
        self.wq.infer_with(x, &mut scratch.gs, &mut scratch.q);
        self.wk.infer_with(x, &mut scratch.gs, &mut scratch.k);
        self.wv.infer_with(x, &mut scratch.gs, &mut scratch.v);
        self.attend_with(key_mask, scratch)
    }

    /// Computes `self.infer(ln.infer(x), key_mask)` with the layer norm
    /// fused into the Q/K/V projections via
    /// [`layer_norm_project_into`]: normalized row tiles stream straight
    /// into the packed GEMM microkernel, so the normalized `[N, dim]`
    /// activations never materialize. Bit-identical to the unfused path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, ln.dim()]`, `ln.dim()` differs from the
    /// attention width, or the mask length is not `N`.
    pub fn infer_ln_with(
        &self,
        ln: &LayerNorm,
        x: &Tensor,
        key_mask: Option<&[f32]>,
        scratch: &mut AttnScratch,
    ) -> (Tensor, AttentionMaps) {
        let AttnScratch { q, k, v, gs, .. } = scratch;
        layer_norm_project_into(ln, &[&self.wq, &self.wk, &self.wv], x, gs, &mut [q, k, v]);
        self.attend_with(key_mask, scratch)
    }

    /// The shared attention core: consumes the Q/K/V projections already
    /// staged in `scratch` and produces the projected output plus per-head
    /// maps.
    fn attend_with(
        &self,
        key_mask: Option<&[f32]>,
        scratch: &mut AttnScratch,
    ) -> (Tensor, AttentionMaps) {
        let n = scratch.q.dim(0);
        if let Some(m) = key_mask {
            assert_eq!(m.len(), n, "mask length must equal token count");
        }
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mask = key_mask.map(Self::additive_mask);
        let mut outs = Vec::with_capacity(self.num_heads);
        let mut maps = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let (lo, hi) = (h * self.head_dim, (h + 1) * self.head_dim);
            let qh = scratch.q.slice_cols(lo, hi);
            let kh = scratch.k.slice_cols(lo, hi);
            let vh = scratch.v.slice_cols(lo, hi);
            let mut raw = Tensor::default();
            qh.matmul_transb_with(&kh, &mut scratch.gs, &mut raw);
            let mut scores = raw.scale(scale);
            if let Some(m) = &mask {
                scores = scores.add(m);
            }
            let attn = scores.softmax_rows();
            let mut oh = Tensor::default();
            attn.matmul_with(&vh, &mut scratch.gs, &mut oh);
            outs.push(oh);
            maps.push(attn);
        }
        let refs: Vec<&Tensor> = outs.iter().collect();
        Tensor::concat_cols_into(&refs, &mut scratch.heads);
        let mut out = Tensor::default();
        self.proj
            .infer_with(&scratch.heads, &mut scratch.gs, &mut out);
        (out, maps)
    }

    /// Multiply–accumulate count for `n` tokens, split per paper Table II:
    /// `(QKV+proj, Q·Kᵀ + attn·V)`.
    pub fn macs(&self, n: usize) -> (u64, u64) {
        let dim = (self.num_heads * self.head_dim) as u64;
        let linear = 4 * n as u64 * dim * dim; // Wq, Wk, Wv, proj
        let attention = 2 * (n as u64) * (n as u64) * dim; // QKᵀ and (QKᵀ)V
        (linear, attention)
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<&Param> {
        [&self.wq, &self.wk, &self.wv, &self.proj]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.wq.params_mut();
        v.extend(self.wk.params_mut());
        v.extend(self.wv.params_mut());
        v.extend(self.proj.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn msa(dim: usize, heads: usize, seed: u64) -> (MultiHeadAttention, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = MultiHeadAttention::new(dim, heads, &mut rng);
        (m, rng)
    }

    #[test]
    fn forward_matches_infer() {
        let (m, mut rng) = msa(12, 3, 0);
        let x = Tensor::rand_normal(&[6, 12], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let (out, maps) = m.forward(&mut tape, xv, None, true);
        let (out2, maps2) = m.infer(&x, None);
        assert!(tape.value(out).allclose(&out2, 1e-5));
        for (a, b) in maps.unwrap().iter().zip(maps2.iter()) {
            assert!(a.allclose(b, 1e-5));
        }
    }

    #[test]
    fn fused_ln_path_is_bitwise_identical_to_unfused() {
        use heatvit_nn::layers::LayerNorm;
        let (m, mut rng) = msa(12, 3, 6);
        let ln = LayerNorm::new(12);
        for n_tokens in [1usize, 5, 9] {
            let x = Tensor::rand_normal(&[n_tokens, 12], 0.0, 1.0, &mut rng);
            let keep: Vec<f32> = (0..n_tokens).map(|i| (i % 2) as f32).collect();
            for mask in [None, Some(keep.as_slice())] {
                let (want, want_maps) = m.infer(&ln.infer(&x), mask);
                let mut scratch = AttnScratch::default();
                let (got, got_maps) = m.infer_ln_with(&ln, &x, mask, &mut scratch);
                assert_eq!(got.data(), want.data(), "{n_tokens} tokens");
                for (a, b) in got_maps.iter().zip(want_maps.iter()) {
                    assert_eq!(a.data(), b.data());
                }
            }
        }
    }

    #[test]
    fn masked_tokens_receive_no_attention() {
        let (m, mut rng) = msa(8, 2, 1);
        let x = Tensor::rand_normal(&[4, 8], 0.0, 1.0, &mut rng);
        let keep = [1.0, 1.0, 0.0, 1.0];
        let (_, maps) = m.infer(&x, Some(&keep));
        for map in &maps {
            for r in 0..4 {
                if r != 2 {
                    assert!(
                        map.at(&[r, 2]) < 1e-6,
                        "row {r} still attends to masked token"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_row_still_sums_to_one() {
        let (m, mut rng) = msa(8, 2, 2);
        let x = Tensor::rand_normal(&[4, 8], 0.0, 1.0, &mut rng);
        let keep = [1.0, 0.0, 0.0, 1.0];
        let (_, maps) = m.infer(&x, Some(&keep));
        for map in &maps {
            for r in 0..4 {
                let s: f32 = map.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn heads_differ() {
        let (m, mut rng) = msa(16, 4, 3);
        let x = Tensor::rand_normal(&[5, 16], 0.0, 1.0, &mut rng);
        let (_, maps) = m.infer(&x, None);
        // Random init should already give distinct per-head maps.
        assert!(maps[0].max_abs_diff(&maps[1]) > 1e-4);
    }

    #[test]
    fn macs_match_table2_formula() {
        let (m, _) = msa(192, 3, 4);
        let n = 197u64;
        let (linear, attn) = m.macs(197);
        assert_eq!(linear, 4 * n * 192 * 192);
        assert_eq!(attn, 2 * n * n * 192);
    }

    #[test]
    fn gradients_flow_through_all_projections() {
        let (mut m, mut rng) = msa(8, 2, 5);
        let x = Tensor::rand_normal(&[3, 8], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let (out, _) = m.forward(&mut tape, xv, None, false);
        let loss = tape.mean_all(out);
        let grads = tape.backward(loss);
        tape.write_grads(&grads, m.params_mut());
        for p in m.params() {
            assert!(p.grad().is_some(), "missing grad for {}", p.name());
        }
    }
}
