//! Reusable activation buffers for the tape-free inference path.
//!
//! A ViT forward pass allocates the same set of intermediate tensors for
//! every image: the Q/K/V projections, the concatenated head outputs, the
//! layer-norm output and the FFN hidden/output activations. When a batch of
//! images is pushed through one model, those buffers can be reused — after
//! the first image the workspace is warm and the hot path performs no
//! per-image heap allocation for them. This is the software mirror of the
//! accelerator's statically-sized on-chip buffers (paper Fig. 8): the GEMM
//! engine writes into fixed BRAM regions regardless of which image is in
//! flight.
//!
//! [`InferScratch`] is deliberately cheap to construct (every buffer starts
//! as a 1-element tensor), so the single-image convenience paths simply
//! build a fresh one — the allocating and scratch paths execute the exact
//! same arithmetic and produce bit-identical results.

use heatvit_tensor::{GemmScratch, Tensor};

/// Buffers reused by [`crate::MultiHeadAttention::infer_with`].
#[derive(Debug, Clone, Default)]
pub struct AttnScratch {
    /// Query projection `[N, D]`.
    pub(crate) q: Tensor,
    /// Key projection `[N, D]`.
    pub(crate) k: Tensor,
    /// Value projection `[N, D]`.
    pub(crate) v: Tensor,
    /// Concatenated per-head outputs `[N, D]`.
    pub(crate) heads: Tensor,
    /// Packed-GEMM workspace (weight panels + fused layer-norm tiles).
    pub(crate) gs: GemmScratch,
}

/// Buffers reused by the block- and model-level inference paths.
///
/// One `InferScratch` serves every block of a model (the buffers are
/// reshaped in place as token counts shrink under pruning) and every image
/// of a batch.
#[derive(Debug, Clone, Default)]
pub struct InferScratch {
    /// Attention-internal buffers.
    pub(crate) attn: AttnScratch,
    /// FFN hidden activation `[N, hidden]` — the largest buffer.
    pub(crate) ffn_hidden: Tensor,
    /// FFN output `[N, D]`.
    pub(crate) ffn_out: Tensor,
    /// Packed-GEMM workspace for the block-level (FFN) projections.
    pub(crate) gs: GemmScratch,
}

// Each engine worker thread owns one scratch; a future non-`Send` field must
// fail to build here, not at the distant thread-spawn site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<InferScratch>();
};
