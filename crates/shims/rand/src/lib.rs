//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate re-implements exactly the slice of the `rand 0.8` API the HeatViT
//! reproduction uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed, statistically strong enough
//! for the moment/bound checks in the workspace test suites. It is *not* the
//! upstream ChaCha12 generator, so seeded streams differ from real `rand`;
//! everything in this workspace only relies on determinism, never on the
//! exact upstream stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (for floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform on [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
sample_range_float!(f32, f64);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // standard recommendation from the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(10usize..20);
            assert!((10..20).contains(&u));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
