//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the `bench_function` / `Bencher::iter` / `criterion_group!` /
//! `criterion_main!` surface so the workspace benches compile and run without
//! registry access. Measurement is intentionally simple: a warm-up phase,
//! then `SAMPLES` timed batches whose median per-iteration time is reported.
//! There is no statistical analysis, plotting, or baseline storage.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples collected per benchmark.
pub const SAMPLES: usize = 15;

/// Timed samples in quick mode (see [`quick`]).
const QUICK_SAMPLES: usize = 5;

/// Target wall-clock time for the whole sampling phase of one benchmark.
const TARGET_SAMPLING: Duration = Duration::from_millis(600);

/// Sampling-phase target in quick mode (see [`quick`]).
const QUICK_SAMPLING: Duration = Duration::from_millis(60);

/// Whether quick mode is active: `--quick` among the process arguments
/// (reachable as `cargo bench ... -- --quick` because every workspace bench
/// sets `harness = false`) or the `HEATVIT_BENCH_QUICK` environment
/// variable. Quick mode shrinks warm-up and sampling so CI can smoke-run a
/// bench in well under a second per entry; the numbers it prints are
/// smoke-test quality, not publishable medians.
fn quick() -> bool {
    std::env::var_os("HEATVIT_BENCH_QUICK").is_some() || std::env::args().any(|a| a == "--quick")
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `routine` as a named benchmark and prints its median time.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            median: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.median;
        println!("{name:<44} {:>14}/iter", format_duration(per_iter));
        self
    }
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    median: Duration,
}

impl Bencher {
    /// Measures `f`: warm-up to estimate cost, then [`SAMPLES`] timed batches;
    /// records the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let (sample_count, sampling_target, warmup) = if quick() {
            (QUICK_SAMPLES, QUICK_SAMPLING, Duration::from_millis(5))
        } else {
            (SAMPLES, TARGET_SAMPLING, Duration::from_millis(50))
        };

        // Warm-up and cost estimation: run until the warm-up window elapses.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample =
            ((sampling_target.as_secs_f64() / sample_count as f64 / est_per_iter).ceil() as u64)
                .max(1);

        let mut samples: Vec<Duration> = Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_nonzero_median() {
        let mut c = Criterion::default();
        c.bench_function("noop-ish", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(1500)).ends_with("ms"));
    }
}
