//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the small API slice the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`];
//! * strategies for numeric ranges, tuples, and [`collection::vec`];
//! * the [`proptest!`] macro plus [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: each test runs
//! [`NUM_CASES`] deterministic seeded cases and failures panic with the
//! offending assertion. That is sufficient for the algebraic identities the
//! tensor crate checks, while keeping the workspace self-contained.

#![warn(missing_docs)]

pub use rand;

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: usize = 64;

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies.
pub mod collection {
    use super::{Range, RangeInclusive, StdRng, Strategy};
    use rand::Rng;

    /// Admissible length specifications for [`vec()`].
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A strategy producing `Vec`s of values from `elem` with a length drawn
    /// from `size` (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::rand::SeedableRng as _;
            let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
            for _case in 0..$crate::NUM_CASES {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in -2.0f32..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_length_honors_range(v in crate::collection::vec(0u8..255, 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let s = (1usize..4, 1usize..4).prop_flat_map(|(m, n)| {
            crate::collection::vec(0.0f32..1.0, m * n).prop_map(move |v| (m, n, v))
        });
        for _ in 0..32 {
            let (m, n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), m * n);
        }
    }
}
