//! Shape and stride bookkeeping for row-major dense tensors.

use crate::TensorError;
use std::fmt;

/// The shape of a dense row-major tensor.
///
/// A thin wrapper over a dimension list that provides element counting and
/// row-major stride computation. Tensors in this crate are always contiguous,
/// so strides are derived rather than stored.
///
/// # Examples
///
/// ```
/// use heatvit_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty. Zero-length dimensions are allowed (an
    /// empty tensor), mirroring `ndarray` semantics.
    pub fn new(dims: &[usize]) -> Self {
        Self::try_new(dims).expect("shape must have at least one dimension")
    }

    /// Creates a shape, returning an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `dims` is empty.
    pub fn try_new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() {
            return Err(TensorError::InvalidShape {
                reason: "shape must have at least one dimension".to_string(),
            });
        }
        Ok(Self {
            dims: dims.to_vec(),
        })
    }

    /// The dimension list.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let strides = self.strides();
        let mut off = 0;
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(
                i < d,
                "index {i} out of bounds for axis {axis} with length {d}"
            );
            off += i * strides[axis];
        }
        off
    }

    /// Interprets this shape as a matrix `(rows, cols)` by folding all
    /// leading dimensions into the row count.
    ///
    /// This is the canonical view used by the GEMM kernels: a `[B, N, D]`
    /// activation tensor multiplies a `[D, D']` weight as a `(B*N, D)`
    /// matrix.
    pub fn as_matrix(&self) -> (usize, usize) {
        let cols = *self.dims.last().expect("shape is non-empty");
        let rows = self.numel() / cols.max(1);
        (rows, cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 5, 6]);
        assert_eq!(s.strides(), vec![30, 6, 1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 4]);
        let mut seen = [false; 12];
        for i in 0..3 {
            for j in 0..4 {
                let off = s.offset(&[i, j]);
                assert!(!seen[off], "offsets must be unique");
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn numel_of_zero_dim_is_zero() {
        assert_eq!(Shape::new(&[3, 0, 2]).numel(), 0);
    }

    #[test]
    fn empty_shape_rejected() {
        assert!(Shape::try_new(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn as_matrix_folds_leading_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).as_matrix(), (6, 4));
        assert_eq!(Shape::new(&[5]).as_matrix(), (1, 5));
    }
}
