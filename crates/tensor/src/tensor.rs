//! The dense row-major `f32` tensor type.

use crate::{Shape, TensorError};
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the numeric substrate of the HeatViT reproduction: activations,
/// weights, attention maps and token scores are all `Tensor`s. The type is
/// deliberately simple — owned contiguous storage, derived strides, no views —
/// which keeps the GEMM kernels and the autograd tape easy to reason about.
///
/// # Examples
///
/// ```
/// use heatvit_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

// The parallel engine shares `&Tensor` across worker threads and moves owned
// tensors between them; a future `Rc`/raw-pointer field must fail to build
// here, not at the distant thread-spawn site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Tensor>();
};

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor from a flat `Vec` in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`. Use
    /// [`Tensor::try_from_vec`] to recover instead.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        Self::try_from_vec(data, dims).expect("element count must match shape")
    }

    /// Creates a tensor from a flat `Vec`, validating the element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ElementCountMismatch`] if the data length does
    /// not match the shape, or [`TensorError::InvalidShape`] for an empty
    /// dimension list.
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::try_new(dims)?;
        if data.len() != shape.numel() {
            return Err(TensorError::ElementCountMismatch {
                provided: data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every multi-index, in row-major
    /// order.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        let mut index = vec![0usize; shape.rank()];
        for _ in 0..n {
            data.push(f(&index));
            // Row-major increment.
            for axis in (0..index.len()).rev() {
                index[axis] += 1;
                if index[axis] < shape.dim(axis) {
                    break;
                }
                index[axis] = 0;
            }
        }
        Self { shape, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a 1-D tensor with values `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension list (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Read-only view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a copy with a new shape holding the same elements.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape from {} to {} changes element count",
            self.shape,
            shape
        );
        Self {
            shape,
            data: self.data.clone(),
        }
    }

    /// Reinterprets the shape in place (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn into_reshaped(mut self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape changes element count");
        self.shape = shape;
        self
    }

    /// Borrows row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.dim(1);
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Mutably borrows row `i` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.dim(1);
        &mut self.data[i * cols..(i + 1) * cols]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_map requires identical shapes ({} vs {})",
            self.shape, other.shape
        );
        Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Reshapes the tensor in place to `dims` and zeroes every element,
    /// reusing the existing allocation when it is large enough.
    ///
    /// This is the scratch-buffer primitive behind the batched inference
    /// path: output tensors owned by a reusable workspace are `reset_zeroed`
    /// instead of freshly allocated, so steady-state batches perform no
    /// per-image heap allocation for activations.
    pub fn reset_zeroed(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        let n = shape.numel();
        self.data.clear();
        self.data.resize(n, 0.0);
        self.shape = shape;
    }

    /// Reshapes the tensor in place to `dims` **without** clearing the
    /// storage: element values are unspecified (stale or zero) and every one
    /// must be overwritten by the caller.
    ///
    /// The cheaper sibling of [`Tensor::reset_zeroed`] for operations that
    /// fully overwrite their output (copies, gathers, concatenations),
    /// avoiding a redundant zeroing pass over the scratch buffers on the
    /// batched engine's hot path. Accumulating kernels (GEMM) must use
    /// [`Tensor::reset_zeroed`] instead.
    pub fn reset_unspecified(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        let n = shape.numel();
        self.data.resize(n, 0.0);
        self.shape = shape;
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff requires same shapes");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// `true` if all elements are within `tol` of `other`'s.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn allclose(&self, other: &Self, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.numel() > PREVIEW {
            write!(f, ", … {} more", self.numel() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl Default for Tensor {
    /// A single zero scalar, shaped `[1]`.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |ix| (ix[0] * 10 + ix[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn eye_is_identity() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn set_then_at() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.5);
        assert_eq!(t.at(&[1, 0, 1]), 7.5);
        assert_eq!(t.data()[5], 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.at(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        Tensor::arange(6).reshape(&[4, 2]);
    }

    #[test]
    fn rows_are_contiguous() {
        let t = Tensor::from_fn(&[3, 4], |ix| ix[0] as f32);
        assert_eq!(t.row(2), &[2.0; 4]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = a.map(f32::abs);
        assert_eq!(b.data(), &[1.0, 2.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2.0, 0.0]);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[3], 1.0 + 1e-6);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[0], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn reset_zeroed_reshapes_and_clears() {
        let mut t = Tensor::full(&[4, 4], 7.0);
        t.reset_zeroed(&[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        // Growing past the previous size must also be fully zeroed.
        t.reset_zeroed(&[5, 5]);
        assert_eq!(t.numel(), 25);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn debug_is_nonempty_and_bounded() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("more"));
        assert!(s.len() < 200);
    }
}
