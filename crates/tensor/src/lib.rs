//! # heatvit-tensor
//!
//! Dense `f32` tensor substrate for the [HeatViT](https://arxiv.org/abs/2211.08110)
//! reproduction: contiguous row-major storage, blocked GEMM kernels, elementwise
//! and structural operations, reductions, and seeded random initializers.
//!
//! The crate is intentionally small and dependency-light (only `rand`): it
//! exists so that the rest of the workspace — the autograd tape in
//! `heatvit-nn`, the ViT backbone in `heatvit-vit`, the token selector in
//! `heatvit-selector` and the integer paths in `heatvit-quant` — can share one
//! well-tested numeric core whose operations map one-to-one onto the GEMM
//! engine modelled by `heatvit-fpga`.
//!
//! ## Example
//!
//! ```
//! use heatvit_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // A toy "token matrix": 5 tokens, 8 channels.
//! let tokens = Tensor::rand_normal(&[5, 8], 0.0, 1.0, &mut rng);
//! let weight = Tensor::xavier_uniform(8, 4, &mut rng);
//! let out = tokens.matmul(&weight);
//! assert_eq!(out.dims(), &[5, 4]);
//!
//! // Dense repacking: keep tokens 0, 2 and 4 only.
//! let kept = out.gather_rows(&[0, 2, 4]);
//! assert_eq!(kept.dims(), &[3, 4]);
//! ```

#![warn(missing_docs)]

mod error;
mod matmul;
mod ops;
mod random;
mod reduce;
pub mod scalar;
mod shape;
mod tensor;

pub use error::TensorError;
pub use matmul::{
    gemm, gemm_packed, gemm_packed_rows, pack_b, pack_b_into, pack_b_t, packed_len, GemmScratch,
    MR, NR,
};
pub use random::sample_standard_normal;
pub use shape::Shape;
pub use tensor::Tensor;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
            proptest::collection::vec(-10.0f32..10.0, m * n)
                .prop_map(move |data| Tensor::from_vec(data, &[m, n]))
        })
    }

    proptest! {
        #[test]
        fn matmul_identity_left_right(a in small_matrix(8)) {
            let (m, n) = (a.dim(0), a.dim(1));
            prop_assert!(Tensor::eye(m).matmul(&a).allclose(&a, 1e-4));
            prop_assert!(a.matmul(&Tensor::eye(n)).allclose(&a, 1e-4));
        }

        #[test]
        fn matmul_distributes_over_addition(
            seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
            let c = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            prop_assert!(lhs.allclose(&rhs, 1e-3));
        }

        #[test]
        fn transpose_swaps_matmul_order(
            seed in 0u64..1000, m in 1usize..6, k in 1usize..6, n in 1usize..6
        ) {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
            // (A·B)ᵀ = Bᵀ·Aᵀ
            let lhs = a.matmul(&b).transpose2();
            let rhs = b.transpose2().matmul(&a.transpose2());
            prop_assert!(lhs.allclose(&rhs, 1e-3));
        }

        #[test]
        fn softmax_rows_sum_to_one(a in small_matrix(8)) {
            let s = a.softmax_rows();
            for r in 0..s.dim(0) {
                let sum: f32 = s.row(r).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
            }
        }

        #[test]
        fn gather_preserves_row_content(a in small_matrix(8), pick in proptest::collection::vec(0usize..8, 0..8)) {
            let idx: Vec<usize> = pick.into_iter().filter(|&i| i < a.dim(0)).collect();
            let g = a.gather_rows(&idx);
            for (r, &i) in idx.iter().enumerate() {
                prop_assert_eq!(g.row(r), a.row(i));
            }
        }

        #[test]
        fn concat_rows_length(a in small_matrix(6)) {
            let c = Tensor::concat_rows(&[&a, &a]);
            prop_assert_eq!(c.dim(0), 2 * a.dim(0));
            prop_assert_eq!(c.dim(1), a.dim(1));
        }
    }
}
