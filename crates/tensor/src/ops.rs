//! Elementwise arithmetic, broadcasting helpers, and structural ops
//! (concatenation, slicing, gathering) used throughout the ViT stack.
//!
//! Gathering and concatenation are load-bearing for HeatViT: after the token
//! selector classifies tokens, the informative rows are *gathered* and the
//! package token *concatenated* to form a smaller dense matrix — the software
//! mirror of the accelerator's dense-repacking flow (paper Fig. 9).

use crate::Tensor;

impl Tensor {
    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Elementwise quotient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds a rank-1 `bias` to every row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or `bias.len() != self.dim(1)`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires rank 2");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        assert_eq!(bias.dim(0), self.dim(1), "bias length must match columns");
        let n = self.dim(1);
        let mut out = self.clone();
        for row in out.data_mut().chunks_mut(n) {
            for (o, &b) in row.iter_mut().zip(bias.data().iter()) {
                *o += b;
            }
        }
        out
    }

    /// Multiplies each row `i` of a rank-2 tensor by `weights[i]`.
    ///
    /// Used by the token packager to weight non-informative tokens by their
    /// keep score before averaging (paper Eq. 10).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or `weights.len() != self.dim(0)`.
    pub fn scale_rows(&self, weights: &[f32]) -> Tensor {
        assert_eq!(self.rank(), 2, "scale_rows requires rank 2");
        assert_eq!(weights.len(), self.dim(0), "one weight per row required");
        let n = self.dim(1);
        let mut out = self.clone();
        for (row, &w) in out.data_mut().chunks_mut(n).zip(weights.iter()) {
            for o in row.iter_mut() {
                *o *= w;
            }
        }
        out
    }

    /// Concatenates rank-2 tensors along rows (axis 0).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not rank 2, or column counts
    /// differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        let mut out = Tensor::default();
        Self::concat_rows_into(parts, &mut out);
        out
    }

    /// Concatenates rank-2 tensors along columns (axis 1).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, any part is not rank 2, or row counts
    /// differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        let mut out = Tensor::default();
        Self::concat_cols_into(parts, &mut out);
        out
    }

    /// Copies rows `[start, end)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range is out of bounds.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let mut out = Tensor::default();
        self.slice_rows_into(start, end, &mut out);
        out
    }

    /// [`Tensor::slice_rows`] writing into a caller-provided output tensor
    /// (see [`Tensor::gather_rows_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::slice_rows`].
    pub fn slice_rows_into(&self, start: usize, end: usize, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "slice_rows requires rank 2");
        assert!(
            start <= end && end <= self.dim(0),
            "row range out of bounds"
        );
        let cols = self.dim(1);
        out.reset_unspecified(&[end - start, cols]);
        out.data_mut()
            .copy_from_slice(&self.data()[start * cols..end * cols]);
    }

    /// Copies columns `[start, end)` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the range is out of bounds.
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "slice_cols requires rank 2");
        assert!(
            start <= end && end <= self.dim(1),
            "column range out of bounds"
        );
        let rows = self.dim(0);
        let mut data = Vec::with_capacity(rows * (end - start));
        for r in 0..rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Tensor::from_vec(data, &[rows, end - start])
    }

    /// [`Tensor::slice_cols`] writing into a caller-provided output tensor
    /// (see [`Tensor::gather_rows_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::slice_cols`].
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "slice_cols requires rank 2");
        assert!(
            start <= end && end <= self.dim(1),
            "column range out of bounds"
        );
        let rows = self.dim(0);
        let width = end - start;
        out.reset_unspecified(&[rows, width]);
        for r in 0..rows {
            out.data_mut()[r * width..(r + 1) * width].copy_from_slice(&self.row(r)[start..end]);
        }
    }

    /// Gathers rows of a rank-2 tensor by index, in order.
    ///
    /// This is the dense-repacking primitive: informative token rows are
    /// gathered into a new, smaller matrix so downstream GEMMs stay dense.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::default();
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`Tensor::gather_rows`] writing into a caller-provided output tensor.
    ///
    /// `out` is reshaped (reusing its allocation) and overwritten — the
    /// allocation-free form of the dense-repacking primitive used by the
    /// batched engine.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::gather_rows`].
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "gather_rows requires rank 2");
        let cols = self.dim(1);
        out.reset_unspecified(&[indices.len(), cols]);
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < self.dim(0), "gather index {i} out of bounds");
            out.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(self.row(i));
        }
    }

    /// [`Tensor::concat_rows`] writing into a caller-provided output tensor
    /// (see [`Tensor::gather_rows_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::concat_rows`].
    pub fn concat_rows_into(parts: &[&Tensor], out: &mut Tensor) {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let cols = parts[0].dim(1);
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.rank(), 2, "concat_rows parts must be rank 2");
            assert_eq!(p.dim(1), cols, "concat_rows parts must share columns");
            rows += p.dim(0);
        }
        out.reset_unspecified(&[rows, cols]);
        let mut offset = 0;
        for p in parts {
            out.data_mut()[offset..offset + p.numel()].copy_from_slice(p.data());
            offset += p.numel();
        }
    }

    /// [`Tensor::concat_cols`] writing into a caller-provided output tensor
    /// (see [`Tensor::gather_rows_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::concat_cols`].
    pub fn concat_cols_into(parts: &[&Tensor], out: &mut Tensor) {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let rows = parts[0].dim(0);
        let total_cols: usize = parts
            .iter()
            .map(|p| {
                assert_eq!(p.rank(), 2, "concat_cols parts must be rank 2");
                assert_eq!(p.dim(0), rows, "concat_cols parts must share rows");
                p.dim(1)
            })
            .sum();
        out.reset_unspecified(&[rows, total_cols]);
        for r in 0..rows {
            let mut offset = r * total_cols;
            for p in parts {
                let w = p.dim(1);
                out.data_mut()[offset..offset + w].copy_from_slice(p.row(r));
                offset += w;
            }
        }
    }

    /// Scatters `src` rows back into a zero tensor of `rows` rows at
    /// `indices` — the adjoint of [`Tensor::gather_rows`], used by autograd.
    ///
    /// # Panics
    ///
    /// Panics if `src.dim(0) != indices.len()` or any index is out of bounds.
    pub fn scatter_rows(src: &Tensor, indices: &[usize], rows: usize) -> Tensor {
        assert_eq!(src.rank(), 2, "scatter_rows requires rank 2");
        assert_eq!(src.dim(0), indices.len(), "one index per source row");
        let cols = src.dim(1);
        let mut out = Tensor::zeros(&[rows, cols]);
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < rows, "scatter index {i} out of bounds");
            let dst = &mut out.data_mut()[i * cols..(i + 1) * cols];
            for (d, &s) in dst.iter_mut().zip(src.row(r).iter()) {
                *d += s;
            }
        }
        out
    }

    /// Stacks rank-2 tensors into a rank-3 tensor along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack requires at least one part");
        let dims = parts[0].dims().to_vec();
        let mut data = Vec::with_capacity(parts.len() * parts[0].numel());
        for p in parts {
            assert_eq!(p.dims(), &dims[..], "stack parts must share shape");
            data.extend_from_slice(p.data());
        }
        let mut out_dims = vec![parts.len()];
        out_dims.extend_from_slice(&dims);
        Tensor::from_vec(data, &out_dims)
    }

    /// Extracts sub-tensor `i` along the leading axis of a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or `i` is out of bounds.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 3, "index_axis0 requires rank 3");
        assert!(i < self.dim(0), "index out of bounds");
        let (m, n) = (self.dim(1), self.dim(2));
        Tensor::from_vec(self.data()[i * m * n..(i + 1) * m * n].to_vec(), &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::full(&[2, 2], 2.0);
        assert_eq!(a.add(&b).sub(&b).data(), a.data());
        assert_eq!(a.mul(&b).div(&b).data(), a.data());
        assert_eq!(a.scale(2.0).data(), a.add(&a).data());
    }

    #[test]
    fn row_broadcast() {
        let a = Tensor::zeros(&[3, 2]);
        let bias = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn scale_rows_weights_each_row() {
        let a = Tensor::ones(&[2, 3]);
        let out = a.scale_rows(&[2.0, 0.5]);
        assert_eq!(out.row(0), &[2.0; 3]);
        assert_eq!(out.row(1), &[0.5; 3]);
    }

    #[test]
    fn concat_then_slice_roundtrip() {
        let a = Tensor::from_fn(&[2, 3], |ix| ix[1] as f32);
        let b = Tensor::from_fn(&[1, 3], |_| 9.0);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 3]);
        assert!(c.slice_rows(0, 2).allclose(&a, 0.0));
        assert!(c.slice_rows(2, 3).allclose(&b, 0.0));
    }

    #[test]
    fn concat_cols_interleaves_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.row(0), &[1.0, 3.0]);
        assert_eq!(c.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn slice_cols_extracts_range() {
        let a = Tensor::from_fn(&[2, 4], |ix| (ix[0] * 4 + ix[1]) as f32);
        let s = a.slice_cols(1, 3);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn slice_cols_into_matches_allocating_path() {
        let a = Tensor::from_fn(&[3, 5], |ix| (ix[0] * 5 + ix[1]) as f32);
        // A stale, differently-shaped buffer must be reshaped and overwritten.
        let mut out = Tensor::full(&[2, 2], 7.0);
        a.slice_cols_into(1, 4, &mut out);
        assert!(out.allclose(&a.slice_cols(1, 4), 0.0));
        a.slice_cols_into(0, 0, &mut out);
        assert_eq!(out.dims(), &[3, 0]);
    }

    #[test]
    fn gather_scatter_adjoint() {
        // scatter(gather(x, idx), idx) preserves the gathered rows and zeros
        // the rest — exactly the gradient flow the selector needs.
        let x = Tensor::from_fn(&[4, 2], |ix| (ix[0] * 2 + ix[1]) as f32);
        let idx = [2usize, 0];
        let g = x.gather_rows(&idx);
        assert_eq!(g.row(0), x.row(2));
        assert_eq!(g.row(1), x.row(0));
        let s = Tensor::scatter_rows(&g, &idx, 4);
        assert_eq!(s.row(0), x.row(0));
        assert_eq!(s.row(2), x.row(2));
        assert_eq!(s.row(1), &[0.0, 0.0]);
        assert_eq!(s.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_accumulates_duplicate_indices() {
        let src = Tensor::ones(&[2, 1]);
        let out = Tensor::scatter_rows(&src, &[1, 1], 3);
        assert_eq!(out.row(1), &[2.0]);
    }

    #[test]
    fn stack_and_index_axis0() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert!(s.index_axis0(0).allclose(&a, 0.0));
        assert!(s.index_axis0(1).allclose(&b, 0.0));
    }

    #[test]
    #[should_panic(expected = "share columns")]
    fn concat_rows_checks_columns() {
        Tensor::concat_rows(&[&Tensor::zeros(&[1, 2]), &Tensor::zeros(&[1, 3])]);
    }

    #[test]
    fn into_variants_match_allocating_structural_ops() {
        let x = Tensor::from_fn(&[5, 3], |ix| (ix[0] * 3 + ix[1]) as f32);
        let y = Tensor::from_fn(&[5, 2], |ix| -(ix[1] as f32));
        let mut out = Tensor::full(&[2, 2], f32::NAN);

        x.gather_rows_into(&[4, 0, 2], &mut out);
        assert_eq!(out.data(), x.gather_rows(&[4, 0, 2]).data());
        assert_eq!(out.dims(), &[3, 3]);

        Tensor::concat_rows_into(&[&x, &x], &mut out);
        assert_eq!(out.data(), Tensor::concat_rows(&[&x, &x]).data());

        Tensor::concat_cols_into(&[&x, &y], &mut out);
        assert_eq!(out.data(), Tensor::concat_cols(&[&x, &y]).data());
        assert_eq!(out.dims(), &[5, 5]);
    }

    #[test]
    fn gather_empty_produces_zero_rows() {
        let x = Tensor::ones(&[3, 2]);
        let g = x.gather_rows(&[]);
        assert_eq!(g.dims(), &[0, 2]);
    }
}
