//! Scalar nonlinear functions and their derivatives.
//!
//! These are the *reference* ("original") implementations of the nonlinear
//! functions that appear in ViTs — GELU, Sigmoid, Hardswish, erf — against
//! which `heatvit-quant` validates its hardware-friendly polynomial
//! approximations (paper Section V-D). `f32::erf` is not in the standard
//! library, so a high-accuracy rational approximation is provided here.

/// Error function `erf(x)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation (max absolute
/// error ≈ 1.5·10⁻⁷), which is far below `f32` noise for our purposes.
///
/// # Examples
///
/// ```
/// use heatvit_tensor::scalar::erf;
/// assert!((erf(0.0)).abs() < 1e-7);
/// assert!((erf(10.0) - 1.0).abs() < 1e-6);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-6); // odd function
/// ```
pub fn erf(x: f32) -> f32 {
    const A1: f32 = 0.254_829_6;
    const A2: f32 = -0.284_496_72;
    const A3: f32 = 1.421_413_8;
    const A4: f32 = -1.453_152_1;
    const A5: f32 = 1.061_405_4;
    const P: f32 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Exact GELU: `x/2 · (1 + erf(x/√2))`.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x / std::f32::consts::SQRT_2))
}

/// Derivative of the exact GELU.
///
/// `GELU'(x) = Φ(x) + x·φ(x)` with `Φ` the standard-normal CDF and `φ` its
/// density. Referenced by the paper's quantization-error argument (Fig. 10):
/// for the *approximated* GELU this derivative is kept below one.
pub fn gelu_derivative(x: f32) -> f32 {
    let phi_cdf = 0.5 * (1.0 + erf(x / std::f32::consts::SQRT_2));
    let phi_pdf = (-0.5 * x * x).exp() / (2.0 * std::f32::consts::PI).sqrt();
    phi_cdf + x * phi_pdf
}

/// Logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid: `σ(x)·(1 − σ(x))`.
pub fn sigmoid_derivative(x: f32) -> f32 {
    let s = sigmoid(x);
    s * (1.0 - s)
}

/// ReLU.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU (`0` at the kink).
pub fn relu_derivative(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Hardswish (MobileNetV3): `x · relu6(x+3) / 6`.
pub fn hardswish(x: f32) -> f32 {
    x * (x + 3.0).clamp(0.0, 6.0) / 6.0
}

/// Derivative of Hardswish.
pub fn hardswish_derivative(x: f32) -> f32 {
    if x <= -3.0 {
        0.0
    } else if x >= 3.0 {
        1.0
    } else {
        (2.0 * x + 3.0) / 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numerical_derivative(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn erf_known_values() {
        // erf(1) = 0.8427007929..., erf(2) = 0.9953222650...
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322_3).abs() < 1e-5);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-6);
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn gelu_limits() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(10.0) - 10.0).abs() < 1e-4); // identity for large x
        assert!(gelu(-10.0).abs() < 1e-4); // zero for very negative x
                                           // GELU(x) − GELU(−x) == x (since Φ(x)+Φ(−x)=1)
        for i in -20..=20 {
            let x = i as f32 * 0.2;
            assert!((gelu(x) - gelu(-x) - x).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_derivative_matches_numeric() {
        for i in -30..=30 {
            let x = i as f32 * 0.1;
            let analytic = gelu_derivative(x);
            let numeric = numerical_derivative(gelu, x);
            assert!(
                (analytic - numeric).abs() < 2e-3,
                "x={x}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(30.0) > 0.999_999);
        assert!(sigmoid(-30.0) < 1e-6);
        // σ(x) + σ(−x) = 1
        for i in -20..=20 {
            let x = i as f32 * 0.3;
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_derivative_matches_numeric() {
        for i in -20..=20 {
            let x = i as f32 * 0.2;
            let d = (sigmoid_derivative(x) - numerical_derivative(sigmoid, x)).abs();
            assert!(d < 1e-3);
        }
    }

    #[test]
    fn hardswish_matches_reference_points() {
        assert_eq!(hardswish(-4.0), 0.0);
        assert_eq!(hardswish(4.0), 4.0);
        assert_eq!(hardswish(0.0), 0.0);
        assert!((hardswish(-1.5) - (-1.5 * 1.5 / 6.0)).abs() < 1e-6);
    }

    #[test]
    fn hardswish_derivative_matches_numeric() {
        for i in -25..=25 {
            let x = i as f32 * 0.25 + 0.01; // avoid the exact kinks
            let d = (hardswish_derivative(x) - numerical_derivative(hardswish, x)).abs();
            assert!(d < 1e-3, "x={x}");
        }
    }

    #[test]
    fn relu_basics() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
        assert_eq!(relu_derivative(-1.0), 0.0);
        assert_eq!(relu_derivative(1.0), 1.0);
    }
}
