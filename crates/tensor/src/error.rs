//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
///
/// Most tensor methods in this crate validate shapes eagerly and panic with a
/// descriptive message (the conventional choice for numeric kernels, matching
/// `ndarray`); the `try_*` constructors and conversions return this type
/// instead so callers building tensors from untrusted input can recover.
///
/// # Examples
///
/// ```
/// use heatvit_tensor::{Tensor, TensorError};
///
/// let err = Tensor::try_from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(matches!(err, TensorError::ElementCountMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The number of provided elements does not match the requested shape.
    ElementCountMismatch {
        /// Number of elements supplied by the caller.
        provided: usize,
        /// Number of elements the requested shape requires.
        expected: usize,
    },
    /// Two operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// A shape with zero dimensions (or other invalid layout) was supplied.
    InvalidShape {
        /// Human-readable reason the shape was rejected.
        reason: String,
    },
    /// An index was outside the bounds of the tensor.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the dimension that was indexed.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ElementCountMismatch { provided, expected } => write!(
                f,
                "element count mismatch: {provided} elements provided but shape requires {expected}"
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of length {len}"
                )
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn debug_is_nonempty() {
        let err = TensorError::InvalidShape {
            reason: "empty".into(),
        };
        assert!(!format!("{err:?}").is_empty());
    }
}
