//! Matrix multiplication kernels.
//!
//! These are the software analogue of the GEMM engine in the HeatViT FPGA
//! accelerator: every dense layer in the backbone ViT *and* in the token
//! selector lowers to one of the routines here, mirroring the paper's design
//! decision to express the selector with linear layers so it can reuse the
//! GEMM hardware.
//!
//! The production path is a cache-blocked packed kernel (the software mirror
//! of the paper's Fig. 8 tiling): `B` is packed into zero-padded column
//! panels of width [`NR`], and an [`MR`]`×`[`NR`] register-resident
//! accumulator tile is driven by `chunks_exact` inner loops that
//! auto-vectorize without any per-element branching. Both `A·B` and `A·Bᵀ`
//! reduce to the same microkernel after packing, so the attention-score shape
//! `Q·Kᵀ` gets the vectorized path too (its previous per-element dot products
//! compiled to scalar reductions — floats cannot be reassociated).
//!
//! Per output element the accumulation order is ascending `k`, identical to
//! the naive triple loop, so the packed kernel is bit-compatible with the
//! [`gemm`] reference and run-to-run deterministic.

use crate::Tensor;

/// Rows per microkernel tile: how many output rows share one loaded `B`
/// panel value (register blocking over `m`).
pub const MR: usize = 4;

/// Columns per packed panel: the SIMD-friendly width of the accumulator
/// tile. Panels are zero-padded to this width so the inner loop never
/// branches on a column remainder.
pub const NR: usize = 16;

/// Reusable packing/staging workspace for the blocked GEMM entry points.
///
/// Contents are unspecified between calls — the buffers exist purely so the
/// hot path performs no per-call heap allocation once warm. One scratch can
/// serve any sequence of differently-shaped products; the buffers grow to the
/// high-water mark and stay there.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    /// Packed `B` panels (see [`pack_b`]).
    pub pack: Vec<f32>,
    /// Row-tile staging area (transposed `A` gathers, fused layer-norm
    /// tiles, …).
    pub tile: Vec<f32>,
}

/// Number of `f32` slots [`pack_b`] needs for a `k×n` operand.
pub fn packed_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Packs a row-major `k×n` matrix into column panels of width [`NR`].
///
/// Panel `i` holds columns `i*NR .. i*NR+NR` as `k` contiguous rows of `NR`
/// values; columns beyond `n` are zero-filled so the microkernel can always
/// run a full-width inner loop. `pack` is cleared and resized to
/// [`packed_len`]`(k, n)`.
pub fn pack_b(b: &[f32], k: usize, n: usize, pack: &mut Vec<f32>) {
    pack.clear();
    pack.resize(packed_len(k, n), 0.0);
    pack_b_into(b, k, n, pack);
}

/// [`pack_b`] writing into a caller-sliced region of exactly
/// [`packed_len`]`(k, n)` floats (which may be stale — padding is
/// re-zeroed). Lets several operands share one scratch buffer, e.g. the
/// fused layer-norm path packing the Q/K/V weights side by side.
///
/// # Panics
///
/// Panics if `dst` is not exactly [`packed_len`]`(k, n)` long.
pub fn pack_b_into(b: &[f32], k: usize, n: usize, dst: &mut [f32]) {
    debug_assert_eq!(b.len(), k * n);
    assert_eq!(dst.len(), packed_len(k, n), "pack region size mismatch");
    if k == 0 || n == 0 {
        return;
    }
    for (pi, panel) in dst.chunks_exact_mut(k * NR).enumerate() {
        let j0 = pi * NR;
        let jn = NR.min(n - j0);
        for (dst, src) in panel.chunks_exact_mut(NR).zip(b[j0..].chunks(n)) {
            dst[..jn].copy_from_slice(&src[..jn]);
            dst[jn..].fill(0.0);
        }
    }
}

/// Packs the transpose of a row-major `n×k` matrix (`bt` stores `Bᵀ`) into
/// the same panel layout [`pack_b`] produces for `B` itself.
///
/// This is what turns `A·Bᵀ` into a plain packed product: after packing, the
/// microkernel cannot tell the two entry shapes apart.
pub fn pack_b_t(bt: &[f32], n: usize, k: usize, pack: &mut Vec<f32>) {
    debug_assert_eq!(bt.len(), n * k);
    pack.clear();
    pack.resize(packed_len(k, n), 0.0);
    if k == 0 || n == 0 {
        return;
    }
    for (pi, panel) in pack.chunks_exact_mut(k * NR).enumerate() {
        let j0 = pi * NR;
        let jn = NR.min(n - j0);
        for (c, src_row) in bt[j0 * k..(j0 + jn) * k].chunks_exact(k).enumerate() {
            for (dst, &v) in panel.chunks_exact_mut(NR).zip(src_row.iter()) {
                dst[c] = v;
            }
        }
    }
}

/// Full [`MR`]-row microkernel: accumulates one `MR×NR` tile over the whole
/// `k` extent of one packed panel. All accumulators stay in registers; each
/// loaded panel row is reused [`MR`] times.
#[inline(always)]
fn micro_full(a: [&[f32]; MR], panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    let [a0, a1, a2, a3] = a;
    let [c0, c1, c2, c3] = acc;
    for ((((bp, &v0), &v1), &v2), &v3) in panel
        .chunks_exact(NR)
        .zip(a0.iter())
        .zip(a1.iter())
        .zip(a2.iter())
        .zip(a3.iter())
    {
        for j in 0..NR {
            c0[j] += v0 * bp[j];
            c1[j] += v1 * bp[j];
            c2[j] += v2 * bp[j];
            c3[j] += v3 * bp[j];
        }
    }
}

/// Remainder-row microkernel for the final tile when `m % MR != 0`.
#[inline(always)]
fn micro_tail(a_rows: &[f32], mr: usize, k: usize, panel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (arow, accr) in a_rows.chunks_exact(k).take(mr).zip(acc.iter_mut()) {
        for (&av, bp) in arow.iter().zip(panel.chunks_exact(NR)) {
            for (c, &bv) in accr.iter_mut().zip(bp.iter()) {
                *c += av * bv;
            }
        }
    }
}

/// Runs the packed microkernel over one block of `mr ≤ MR` contiguous `A`
/// rows, writing `mr` finished rows of `C = A·B (+ bias)`.
///
/// `a_rows` is `mr` contiguous rows of length `k`; `pack` is the output of
/// [`pack_b`]/[`pack_b_t`]; `out_rows` is the matching `mr×n` output slab.
/// This is the fusion point: callers that produce `A` tiles on the fly (the
/// fused layer-norm + projection path) call this directly with a staged tile.
pub fn gemm_packed_rows(
    a_rows: &[f32],
    mr: usize,
    k: usize,
    pack: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    out_rows: &mut [f32],
) {
    debug_assert!(mr <= MR);
    debug_assert!(a_rows.len() >= mr * k);
    debug_assert!(out_rows.len() >= mr * n);
    if n == 0 {
        return;
    }
    if k == 0 {
        for r in 0..mr {
            let orow = &mut out_rows[r * n..(r + 1) * n];
            match bias {
                Some(bs) => orow.copy_from_slice(&bs[..n]),
                None => orow.fill(0.0),
            }
        }
        return;
    }
    let mut j0 = 0;
    for panel in pack.chunks_exact(k * NR) {
        let jn = NR.min(n - j0);
        let mut acc = [[0.0f32; NR]; MR];
        if mr == MR {
            let rows = [
                &a_rows[..k],
                &a_rows[k..2 * k],
                &a_rows[2 * k..3 * k],
                &a_rows[3 * k..4 * k],
            ];
            micro_full(rows, panel, &mut acc);
        } else {
            micro_tail(a_rows, mr, k, panel, &mut acc);
        }
        for (r, accr) in acc.iter().enumerate().take(mr) {
            let orow = &mut out_rows[r * n + j0..r * n + j0 + jn];
            match bias {
                Some(bs) => {
                    for ((o, &c), &bv) in orow.iter_mut().zip(accr.iter()).zip(bs[j0..].iter()) {
                        *o = c + bv;
                    }
                }
                None => orow.copy_from_slice(&accr[..jn]),
            }
        }
        j0 += NR;
    }
}

/// Blocked GEMM over a pre-packed `B`: `c = a · B (+ bias)`, overwriting `c`.
///
/// `a` is row-major `m×k`, `pack` comes from [`pack_b`]/[`pack_b_t`], `c` is
/// row-major `m×n`. Bit-compatible with the [`gemm`] reference (per-element
/// accumulation order is ascending `k` in both).
pub fn gemm_packed(
    a: &[f32],
    m: usize,
    k: usize,
    pack: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for r in 0..m {
            let orow = &mut c[r * n..(r + 1) * n];
            match bias {
                Some(bs) => orow.copy_from_slice(&bs[..n]),
                None => orow.fill(0.0),
            }
        }
        return;
    }
    for (a_rows, out_rows) in a.chunks(MR * k).zip(c.chunks_mut(MR * n)) {
        let mr = a_rows.len() / k;
        gemm_packed_rows(a_rows, mr, k, pack, n, bias, out_rows);
    }
}

impl Tensor {
    /// Matrix product `self · rhs` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions do not
    /// match.
    ///
    /// # Examples
    ///
    /// ```
    /// use heatvit_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhsᵀ` for rank-2 tensors.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose2())` but packs straight from
    /// the transposed layout; used for attention scores `Q · Kᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the last dimensions differ.
    pub fn matmul_transb(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_transb_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided output tensor.
    ///
    /// `out` is reshaped (reusing its allocation) and overwritten; the values
    /// are bit-identical to `self.matmul(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul`].
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.matmul_with(rhs, &mut GemmScratch::default(), out);
    }

    /// [`Tensor::matmul_into`] staging the packed operand in a caller-owned
    /// [`GemmScratch`], so repeated products perform no heap allocation once
    /// the workspace is warm. Values are bit-identical to every other
    /// `matmul` entry point.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul`].
    pub fn matmul_with(&self, rhs: &Tensor, gs: &mut GemmScratch, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul inner dimensions must agree ({k} vs {k2})");
        out.reset_unspecified(&[m, n]);
        pack_b(rhs.data(), k, n, &mut gs.pack);
        gemm_packed(self.data(), m, k, &gs.pack, n, None, out.data_mut());
    }

    /// [`Tensor::matmul_transb`] writing into a caller-provided output
    /// tensor (see [`Tensor::matmul_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_transb`].
    pub fn matmul_transb_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.matmul_transb_with(rhs, &mut GemmScratch::default(), out);
    }

    /// [`Tensor::matmul_transb_into`] staging the packed operand in a
    /// caller-owned [`GemmScratch`] (no allocation once warm).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_transb`].
    pub fn matmul_transb_with(&self, rhs: &Tensor, gs: &mut GemmScratch, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul_transb lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_transb rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "matmul_transb inner dimensions must agree ({k} vs {k2})"
        );
        out.reset_unspecified(&[m, n]);
        pack_b_t(rhs.data(), n, k, &mut gs.pack);
        gemm_packed(self.data(), m, k, &gs.pack, n, None, out.data_mut());
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// `self` is `[M, K]`, `rhs` is `[M, N]`; the result is `[K, N]`. This is
    /// the weight-gradient shape of the autograd tape (`Aᵀ·G`): only an
    /// [`MR`]-row tile of the transpose is ever staged, not the full matrix.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the leading dimensions
    /// differ.
    pub fn matmul_transa(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_transa_with(rhs, &mut GemmScratch::default(), &mut out);
        out
    }

    /// [`Tensor::matmul_transa`] staging both the packed operand and the
    /// transposed row tiles in a caller-owned [`GemmScratch`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_transa`].
    pub fn matmul_transa_with(&self, rhs: &Tensor, gs: &mut GemmScratch, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul_transa lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_transa rhs must be rank 2");
        let (m, ka) = (self.dim(0), self.dim(1));
        let (m2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            m, m2,
            "matmul_transa leading dimensions must agree ({m} vs {m2})"
        );
        out.reset_unspecified(&[ka, n]);
        pack_b(rhs.data(), m, n, &mut gs.pack);
        gs.tile.clear();
        gs.tile.resize(MR * m, 0.0);
        let a = self.data();
        let od = out.data_mut();
        for i0 in (0..ka).step_by(MR) {
            let mr = MR.min(ka - i0);
            // Gather columns i0..i0+mr of `self` into mr contiguous rows.
            for (p, src_row) in a.chunks_exact(ka).enumerate() {
                for (r, &v) in src_row[i0..i0 + mr].iter().enumerate() {
                    gs.tile[r * m + p] = v;
                }
            }
            gemm_packed_rows(
                &gs.tile,
                mr,
                m,
                &gs.pack,
                n,
                None,
                &mut od[i0 * n..(i0 + mr) * n],
            );
        }
    }

    /// [`Tensor::matmul_bias`] writing into a caller-provided output tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_bias`].
    pub fn matmul_bias_into(&self, rhs: &Tensor, bias: &Tensor, out: &mut Tensor) {
        self.matmul_bias_with(rhs, bias, &mut GemmScratch::default(), out);
    }

    /// [`Tensor::matmul_bias_into`] staging the packed operand in a
    /// caller-owned [`GemmScratch`]. The bias add is fused into the tile
    /// write-back rather than running as a second pass over the output.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_bias`].
    pub fn matmul_bias_with(
        &self,
        rhs: &Tensor,
        bias: &Tensor,
        gs: &mut GemmScratch,
        out: &mut Tensor,
    ) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank 2");
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        assert_eq!(
            bias.dim(0),
            rhs.dim(1),
            "bias length must equal output columns"
        );
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul inner dimensions must agree ({k} vs {k2})");
        out.reset_unspecified(&[m, n]);
        pack_b(rhs.data(), k, n, &mut gs.pack);
        gemm_packed(
            self.data(),
            m,
            k,
            &gs.pack,
            n,
            Some(bias.data()),
            out.data_mut(),
        );
    }

    /// Fused `self · rhs + bias` where `bias` is broadcast over rows.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch, or if `bias` is not a rank-1 tensor of
    /// length `rhs.dim(1)`.
    pub fn matmul_bias(&self, rhs: &Tensor, bias: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_bias_into(rhs, bias, &mut out);
        out
    }

    /// Batched matrix product for rank-3 tensors: `[B, M, K] · [B, K, N]`.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not rank 3, batch sizes differ, or inner
    /// dimensions do not match.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.bmm_into(rhs, &mut out);
        out
    }

    /// [`Tensor::bmm`] writing into a caller-provided output tensor (see
    /// [`Tensor::matmul_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::bmm`].
    pub fn bmm_into(&self, rhs: &Tensor, out: &mut Tensor) {
        self.bmm_with(rhs, &mut GemmScratch::default(), out);
    }

    /// [`Tensor::bmm_into`] staging the packed operands in a caller-owned
    /// [`GemmScratch`] (one pack buffer reused across the batch).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::bmm`].
    pub fn bmm_with(&self, rhs: &Tensor, gs: &mut GemmScratch, out: &mut Tensor) {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank 3");
        assert_eq!(rhs.rank(), 3, "bmm rhs must be rank 3");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (rhs.dim(0), rhs.dim(1), rhs.dim(2));
        assert_eq!(b, b2, "bmm batch sizes must agree");
        assert_eq!(k, k2, "bmm inner dimensions must agree");
        out.reset_unspecified(&[b, m, n]);
        let od = out.data_mut();
        for bi in 0..b {
            pack_b(
                &rhs.data()[bi * k * n..(bi + 1) * k * n],
                k,
                n,
                &mut gs.pack,
            );
            gemm_packed(
                &self.data()[bi * m * k..(bi + 1) * m * k],
                m,
                k,
                &gs.pack,
                n,
                None,
                &mut od[bi * m * n..(bi + 1) * m * n],
            );
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        let mut out = Tensor::default();
        self.transpose2_into(&mut out);
        out
    }

    /// [`Tensor::transpose2`] writing into a caller-provided output tensor
    /// (reshaped in place, reusing its allocation).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2_into(&self, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        out.reset_unspecified(&[n, m]);
        let src = self.data();
        let dst = out.data_mut();
        for (i, row) in src.chunks_exact(n.max(1)).enumerate().take(m) {
            for (j, &v) in row.iter().enumerate() {
                dst[j * m + i] = v;
            }
        }
    }
}

/// Reference GEMM: `c += a · b` with `a: m×k`, `b: k×n`, `c: m×n`, row-major.
///
/// This is the naive triple loop the blocked kernel is validated against
/// (same ascending-`k` per-element accumulation order); the quantizer's
/// integer GEMM tests also reuse it as the float reference. It is *not* the
/// production path.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut c = Tensor::zeros(&[m, n]);
        gemm(a.data(), b.data(), c.data_mut(), m, k, n);
        c
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 7], |ix| (ix[0] * 7 + ix[1]) as f32 * 0.1);
        let b = Tensor::from_fn(&[7, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.2);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[3, 3], |ix| (ix[0] + 2 * ix[1]) as f32);
        assert!(a.matmul(&Tensor::eye(3)).allclose(&a, 0.0));
        assert!(Tensor::eye(3).matmul(&a).allclose(&a, 0.0));
    }

    #[test]
    fn matmul_transb_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 4], |ix| (ix[0] * ix[1]) as f32 * 0.3 - 1.0);
        let b = Tensor::from_fn(&[6, 4], |ix| ix[1] as f32 - 0.5 * ix[0] as f32);
        let fast = a.matmul_transb(&b);
        let slow = a.matmul(&b.transpose2());
        assert!(fast.allclose(&slow, 1e-5));
    }

    #[test]
    fn matmul_transa_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::rand_normal(&[9, 13], 0.0, 1.0, &mut rng);
        let g = Tensor::rand_normal(&[9, 5], 0.0, 1.0, &mut rng);
        let fast = a.matmul_transa(&g);
        let slow = a.transpose2().matmul(&g);
        assert_eq!(fast.dims(), &[13, 5]);
        assert_eq!(fast.data(), slow.data(), "must be bitwise identical");
    }

    #[test]
    fn matmul_bias_broadcasts_rows() {
        let a = Tensor::ones(&[2, 3]);
        let w = Tensor::eye(3);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = a.matmul_bias(&w, &bias);
        assert_eq!(out.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(out.row(1), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn bmm_is_per_batch_matmul() {
        let a = Tensor::from_fn(&[2, 3, 4], |ix| (ix[0] * 12 + ix[1] * 4 + ix[2]) as f32);
        let b = Tensor::from_fn(&[2, 4, 2], |ix| (ix[0] + ix[1] + ix[2]) as f32 * 0.5);
        let out = a.bmm(&b);
        for bi in 0..2 {
            let a2 = Tensor::from_fn(&[3, 4], |ix| a.at(&[bi, ix[0], ix[1]]));
            let b2 = Tensor::from_fn(&[4, 2], |ix| b.at(&[bi, ix[0], ix[1]]));
            let expect = a2.matmul(&b2);
            for i in 0..3 {
                for j in 0..2 {
                    assert!((out.at(&[bi, i, j]) - expect.at(&[i, j])).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = Tensor::from_fn(&[3, 5], |ix| (ix[0] * 5 + ix[1]) as f32);
        assert!(a.transpose2().transpose2().allclose(&a, 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn into_variants_are_bitwise_identical_and_reuse_storage() {
        let a = Tensor::from_fn(&[4, 7], |ix| (ix[0] * 7 + ix[1]) as f32 * 0.1);
        let b = Tensor::from_fn(&[7, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.2);
        let bt = b.transpose2();
        let bias = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[3]);

        // Start from a deliberately larger stale buffer: it must be
        // reshaped, fully overwritten, and reused.
        let mut out = Tensor::full(&[9, 9], f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), a.matmul(&b).data());

        a.matmul_transb_into(&bt, &mut out);
        assert_eq!(out.data(), a.matmul_transb(&bt).data());

        a.matmul_bias_into(&b, &bias, &mut out);
        assert_eq!(out.data(), a.matmul_bias(&b, &bias).data());

        a.transpose2_into(&mut out);
        assert_eq!(out.data(), a.transpose2().data());
    }

    #[test]
    fn with_variants_reuse_scratch_and_match() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_normal(&[13, 21], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[21, 17], 0.0, 1.0, &mut rng);
        let bt = b.transpose2();
        let bias = Tensor::rand_normal(&[17], 0.0, 1.0, &mut rng);
        let mut gs = GemmScratch::default();
        let mut out = Tensor::default();

        a.matmul_with(&b, &mut gs, &mut out);
        assert_eq!(out.data(), a.matmul(&b).data());
        let cap = gs.pack.capacity();

        a.matmul_transb_with(&bt, &mut gs, &mut out);
        assert_eq!(out.data(), a.matmul_transb(&bt).data());

        a.matmul_bias_with(&b, &bias, &mut gs, &mut out);
        assert_eq!(out.data(), a.matmul_bias(&b, &bias).data());
        assert_eq!(
            gs.pack.capacity(),
            cap,
            "scratch must be reused, not regrown"
        );
    }

    #[test]
    fn bmm_into_matches_bmm() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::rand_normal(&[3, 5, 9], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[3, 9, 6], 0.0, 1.0, &mut rng);
        let mut out = Tensor::full(&[2, 2], f32::NAN);
        a.bmm_into(&b, &mut out);
        assert_eq!(out.dims(), &[3, 5, 6]);
        assert_eq!(out.data(), a.bmm(&b).data());
    }

    #[test]
    fn blocked_kernel_is_bit_compatible_with_naive_reference() {
        // The packed microkernel keeps ascending-k accumulation order per
        // output element, so it must agree with the naive triple loop to the
        // last bit — this is what keeps the engine's bitwise parity suites
        // and the tape's determinism guarantees unchanged across the kernel
        // swap.
        let mut rng = StdRng::seed_from_u64(42);
        for &(m, k, n) in &[(1, 1, 1), (4, 8, 8), (5, 7, 11), (197, 192, 576)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            assert_eq!(
                a.matmul(&b).data(),
                naive(&a, &b).data(),
                "bit mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn remainder_tiles_match_reference() {
        // Sweep shapes around the MR/NR block boundaries so every remainder
        // combination (full tiles, row tails, column tails, both) runs.
        let mut rng = StdRng::seed_from_u64(9);
        for m in [1, MR - 1, MR, MR + 1, 2 * MR + 3] {
            for k in [1, 2, NR, NR + 5] {
                for n in [1, NR - 1, NR, NR + 1, 3 * NR + 2] {
                    let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
                    let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
                    let expect = naive(&a, &b);
                    assert_eq!(
                        a.matmul(&b).data(),
                        expect.data(),
                        "matmul mismatch at {m}x{k}x{n}"
                    );
                    let bt = b.transpose2();
                    assert!(
                        a.matmul_transb(&bt).allclose(&expect, 1e-5),
                        "transb mismatch at {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_shapes_are_well_defined() {
        // 1×N, M×1 and empty operands must all round-trip the kernel.
        let a = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let b = Tensor::from_vec(vec![4.0, 5.0], &[2, 1]);
        assert_eq!(a.matmul(&b).data(), &[23.0]);
        assert_eq!(b.matmul(&a).dims(), &[2, 2]);

        let e = Tensor::zeros(&[0, 3]);
        let w = Tensor::zeros(&[3, 2]);
        assert_eq!(e.matmul(&w).dims(), &[0, 2]);

        // k = 0: the sum over an empty inner dimension is exactly zero, and
        // the fused bias must still land.
        let a0 = Tensor::zeros(&[2, 0]);
        let b0 = Tensor::zeros(&[0, 3]);
        assert_eq!(a0.matmul(&b0).data(), &[0.0; 6]);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = a0.matmul_bias(&b0, &bias);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);

        let n0 = Tensor::zeros(&[0, 2]);
        assert_eq!(Tensor::zeros(&[4, 2]).matmul_transb(&n0).dims(), &[4, 0]);
    }

    #[test]
    fn repeated_runs_are_bitwise_deterministic() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Tensor::rand_normal(&[33, 50], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[50, 29], 0.0, 1.0, &mut rng);
        let first = a.matmul(&b);
        let mut gs = GemmScratch::default();
        for _ in 0..5 {
            let mut out = Tensor::default();
            a.matmul_with(&b, &mut gs, &mut out);
            assert_eq!(out.data(), first.data());
        }
    }

    #[test]
    fn blocked_vs_naive_tolerance_sweep_random_shapes() {
        // Randomized geometry sweep: beyond bit-compatibility on the fixed
        // shapes above, any shape must stay within float tolerance of the
        // reference (guards a future kernel that re-blocks over k).
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..25 {
            let m = rng.gen_range(1..40);
            let k = rng.gen_range(1..64);
            let n = rng.gen_range(1..40);
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            assert!(
                a.matmul(&b).allclose(&naive(&a, &b), 1e-4),
                "tolerance exceeded at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn pack_b_t_matches_pack_of_transpose() {
        let mut rng = StdRng::seed_from_u64(13);
        let b = Tensor::rand_normal(&[14, 9], 0.0, 1.0, &mut rng);
        let bt = b.transpose2();
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        pack_b(b.data(), 14, 9, &mut p1);
        pack_b_t(bt.data(), 9, 14, &mut p2);
        assert_eq!(p1, p2);
    }
}
