//! Matrix multiplication kernels.
//!
//! These are the software analogue of the GEMM engine in the HeatViT FPGA
//! accelerator: every dense layer in the backbone ViT *and* in the token
//! selector lowers to one of the routines here, mirroring the paper's design
//! decision to express the selector with linear layers so it can reuse the
//! GEMM hardware.
//!
//! The 2-D kernel uses an `i-k-j` loop order over the row-major operands so
//! the innermost loop streams both `B` and `C` contiguously, which
//! auto-vectorizes well. A `matmul_transb` variant computes `A · Bᵀ` without
//! materializing the transpose — the hot path for attention scores `Q·Kᵀ`.

use crate::Tensor;

impl Tensor {
    /// Matrix product `self · rhs` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions do not
    /// match.
    ///
    /// # Examples
    ///
    /// ```
    /// use heatvit_tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhsᵀ` for rank-2 tensors.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose2())` but avoids the copy;
    /// used for attention scores `Q · Kᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the last dimensions differ.
    pub fn matmul_transb(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_transb_into(rhs, &mut out);
        out
    }

    /// [`Tensor::matmul`] writing into a caller-provided output tensor.
    ///
    /// `out` is reshaped (reusing its allocation) and overwritten; the values
    /// are bit-identical to `self.matmul(rhs)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul`].
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul inner dimensions must agree ({k} vs {k2})");
        out.reset_zeroed(&[m, n]);
        gemm(self.data(), rhs.data(), out.data_mut(), m, k, n);
    }

    /// [`Tensor::matmul_transb`] writing into a caller-provided output
    /// tensor (see [`Tensor::matmul_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_transb`].
    pub fn matmul_transb_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul_transb lhs must be rank 2");
        assert_eq!(rhs.rank(), 2, "matmul_transb rhs must be rank 2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "matmul_transb inner dimensions must agree ({k} vs {k2})"
        );
        // Every element is written below, so no zeroing pass is needed.
        out.reset_unspecified(&[m, n]);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for (j, ov) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                *ov = acc;
            }
        }
    }

    /// [`Tensor::matmul_bias`] writing into a caller-provided output tensor
    /// (see [`Tensor::matmul_into`] for the reuse contract).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::matmul_bias`].
    pub fn matmul_bias_into(&self, rhs: &Tensor, bias: &Tensor, out: &mut Tensor) {
        assert_eq!(bias.rank(), 1, "bias must be rank 1");
        assert_eq!(
            bias.dim(0),
            rhs.dim(1),
            "bias length must equal output columns"
        );
        self.matmul_into(rhs, out);
        let n = out.dim(1);
        let b = bias.data();
        for row in out.data_mut().chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b.iter()) {
                *o += bv;
            }
        }
    }

    /// Fused `self · rhs + bias` where `bias` is broadcast over rows.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch, or if `bias` is not a rank-1 tensor of
    /// length `rhs.dim(1)`.
    pub fn matmul_bias(&self, rhs: &Tensor, bias: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_bias_into(rhs, bias, &mut out);
        out
    }

    /// Batched matrix product for rank-3 tensors: `[B, M, K] · [B, K, N]`.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not rank 3, batch sizes differ, or inner
    /// dimensions do not match.
    pub fn bmm(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank 3");
        assert_eq!(rhs.rank(), 3, "bmm rhs must be rank 3");
        let (b, m, k) = (self.dim(0), self.dim(1), self.dim(2));
        let (b2, k2, n) = (rhs.dim(0), rhs.dim(1), rhs.dim(2));
        assert_eq!(b, b2, "bmm batch sizes must agree");
        assert_eq!(k, k2, "bmm inner dimensions must agree");
        let mut out = vec![0.0f32; b * m * n];
        for bi in 0..b {
            gemm(
                &self.data()[bi * m * k..(bi + 1) * m * k],
                &rhs.data()[bi * k * n..(bi + 1) * k * n],
                &mut out[bi * m * n..(bi + 1) * m * n],
                m,
                k,
                n,
            );
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }
}

/// Raw GEMM: `c += a · b` with `a: m×k`, `b: k×n`, `c: m×n`, all row-major.
///
/// `c` must be zero-initialized by the caller if a pure product is wanted.
/// Exposed so the quantizer's integer GEMM tests can reuse the reference
/// float path.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        Tensor::from_fn(&[m, n], |ix| {
            (0..k).map(|p| a.at(&[ix[0], p]) * b.at(&[p, ix[1]])).sum()
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Tensor::from_fn(&[4, 7], |ix| (ix[0] * 7 + ix[1]) as f32 * 0.1);
        let b = Tensor::from_fn(&[7, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.2);
        assert!(a.matmul(&b).allclose(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[3, 3], |ix| (ix[0] + 2 * ix[1]) as f32);
        assert!(a.matmul(&Tensor::eye(3)).allclose(&a, 0.0));
        assert!(Tensor::eye(3).matmul(&a).allclose(&a, 0.0));
    }

    #[test]
    fn matmul_transb_equals_explicit_transpose() {
        let a = Tensor::from_fn(&[5, 4], |ix| (ix[0] * ix[1]) as f32 * 0.3 - 1.0);
        let b = Tensor::from_fn(&[6, 4], |ix| ix[1] as f32 - 0.5 * ix[0] as f32);
        let fast = a.matmul_transb(&b);
        let slow = a.matmul(&b.transpose2());
        assert!(fast.allclose(&slow, 1e-5));
    }

    #[test]
    fn matmul_bias_broadcasts_rows() {
        let a = Tensor::ones(&[2, 3]);
        let w = Tensor::eye(3);
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let out = a.matmul_bias(&w, &bias);
        assert_eq!(out.row(0), &[2.0, 3.0, 4.0]);
        assert_eq!(out.row(1), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn bmm_is_per_batch_matmul() {
        let a = Tensor::from_fn(&[2, 3, 4], |ix| (ix[0] * 12 + ix[1] * 4 + ix[2]) as f32);
        let b = Tensor::from_fn(&[2, 4, 2], |ix| (ix[0] + ix[1] + ix[2]) as f32 * 0.5);
        let out = a.bmm(&b);
        for bi in 0..2 {
            let a2 = Tensor::from_fn(&[3, 4], |ix| a.at(&[bi, ix[0], ix[1]]));
            let b2 = Tensor::from_fn(&[4, 2], |ix| b.at(&[bi, ix[0], ix[1]]));
            let expect = a2.matmul(&b2);
            for i in 0..3 {
                for j in 0..2 {
                    assert!((out.at(&[bi, i, j]) - expect.at(&[i, j])).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = Tensor::from_fn(&[3, 5], |ix| (ix[0] * 5 + ix[1]) as f32);
        assert!(a.transpose2().transpose2().allclose(&a, 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn into_variants_are_bitwise_identical_and_reuse_storage() {
        let a = Tensor::from_fn(&[4, 7], |ix| (ix[0] * 7 + ix[1]) as f32 * 0.1);
        let b = Tensor::from_fn(&[7, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.2);
        let bt = b.transpose2();
        let bias = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[3]);

        // Start from a deliberately larger stale buffer: it must be
        // reshaped, fully overwritten, and reused.
        let mut out = Tensor::full(&[9, 9], f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), a.matmul(&b).data());

        a.matmul_transb_into(&bt, &mut out);
        assert_eq!(out.data(), a.matmul_transb(&bt).data());

        a.matmul_bias_into(&b, &bias, &mut out);
        assert_eq!(out.data(), a.matmul_bias(&b, &bias).data());
    }

    #[test]
    fn zero_rows_ok() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[0, 2]);
    }
}
