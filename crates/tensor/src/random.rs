//! Seeded random tensor construction and weight initializers.
//!
//! All experiments in the reproduction are deterministic given a seed, so
//! every random constructor takes an explicit `&mut impl Rng` rather than
//! using a thread-local generator.

use crate::Tensor;
use rand::Rng;

impl Tensor {
    /// A tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        assert!(lo < hi, "uniform range must be non-empty");
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.gen_range(lo..hi);
        }
        t
    }

    /// A tensor with elements drawn from `N(mean, std²)` via Box–Muller.
    ///
    /// # Panics
    ///
    /// Panics if `std < 0`.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = mean + std * sample_standard_normal(rng);
        }
        t
    }

    /// A tensor from the truncated normal `N(mean, std²)` clipped to
    /// `mean ± 2·std` by rejection sampling — the initializer used for ViT
    /// token/position embeddings (as in the DeiT reference code).
    ///
    /// # Panics
    ///
    /// Panics if `std < 0`.
    pub fn rand_trunc_normal(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = loop {
                let z = sample_standard_normal(rng);
                if z.abs() <= 2.0 {
                    break mean + std * z;
                }
            };
        }
        t
    }

    /// Xavier/Glorot-uniform initialization for a `[fan_in, fan_out]` weight.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(&[fan_in, fan_out], -bound, bound, rng)
    }

    /// Kaiming/He-normal initialization for a `[fan_in, fan_out]` weight.
    pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
        let std = (2.0 / fan_in as f32).sqrt();
        Tensor::rand_normal(&[fan_in, fan_out], 0.0, std, rng)
    }
}

/// One sample from the standard normal distribution (Box–Muller transform).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_normal(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean_all();
        let var = t.map(|v| (v - mean) * (v - mean)).mean_all();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn trunc_normal_clips_at_two_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::rand_trunc_normal(&[5000], 0.0, 0.02, &mut rng);
        assert!(t.data().iter().all(|&v| v.abs() <= 0.04 + 1e-7));
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let a = Tensor::rand_normal(&[64], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        let b = Tensor::rand_normal(&[64], 0.0, 1.0, &mut StdRng::seed_from_u64(7));
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn xavier_bound_shrinks_with_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let wide = Tensor::xavier_uniform(1024, 1024, &mut rng);
        let bound = (6.0f32 / 2048.0).sqrt();
        assert!(wide.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(sample_standard_normal(&mut rng).is_finite());
        }
    }
}
