//! Reductions and row-wise normalizations (softmax, log-sum-exp, argmax).

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum_all(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean_all(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum_all() / self.numel() as f32
        }
    }

    /// Maximum element.
    ///
    /// Returns `f32::NEG_INFINITY` for an empty tensor.
    pub fn max_all(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// Returns `f32::INFINITY` for an empty tensor.
    pub fn min_all(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Row sums of a rank-2 tensor, shaped `[rows]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_rows requires rank 2");
        let data = (0..self.dim(0)).map(|r| self.row(r).iter().sum()).collect();
        Tensor::from_vec(data, &[self.dim(0)])
    }

    /// Row means of a rank-2 tensor, shaped `[rows]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn mean_rows(&self) -> Tensor {
        let n = self.dim(1).max(1) as f32;
        self.sum_rows().scale(1.0 / n)
    }

    /// Column means of a rank-2 tensor, shaped `[cols]`.
    ///
    /// Used for the global receptive field of the token classifier
    /// (paper Eq. 4: average over the token axis).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn mean_cols(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "mean_cols requires rank 2");
        let (rows, cols) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        let denom = rows.max(1) as f32;
        Tensor::from_vec(out.into_iter().map(|v| v / denom).collect(), &[cols])
    }

    /// Index of the maximum element in each row of a rank-2 tensor.
    ///
    /// Ties resolve to the first maximum.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires rank 2");
        assert!(self.dim(1) > 0, "argmax of zero-length rows is undefined");
        (0..self.dim(0))
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Numerically-stable softmax over each row of a rank-2 tensor.
    ///
    /// Subtracts the row maximum before exponentiation, exactly the trick
    /// the paper's hardware Softmax uses for stability (Eq. 13 uses
    /// `x̃ᵢ = xᵢ − x_max`).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires rank 2");
        let mut out = self.clone();
        let cols = self.dim(1);
        for row in out.data_mut().chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Log-sum-exp of each row of a rank-2 tensor, shaped `[rows]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn logsumexp_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "logsumexp_rows requires rank 2");
        let data = (0..self.dim(0))
            .map(|r| {
                let row = self.row(r);
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln()
            })
            .collect();
        Tensor::from_vec(data, &[self.dim(0)])
    }

    /// Per-row mean and (population) variance of a rank-2 tensor.
    ///
    /// The building block of layer normalization.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn row_mean_var(&self) -> (Vec<f32>, Vec<f32>) {
        assert_eq!(self.rank(), 2, "row_mean_var requires rank 2");
        let cols = self.dim(1);
        assert!(cols > 0, "row_mean_var of zero columns is undefined");
        let mut means = Vec::with_capacity(self.dim(0));
        let mut vars = Vec::with_capacity(self.dim(0));
        for r in 0..self.dim(0) {
            let row = self.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            means.push(mean);
            vars.push(var);
        }
        (means, vars)
    }

    /// Frobenius norm (L2 over all elements).
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|&v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum_all(), 10.0);
        assert_eq!(t.mean_all(), 2.5);
        assert_eq!(t.sum_rows().data(), &[3.0, 7.0]);
        assert_eq!(t.mean_rows().data(), &[1.5, 3.5]);
        assert_eq!(t.mean_cols().data(), &[2.0, 3.0]);
        assert_eq!(t.max_all(), 4.0);
        assert_eq!(t.min_all(), 1.0);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&v| v > 0.0));
        }
        // Softmax is monotone in its inputs.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]);
        let s = t.softmax_rows();
        assert!(!s.has_non_finite());
        let shifted = t.add_scalar(-1000.0).softmax_rows();
        assert!(s.allclose(&shifted, 1e-6));
    }

    #[test]
    fn logsumexp_matches_direct() {
        let t = Tensor::from_vec(vec![0.1, 0.7, -0.3], &[1, 3]);
        let direct = t.row(0).iter().map(|v| v.exp()).sum::<f32>().ln();
        assert!((t.logsumexp_rows().at(&[0]) - direct).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie_wins() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 0.0], &[1, 4]);
        assert_eq!(t.argmax_rows(), vec![1]);
    }

    #[test]
    fn mean_var_of_constant_row() {
        let t = Tensor::full(&[1, 8], 3.0);
        let (m, v) = t.row_mean_var();
        assert_eq!(m[0], 3.0);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn norm_of_unit_vectors() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
