//! The server's telemetry surface: every counter, gauge, histogram, and
//! latency series a [`crate::Server`] records, registered up front in one
//! [`Registry`], plus the bounded [`SpanRecorder`] request trace.
//!
//! [`crate::ServeReport`] is a *view* materialized from a registry
//! [`Snapshot`](heatvit::telemetry::Snapshot) — the metrics here are the
//! single source of truth; no separate locked accumulator exists on the
//! request path. Hot-path recording is lock-free (atomic handles), with
//! two deliberate exceptions documented in `heatvit-telemetry`: the exact
//! latency [`Series`] reservoirs and the trace ring take a short mutex.
//!
//! Every metric family is pre-registered at server start (all flush
//! reasons, both SLO classes, every batch size up to `max_batch`, every
//! level and lane), so expositions always show the full family — a lane
//! that served nothing still exports `heatvit_serve_lane_served{lane="1"} 0`
//! — and snapshot-derived reports read dense per-index vectors.

use crate::report::FlushReason;
use crate::request::Priority;
use heatvit::telemetry::{
    BatchSpan, Counter, FloatCounter, Gauge, Histogram, Registry, RequestSpan, Series, ShedSpan,
    SpanRecorder, TraceEvent,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bucket upper bounds (µs) of the serve latency histograms — spanning
/// sub-millisecond trickle service to the 1 s pathological tail.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Registered metric names — the stable observability contract. CI greps
/// the Prometheus exposition for several of these; renaming one is a
/// breaking change to dashboards.
pub mod names {
    /// Counter: requests resolved.
    pub const COMPLETED: &str = "heatvit_serve_completed_total";
    /// Counter: responses resolved after their deadline.
    pub const DEADLINE_MISSES: &str = "heatvit_serve_deadline_misses_total";
    /// Counter family by `reason`: batches flushed per flush policy.
    pub const FLUSH: &str = "heatvit_serve_flush_total";
    /// Counter family by `size`: formed batches per batch size.
    pub const BATCH_SIZE: &str = "heatvit_serve_batch_size_total";
    /// Counter family by `decision` (`accept`/`degrade`/`shed`): admission
    /// outcomes.
    pub const ADMISSION: &str = "heatvit_serve_admission_total";
    /// Series: request latency reservoir, µs (exact percentiles).
    pub const LATENCY: &str = "heatvit_serve_latency_us";
    /// Histogram: request latency, µs (fixed buckets).
    pub const LATENCY_HIST: &str = "heatvit_serve_latency_us_hist";
    /// Counter family by `class`: requests resolved per SLO class.
    pub const CLASS_COMPLETED: &str = "heatvit_serve_class_completed_total";
    /// Counter family by `class`: deadline misses per SLO class.
    pub const CLASS_MISSES: &str = "heatvit_serve_class_deadline_misses_total";
    /// Counter family by `class`: admission sheds per SLO class.
    pub const CLASS_SHEDS: &str = "heatvit_serve_class_sheds_total";
    /// Counter family by `class`: requests served at a degraded level.
    pub const CLASS_DEGRADED: &str = "heatvit_serve_class_degraded_total";
    /// Float counter family by `class`: summed keep-fraction accuracy proxy.
    pub const CLASS_KEEP_SUM: &str = "heatvit_serve_class_keep_sum";
    /// Series family by `class`: per-class latency reservoir, µs.
    pub const CLASS_LATENCY: &str = "heatvit_serve_class_latency_us";
    /// Histogram family by `class`: per-class latency, µs (fixed buckets).
    pub const CLASS_LATENCY_HIST: &str = "heatvit_serve_class_latency_us_hist";
    /// Counter family by `level` (+ `variant`): requests served per level.
    pub const LEVEL_SERVED: &str = "heatvit_serve_level_served_total";
    /// Counter family by `lane`: requests executed per lane.
    pub const LANE_SERVED: &str = "heatvit_serve_lane_served";
    /// Counter family by `lane`: requests executed out of stolen batches.
    pub const LANE_STEALS: &str = "heatvit_serve_lane_steals_total";
    /// Gauge family by `lane`: current queue depth.
    pub const LANE_QUEUE_DEPTH: &str = "heatvit_serve_lane_queue_depth";
    /// Gauge family by `lane`: highest queue depth ever observed.
    pub const LANE_QUEUE_HWM: &str = "heatvit_serve_lane_queue_hwm";
    /// Gauge family by `lane`: predicted in-flight work ledger, µs.
    pub const LANE_INFLIGHT_US: &str = "heatvit_serve_lane_inflight_us";
    /// Float counter: summed relative batch prediction error.
    pub const PREDICTION_ERROR_SUM: &str = "heatvit_serve_prediction_error_sum";
    /// Counter: warmed-up batches scored for prediction error.
    pub const PREDICTION_BATCHES: &str = "heatvit_serve_prediction_batches_total";
    /// Gauge: serving-window start, µs since server start + 1 (0 = unset).
    pub const WINDOW_FIRST_US: &str = "heatvit_serve_window_first_us";
    /// Gauge: serving-window end, µs since server start + 1 (0 = unset).
    pub const WINDOW_LAST_US: &str = "heatvit_serve_window_last_us";
}

/// One lane's gauges and counters. The depth/HWM/in-flight gauges *are*
/// the lane's lock-free coordination signals (steal victim selection,
/// admission wait estimates) — instrumentation and mechanism are the same
/// atomics, so the exported values are honest by construction.
pub(crate) struct LaneMetrics {
    pub(crate) depth: Arc<Gauge>,
    pub(crate) depth_hwm: Arc<Gauge>,
    pub(crate) inflight_us: Arc<Gauge>,
    served: Arc<Counter>,
    steals: Arc<Counter>,
}

/// One SLO class's counters and latency reservoirs.
struct ClassMetrics {
    completed: Arc<Counter>,
    misses: Arc<Counter>,
    sheds: Arc<Counter>,
    degraded: Arc<Counter>,
    keep_sum: Arc<FloatCounter>,
    latency: Arc<Series>,
    latency_hist: Arc<Histogram>,
}

/// Every handle a [`crate::Server`] records into, plus the trace recorder.
///
/// Construction registers the full metric surface; recording methods
/// mirror the legacy `Stats` accumulator operation-for-operation (same µs
/// quantization, same f64 accumulation order per lane) so a report
/// materialized from a snapshot is bitwise identical to one replayed
/// through the legacy path — `crates/serve/tests/telemetry_parity.rs`
/// asserts exactly that.
pub(crate) struct ServeMetrics {
    registry: Arc<Registry>,
    recorder: Arc<SpanRecorder>,
    /// Server start: the time base of the window gauges and span offsets.
    epoch: Instant,
    completed: Arc<Counter>,
    misses: Arc<Counter>,
    latency: Arc<Series>,
    latency_hist: Arc<Histogram>,
    /// Indexed by [`FlushReason`] declaration order (see
    /// [`FlushReason::ALL`]).
    flush: Vec<Arc<Counter>>,
    /// Index `size - 1`, sizes `1..=max_batch` (a formed batch is never
    /// larger — stealing also caps at `max_batch`).
    batch_sizes: Vec<Arc<Counter>>,
    admission_accept: Arc<Counter>,
    admission_degrade: Arc<Counter>,
    admission_shed: Arc<Counter>,
    /// Indexed by [`Priority::index`].
    classes: [ClassMetrics; 2],
    level_served: Vec<Arc<Counter>>,
    pub(crate) lanes: Vec<LaneMetrics>,
    error_sum: Arc<FloatCounter>,
    error_batches: Arc<Counter>,
    window_first: Arc<Gauge>,
    window_last: Arc<Gauge>,
}

impl ServeMetrics {
    /// Registers the whole serve metric surface on `registry`.
    /// `variants[level]` labels each level's served counter with its
    /// backend variant.
    pub(crate) fn new(
        registry: Arc<Registry>,
        trace_capacity: usize,
        variants: &[String],
        lane_count: usize,
        max_batch: usize,
    ) -> Self {
        let flush = FlushReason::ALL
            .iter()
            .map(|reason| {
                registry.counter(
                    names::FLUSH,
                    &[("reason", reason.label())],
                    "Batches flushed, by flush policy.",
                )
            })
            .collect();
        let batch_sizes = (1..=max_batch)
            .map(|size| {
                registry.counter(
                    names::BATCH_SIZE,
                    &[("size", &size.to_string())],
                    "Formed batches, by batch size.",
                )
            })
            .collect();
        let class_metrics = |class: Priority| {
            let labels = &[("class", class.label())][..];
            ClassMetrics {
                completed: registry.counter(
                    names::CLASS_COMPLETED,
                    labels,
                    "Requests resolved, by SLO class.",
                ),
                misses: registry.counter(
                    names::CLASS_MISSES,
                    labels,
                    "Deadline misses, by SLO class.",
                ),
                sheds: registry.counter(
                    names::CLASS_SHEDS,
                    labels,
                    "Submissions refused by predictive admission, by SLO class.",
                ),
                degraded: registry.counter(
                    names::CLASS_DEGRADED,
                    labels,
                    "Requests served at a degraded level, by SLO class.",
                ),
                keep_sum: registry.float_counter(
                    names::CLASS_KEEP_SUM,
                    labels,
                    "Summed keep-fraction accuracy proxy of completed requests.",
                ),
                latency: registry.series(
                    names::CLASS_LATENCY,
                    labels,
                    "Request latency reservoir (µs), by SLO class.",
                ),
                latency_hist: registry.histogram(
                    names::CLASS_LATENCY_HIST,
                    labels,
                    "Request latency (µs), by SLO class.",
                    &LATENCY_BUCKETS_US,
                ),
            }
        };
        let level_served = variants
            .iter()
            .enumerate()
            .map(|(level, variant)| {
                registry.counter(
                    names::LEVEL_SERVED,
                    &[("level", &level.to_string()), ("variant", variant)],
                    "Requests served per service level (0 = most accurate).",
                )
            })
            .collect();
        let lanes = (0..lane_count)
            .map(|index| {
                let lane = index.to_string();
                let labels = &[("lane", lane.as_str())][..];
                LaneMetrics {
                    depth: registry.gauge(
                        names::LANE_QUEUE_DEPTH,
                        labels,
                        "Current queue depth of this lane.",
                    ),
                    depth_hwm: registry.gauge(
                        names::LANE_QUEUE_HWM,
                        labels,
                        "Highest queue depth this lane ever reached.",
                    ),
                    inflight_us: registry.gauge(
                        names::LANE_INFLIGHT_US,
                        labels,
                        "Predicted in-flight work charged to this lane (µs).",
                    ),
                    served: registry.counter(
                        names::LANE_SERVED,
                        labels,
                        "Requests executed by this lane (stolen batches count for the thief).",
                    ),
                    steals: registry.counter(
                        names::LANE_STEALS,
                        labels,
                        "Requests this lane executed out of stolen batches.",
                    ),
                }
            })
            .collect();
        Self {
            recorder: Arc::new(SpanRecorder::new(trace_capacity)),
            epoch: Instant::now(),
            completed: registry.counter(names::COMPLETED, &[], "Requests resolved."),
            misses: registry.counter(
                names::DEADLINE_MISSES,
                &[],
                "Responses resolved after their deadline.",
            ),
            latency: registry.series(names::LATENCY, &[], "Request latency reservoir (µs)."),
            latency_hist: registry.histogram(
                names::LATENCY_HIST,
                &[],
                "Request latency (µs).",
                &LATENCY_BUCKETS_US,
            ),
            flush,
            batch_sizes,
            admission_accept: registry.counter(
                names::ADMISSION,
                &[("decision", "accept")],
                "Admission outcomes.",
            ),
            admission_degrade: registry.counter(
                names::ADMISSION,
                &[("decision", "degrade")],
                "Admission outcomes.",
            ),
            admission_shed: registry.counter(
                names::ADMISSION,
                &[("decision", "shed")],
                "Admission outcomes.",
            ),
            classes: [
                class_metrics(Priority::High),
                class_metrics(Priority::Normal),
            ],
            level_served,
            lanes,
            error_sum: registry.float_counter(
                names::PREDICTION_ERROR_SUM,
                &[],
                "Summed relative batch execution-time prediction error.",
            ),
            error_batches: registry.counter(
                names::PREDICTION_BATCHES,
                &[],
                "Warmed-up batches scored for prediction error.",
            ),
            window_first: registry.gauge(
                names::WINDOW_FIRST_US,
                &[],
                "Serving-window start (µs since server start, +1; 0 = unset).",
            ),
            window_last: registry.gauge(
                names::WINDOW_LAST_US,
                &[],
                "Serving-window end (µs since server start, +1; 0 = unset).",
            ),
            registry,
        }
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub(crate) fn recorder(&self) -> &Arc<SpanRecorder> {
        &self.recorder
    }

    /// Offset of `at` from the server epoch, µs, shifted by +1 so an unset
    /// window gauge (0) is distinguishable from "exactly at start".
    fn window_off(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64 + 1
    }

    /// Opens the serving window at the first submission (lock-free CAS; at
    /// most one submitter wins).
    pub(crate) fn record_first_submit(&self, at: Instant) {
        self.window_first.set_if_unset(self.window_off(at));
    }

    /// One accepted submission's admission outcome (`accept` at the best
    /// level, `degrade` below it).
    pub(crate) fn record_admission(&self, level: usize) {
        if level == 0 {
            self.admission_accept.inc();
        } else {
            self.admission_degrade.inc();
        }
    }

    /// One refused submission: admission predicted a miss at every level.
    pub(crate) fn record_shed(&self, class: Priority, predicted: Duration) {
        self.admission_shed.inc();
        self.classes[class.index()].sheds.inc();
        self.recorder.record(TraceEvent::Shed(ShedSpan {
            class: class.index(),
            predicted_us: predicted.as_micros() as u64,
        }));
    }

    /// One flushed batch. Mirrors the legacy `Stats::record_batch` +
    /// `record_prediction_error` pair: the error term is computed from
    /// µs-quantized durations so a trace replay reproduces the sum
    /// bitwise (sub-µs measurements are skipped, exactly as a µs-quantized
    /// legacy record would).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_batch(
        &self,
        size: usize,
        reason: FlushReason,
        done: Instant,
        lane: usize,
        level: usize,
        predicted: Duration,
        measured: Duration,
        scored: bool,
    ) {
        let predicted_us = predicted.as_micros() as u64;
        let measured_us = measured.as_micros() as u64;
        self.flush[reason.index()].inc();
        self.batch_sizes[size - 1].inc();
        if reason == FlushReason::Steal {
            self.lanes[lane].steals.add(size as u64);
        }
        let off = self.window_off(done);
        self.window_first.set_if_unset(off);
        self.window_last.set_max(off);
        if scored {
            let measured = Duration::from_micros(measured_us);
            if !measured.is_zero() {
                let predicted = Duration::from_micros(predicted_us);
                let rel = (predicted.as_secs_f64() - measured.as_secs_f64()).abs()
                    / measured.as_secs_f64();
                self.error_sum.add(rel);
                self.error_batches.inc();
            }
        }
        self.recorder.record(TraceEvent::Batch(BatchSpan {
            lane,
            level,
            size,
            reason: reason.label(),
            predicted_us,
            measured_us,
            scored,
            done_off_us: off - 1,
        }));
    }

    /// One resolved request. Mirrors the legacy `Stats::record_response`
    /// operation order (class keep-sum and latency reservoirs see values
    /// in the same sequence a single-lane legacy accumulator would).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_response(
        &self,
        latency: Duration,
        queued: Duration,
        missed: bool,
        class: Priority,
        level: usize,
        keep: f64,
        lane: usize,
        batch_size: usize,
    ) {
        let total_us = latency.as_micros() as u64;
        self.completed.inc();
        self.latency.record(total_us);
        self.latency_hist.observe(total_us);
        if missed {
            self.misses.inc();
        }
        let c = &self.classes[class.index()];
        c.completed.inc();
        c.latency.record(total_us);
        c.latency_hist.observe(total_us);
        c.keep_sum.add(keep);
        if missed {
            c.misses.inc();
        }
        if level > 0 {
            c.degraded.inc();
        }
        self.level_served[level].inc();
        self.lanes[lane].served.inc();
        self.recorder.record(TraceEvent::Request(RequestSpan {
            class: class.index(),
            level,
            lane,
            queued_us: queued.as_micros() as u64,
            total_us,
            missed,
            keep,
            batch_size,
        }));
    }
}
