//! # heatvit-serve
//!
//! The request/response serving front-end over the
//! [HeatViT](https://arxiv.org/abs/2211.08110) inference engine.
//!
//! HeatViT's pitch is latency-*budgeted* inference: the hardware-aware
//! pruning schedule exists to hit a throughput target under real traffic.
//! This crate supplies the traffic side — individual requests with
//! deadlines and priorities, served by dynamic batching over the batched
//! [`heatvit::Engine`]:
//!
//! * [`Server`] — owns the shared per-level engines and [`LaneCount`]
//!   batcher/executor lane threads; clients on any thread
//!   [`Server::submit`] an [`InferRequest`] into the bounded queue of its
//!   level's home lane (backpressure, never drops) and get a [`Ticket`]
//!   that resolves to an [`InferResponse`];
//! * dynamic batching — each lane flushes a pending batch on whichever
//!   trips first: **max-batch** (the batch filled), **deadline proximity**
//!   (a member's deadline is within [`ServeConfig::deadline_slack`]), or
//!   **queue-idle** (no arrival for [`ServeConfig::idle_flush`]); shutdown
//!   *drains* — every accepted request is served;
//! * multi-lane scale-out — [`LaneAssignment`] homes each service level on
//!   a lane (int8 and float traffic batch independently instead of
//!   serializing on one batcher), and idle lanes *steal* surplus backlog
//!   from the deepest lane ([`StealPolicy`], flushes tagged
//!   [`FlushReason::Steal`]);
//! * telemetry — every observation lands lock-free in a
//!   `heatvit::telemetry` [`Registry`](heatvit::telemetry::Registry)
//!   ([`metrics::names`] is the stable name contract) with per-request
//!   spans in a bounded trace ring; [`ServeReport`] — p50/p95/max latency,
//!   batch-size histogram, per-policy flush counts ([`FlushCounts`]),
//!   deadline misses, throughput, per-SLO-class rows ([`ClassReport`]),
//!   per-lane served/stolen counts and queue-depth high-water marks, and
//!   the latency model's predicted-vs-measured error — is a *view*
//!   materialized from a registry snapshot
//!   ([`ServeReport::from_snapshot`]), and the same snapshot feeds the
//!   Prometheus-style and JSON expositions;
//! * SLO-aware admission — [`Server::start_tiered`] stacks service levels
//!   (most accurate first) behind one queue; a [`heatvit::LatencyModel`]
//!   predicts each request's completion at admission, [`Priority::High`]
//!   traffic is pinned to the best level and never shed, and
//!   [`Priority::Normal`] traffic degrades down the keep-rate ladder (or
//!   is shed, [`SubmitError::Shed`]) when predictions say its deadline
//!   cannot be met ([`SloPolicy`]).
//!
//! Served logits are **bitwise identical** to `Engine::infer_batch` on the
//! same images — batch composition never changes per-image arithmetic, and
//! the flush tests assert it. Everything is `std` synchronization (mutex,
//! condvar, scoped threads); no async runtime.
//!
//! ```
//! use heatvit::Backend;
//! use heatvit_serve::{InferRequest, Priority, ServeConfig, Server};
//! use heatvit_tensor::Tensor;
//! use heatvit_vit::{ViTConfig, VisionTransformer};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::time::{Duration, Instant};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
//! let server = Server::start(Backend::from(model), ServeConfig::default());
//!
//! let tickets: Vec<_> = (0..4)
//!     .map(|_| {
//!         let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
//!         server
//!             .submit(InferRequest {
//!                 image,
//!                 deadline: Instant::now() + Duration::from_millis(100),
//!                 priority: Priority::Normal,
//!             })
//!             .expect("server accepts while open")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     let response = ticket.wait();
//!     assert_eq!(response.logits.dims(), &[1, 2]);
//! }
//! let report = server.shutdown();
//! assert_eq!(report.completed(), 4);
//! assert!(report.flushes().total() >= 1);
//! ```

#![warn(missing_docs)]

pub mod metrics;
mod report;
mod request;
mod server;

#[doc(hidden)]
pub use report::Stats;
pub use report::{ClassReport, FlushCounts, FlushReason, ServeReport, MAX_LATENCY_SAMPLES};
pub use request::{InferRequest, InferResponse, Priority, SubmitError, Ticket};
pub use server::{
    LaneAssignment, LaneCount, ServeConfig, Server, SloPolicy, StealPolicy, MAX_AUTO_LANES,
};
