//! The request/response surface: [`InferRequest`] in, a [`Ticket`] back
//! immediately, an [`InferResponse`] out of the ticket once the dynamic
//! batcher has flushed the request through the engine.

use crate::report::FlushReason;
use heatvit_tensor::Tensor;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// SLO class of a request — both its scheduling priority and its service
/// guarantee under load.
///
/// Within one batch-formation pass the batcher drains every queued
/// [`Priority::High`] request before any [`Priority::Normal`] one;
/// ordering within a class stays FIFO. Under predictive admission
/// ([`crate::SloPolicy`]), the classes diverge further: `High` is pinned
/// to the most accurate service level and is never shed, while `Normal`
/// degrades to cheaper keep-rate schedules/backends when the latency model
/// predicts a deadline miss, and is shed only when even the cheapest level
/// cannot make the deadline. Neither class ever changes per-image
/// arithmetic at a given level — only which level serves it and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Default class: degradable under load, shed as a last resort.
    #[default]
    Normal,
    /// Latency-critical class: jumps the queue, keeps the most accurate
    /// level, never shed.
    High,
}

impl Priority {
    /// Dense index for per-class tables (`High` = 0, `Normal` = 1 — report
    /// order).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
        }
    }

    /// Report-table label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One classification request submitted to a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct InferRequest {
    /// The image to classify (`[3, H, W]`, matching the model config).
    pub image: Tensor,
    /// Absolute completion deadline. The batcher flushes a pending batch
    /// early when any member's deadline comes within the configured slack
    /// ([`crate::ServeConfig::deadline_slack`]); responses report whether
    /// the deadline was met either way — a miss is recorded, never dropped.
    pub deadline: Instant,
    /// Scheduling class.
    pub priority: Priority,
}

impl InferRequest {
    /// A normal-priority request due `budget` from now.
    pub fn with_budget(image: Tensor, budget: Duration) -> Self {
        Self {
            image,
            deadline: Instant::now() + budget,
            priority: Priority::Normal,
        }
    }
}

/// The served result for one request.
#[derive(Debug, Clone)]
pub struct InferResponse {
    /// Classification logits `[1, num_classes]`, bitwise identical to what
    /// `Engine::infer_batch` produces for the same image.
    pub logits: Tensor,
    /// Argmax class of `logits`.
    pub prediction: usize,
    /// Token count entering each encoder block for this image.
    pub tokens_per_block: Vec<usize>,
    /// Multiply–accumulate estimate for this image.
    pub macs: u64,
    /// Time from submission until the batch containing this request began
    /// executing (queueing + batching delay).
    pub queued: Duration,
    /// Time from submission until the response was resolved.
    pub latency: Duration,
    /// `true` if the response resolved after the request's deadline.
    pub deadline_missed: bool,
    /// Size of the batch this request was served in.
    pub batch_size: usize,
    /// Why that batch was flushed.
    pub flush: FlushReason,
    /// The request's SLO class.
    pub class: Priority,
    /// Service level that served it (0 = the server's most accurate level;
    /// higher = degraded by predictive admission).
    pub level: usize,
    /// Lane whose thread executed the batch (the home lane of `level`
    /// unless a [`crate::FlushReason::Steal`] moved it to an idle lane).
    pub lane: usize,
    /// The latency the admission-time model predicted for this request
    /// (queued work ahead of it plus its own service time). Compare with
    /// `latency` to judge the model.
    pub predicted: Duration,
}

/// The one-shot slot a batch execution resolves into; shared between the
/// submitter's [`Ticket`] and the batcher.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    response: Mutex<Option<InferResponse>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn fill(&self, response: InferResponse) {
        let mut slot = self.response.lock().expect("response slot poisoned");
        debug_assert!(slot.is_none(), "response slot filled twice");
        *slot = Some(response);
        self.ready.notify_all();
    }
}

/// Receipt for a submitted request. Blocks on [`Ticket::wait`] until the
/// batcher resolves it; the server's shutdown drain guarantees every
/// accepted ticket resolves (no request is ever dropped).
#[derive(Debug)]
pub struct Ticket {
    pub(crate) slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the response is ready. Consuming the ticket is what
    /// removes the response from the slot; the borrowing accessors below
    /// only peek, so any call order of `try_take`/`wait_timeout` followed
    /// by `wait` observes the response instead of hanging.
    pub fn wait(self) -> InferResponse {
        let mut slot = self.slot.response.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.slot.ready.wait(slot).expect("response slot poisoned");
        }
    }

    /// Blocks up to `timeout` for a *peek* at the response (cloned; the
    /// ticket stays valid and [`Ticket::wait`] still resolves). `None` if
    /// the response is still pending when the timeout expires.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<InferResponse> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.slot.response.lock().expect("response slot poisoned");
        loop {
            if let Some(response) = slot.as_ref() {
                return Some(response.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .slot
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("response slot poisoned");
            slot = guard;
        }
    }

    /// Non-blocking peek (cloned, like [`Ticket::wait_timeout`]); `None`
    /// while the response is pending.
    pub fn try_take(&self) -> Option<InferResponse> {
        self.slot
            .response
            .lock()
            .expect("response slot poisoned")
            .as_ref()
            .cloned()
    }
}

/// Why a submission was refused. The request comes back to the caller
/// untouched, so it can be retried elsewhere.
#[derive(Debug)]
pub enum SubmitError {
    /// The server is shutting down and no longer accepts requests.
    Closed(InferRequest),
    /// Non-blocking submission found the bounded queue full
    /// ([`crate::Server::try_submit`] only; blocking submit waits instead).
    Full(InferRequest),
    /// The image's shape does not match the served model's expected
    /// `[channels, height, width]` — refused at submission so it can never
    /// panic the batcher thread and strand other requests.
    BadImage {
        /// The refused request, returned untouched.
        request: InferRequest,
        /// The `[channels, height, width]` the served model expects.
        expected: [usize; 3],
    },
    /// Predictive admission refused the request: the latency model
    /// predicted a deadline miss at *every* service level, including the
    /// cheapest ([`crate::SloPolicy::shed_normal`]; never raised for
    /// [`Priority::High`]). Shedding at the door beats accepting work that
    /// would miss — the client can retry with a looser deadline or another
    /// replica.
    Shed {
        /// The refused request, returned untouched.
        request: InferRequest,
        /// The best (cheapest-level) completion the model could predict,
        /// as a latency from submission.
        predicted: Duration,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed(_) => f.write_str("server is closed to new requests"),
            SubmitError::Full(_) => f.write_str("request queue is full"),
            SubmitError::BadImage { request, expected } => write!(
                f,
                "image shape {:?} does not match the served model's expected {expected:?}",
                request.image.dims()
            ),
            SubmitError::Shed { predicted, .. } => write!(
                f,
                "admission predicts a deadline miss at every service level \
                 (best predicted latency {predicted:?})"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}
