//! The aggregate [`ServeReport`] (latency percentiles, batch-size
//! histogram, deadline misses, flush-policy counts, throughput,
//! per-SLO-class and per-lane breakdowns, and predicted-vs-measured
//! latency error) — materialized as a *view* over a telemetry registry
//! [`Snapshot`] via [`ServeReport::from_snapshot`].
//!
//! The legacy [`Stats`] accumulator that used to sit behind a mutex on the
//! request path survives here as the *replay reference*: it is no longer
//! on any live path, but `crates/serve/tests/telemetry_parity.rs` replays
//! a recorded request trace through it and asserts the snapshot-derived
//! report is bitwise identical (wall-clock fields excluded).

use crate::metrics::names;
use crate::request::Priority;
use heatvit::telemetry::{MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Why a lane flushed a pending batch into the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// The batch reached [`crate::ServeConfig::max_batch`] requests.
    MaxBatch,
    /// The earliest deadline in the batch came within
    /// [`crate::ServeConfig::deadline_slack`] of now.
    Deadline,
    /// No new request arrived for [`crate::ServeConfig::idle_flush`].
    Idle,
    /// The server is draining at shutdown (no request is dropped).
    Shutdown,
    /// An idle lane stole this batch off a backlogged lane's queue
    /// ([`crate::StealPolicy`]).
    Steal,
}

/// Flush counts per [`FlushReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// Batches flushed because they filled up.
    pub max_batch: u64,
    /// Batches flushed by deadline proximity.
    pub deadline: u64,
    /// Batches flushed by queue idleness.
    pub idle: u64,
    /// Batches flushed by the shutdown drain.
    pub shutdown: u64,
    /// Batches executed by a lane that stole them from another lane.
    pub steal: u64,
}

impl FlushReason {
    /// Every reason, in declaration order — the index order of the
    /// `heatvit_serve_flush_total` counter family.
    pub const ALL: [FlushReason; 5] = [
        FlushReason::MaxBatch,
        FlushReason::Deadline,
        FlushReason::Idle,
        FlushReason::Shutdown,
        FlushReason::Steal,
    ];

    /// Stable metric-label string of this reason (the `reason` label of
    /// `heatvit_serve_flush_total` and the tag on trace batch spans).
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::MaxBatch => "max_batch",
            FlushReason::Deadline => "deadline",
            FlushReason::Idle => "idle",
            FlushReason::Shutdown => "shutdown",
            FlushReason::Steal => "steal",
        }
    }

    /// Position in [`FlushReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            FlushReason::MaxBatch => 0,
            FlushReason::Deadline => 1,
            FlushReason::Idle => 2,
            FlushReason::Shutdown => 3,
            FlushReason::Steal => 4,
        }
    }

    /// The reason carrying `label`, if it names one (inverse of
    /// [`FlushReason::label`] — how a trace replay maps span tags back).
    pub fn from_label(label: &str) -> Option<FlushReason> {
        FlushReason::ALL.into_iter().find(|r| r.label() == label)
    }
}

impl FlushCounts {
    pub(crate) fn bump(&mut self, reason: FlushReason) {
        match reason {
            FlushReason::MaxBatch => self.max_batch += 1,
            FlushReason::Deadline => self.deadline += 1,
            FlushReason::Idle => self.idle += 1,
            FlushReason::Shutdown => self.shutdown += 1,
            FlushReason::Steal => self.steal += 1,
        }
    }

    /// Total batches flushed.
    pub fn total(&self) -> u64 {
        self.max_batch + self.deadline + self.idle + self.shutdown + self.steal
    }
}

/// Hard cap on retained latency samples: when the buffer fills, it is
/// decimated (every other sample kept) and the sampling stride doubles, so
/// memory stays bounded on a long-running server while p50/p95 remain
/// representative. The worst case is exact for the first 64k requests and
/// a deterministic 1-in-2ᵏ sample thereafter; the maximum is tracked
/// exactly regardless.
pub const MAX_LATENCY_SAMPLES: usize = 1 << 16;

/// Bounded latency reservoir: exact up to [`MAX_LATENCY_SAMPLES`], then a
/// deterministic even-spread decimation (see the constant's docs). The
/// maximum survives decimation exactly.
#[derive(Debug)]
struct LatencySamples {
    samples_us: Vec<u64>,
    /// Record every `stride`-th observation (1 until the first decimation,
    /// then doubling).
    stride: u64,
    /// Observations seen, driving the stride phase.
    seen: u64,
    /// Exact worst latency.
    max_us: u64,
}

impl Default for LatencySamples {
    fn default() -> Self {
        Self {
            samples_us: Vec::new(),
            stride: 1,
            seen: 0,
            max_us: 0,
        }
    }
}

impl LatencySamples {
    fn record(&mut self, latency: Duration) {
        let us = latency.as_micros() as u64;
        self.max_us = self.max_us.max(us);
        if self.seen.is_multiple_of(self.stride) {
            self.samples_us.push(us);
            if self.samples_us.len() >= MAX_LATENCY_SAMPLES {
                // Decimate: keep every other retained sample and halve the
                // future sampling rate. Deterministic, bounded, and the
                // kept samples stay an even spread over the whole history.
                let mut index = 0usize;
                self.samples_us.retain(|_| {
                    let keep = index.is_multiple_of(2);
                    index += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.seen += 1;
    }

    /// `(p50_ms, p95_ms, max_ms)` of everything recorded.
    fn percentiles_ms(&self) -> (f64, f64, f64) {
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        (
            percentile_us(&sorted, 0.50) as f64 / 1e3,
            percentile_us(&sorted, 0.95) as f64 / 1e3,
            self.max_us as f64 / 1e3,
        )
    }
}

/// Per-SLO-class accumulator behind [`ClassReport`].
#[derive(Debug, Default)]
pub(crate) struct ClassStats {
    latencies: LatencySamples,
    completed: u64,
    deadline_misses: u64,
    sheds: u64,
    degraded: u64,
    /// Sum of the accuracy proxy (serving level's keep fraction) over
    /// completed requests.
    keep_sum: f64,
}

/// The legacy locked accumulator that used to sit behind every
/// [`ServeReport`] — retained (off every live path) as the replay
/// reference for the telemetry redesign: the parity test feeds a recorded
/// request trace through it and asserts the snapshot-derived report
/// matches bitwise. Not part of the supported API surface.
#[doc(hidden)]
#[derive(Debug)]
pub struct Stats {
    latencies: LatencySamples,
    completed: u64,
    deadline_misses: u64,
    batch_sizes: BTreeMap<usize, u64>,
    flushes: FlushCounts,
    first_start: Option<Instant>,
    last_done: Option<Instant>,
    /// Indexed by [`Priority::index`].
    classes: [ClassStats; 2],
    /// Requests served per service level (index 0 = most accurate).
    level_served: Vec<u64>,
    /// Requests served per executing lane.
    lane_served: Vec<u64>,
    /// Requests each lane executed out of batches it stole.
    lane_steals: Vec<u64>,
    /// Sum of per-batch `|predicted − measured| / measured` execution-time
    /// error over `error_batches` warmed-up batches.
    error_sum: f64,
    error_batches: u64,
}

impl Stats {
    pub fn new(levels: usize, lanes: usize) -> Self {
        Self {
            latencies: LatencySamples::default(),
            completed: 0,
            deadline_misses: 0,
            batch_sizes: BTreeMap::new(),
            flushes: FlushCounts::default(),
            first_start: None,
            last_done: None,
            classes: [ClassStats::default(), ClassStats::default()],
            level_served: vec![0; levels],
            lane_served: vec![0; lanes],
            lane_steals: vec![0; lanes],
            error_sum: 0.0,
            error_batches: 0,
        }
    }

    pub fn record_batch(&mut self, size: usize, reason: FlushReason, done: Instant, lane: usize) {
        self.flushes.bump(reason);
        *self.batch_sizes.entry(size).or_insert(0) += 1;
        if reason == FlushReason::Steal {
            self.lane_steals[lane] += size as u64;
        }
        if self.first_start.is_none() {
            self.first_start = Some(done);
        }
        self.last_done = Some(done);
    }

    pub fn record_first_submit(&mut self, at: Instant) {
        if self.first_start.is_none() {
            self.first_start = Some(at);
        }
    }

    pub fn record_response(
        &mut self,
        latency: Duration,
        missed: bool,
        class: Priority,
        level: usize,
        keep: f64,
        lane: usize,
    ) {
        self.completed += 1;
        self.latencies.record(latency);
        if missed {
            self.deadline_misses += 1;
        }
        let c = &mut self.classes[class.index()];
        c.completed += 1;
        c.latencies.record(latency);
        c.keep_sum += keep;
        if missed {
            c.deadline_misses += 1;
        }
        if level > 0 {
            c.degraded += 1;
        }
        self.level_served[level] += 1;
        self.lane_served[lane] += 1;
    }

    pub fn record_shed(&mut self, class: Priority) {
        self.classes[class.index()].sheds += 1;
    }

    /// One warmed-up batch execution's relative prediction error
    /// (`|predicted − measured| / measured`).
    pub fn record_prediction_error(&mut self, predicted: Duration, measured: Duration) {
        if measured.is_zero() {
            return;
        }
        let rel = (predicted.as_secs_f64() - measured.as_secs_f64()).abs() / measured.as_secs_f64();
        self.error_sum += rel;
        self.error_batches += 1;
    }

    #[allow(deprecated)]
    pub fn report(&self) -> ServeReport {
        let completed = self.completed;
        let window = match (self.first_start, self.last_done) {
            (Some(start), Some(done)) => done.duration_since(start),
            _ => Duration::ZERO,
        };
        let total_in_batches: u64 = self.batch_sizes.iter().map(|(s, n)| (*s as u64) * n).sum();
        let (p50_ms, p95_ms, max_ms) = self.latencies.percentiles_ms();
        let classes = [Priority::High, Priority::Normal].map(|class| {
            let c = &self.classes[class.index()];
            let (p50_ms, p95_ms, max_ms) = c.latencies.percentiles_ms();
            ClassReport {
                class,
                completed: c.completed,
                deadline_misses: c.deadline_misses,
                sheds: c.sheds,
                degraded: c.degraded,
                p50_ms,
                p95_ms,
                max_ms,
                mean_keep: if c.completed == 0 {
                    0.0
                } else {
                    c.keep_sum / c.completed as f64
                },
            }
        });
        ServeReport {
            completed,
            batches: self.flushes.total(),
            deadline_misses: self.deadline_misses,
            flushes: self.flushes,
            batch_histogram: self.batch_sizes.iter().map(|(s, n)| (*s, *n)).collect(),
            mean_batch: if self.flushes.total() == 0 {
                0.0
            } else {
                total_in_batches as f64 / self.flushes.total() as f64
            },
            p50_ms,
            p95_ms,
            max_ms,
            throughput: if window.is_zero() {
                0.0
            } else {
                completed as f64 / window.as_secs_f64()
            },
            classes,
            level_served: self.level_served.clone(),
            lane_served: self.lane_served.clone(),
            lane_steals: self.lane_steals.clone(),
            // The server injects the real high-water marks (they live in
            // per-lane atomics, not under the stats lock).
            lane_queue_hwm: vec![0; self.lane_served.len()],
            predicted_error_pct: if self.error_batches == 0 {
                f64::NAN
            } else {
                100.0 * self.error_sum / self.error_batches as f64
            },
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice of microsecond
/// latencies (0 for an empty slice).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-SLO-class slice of a [`ServeReport`].
///
/// Reports are views materialized from a telemetry snapshot; read through
/// the accessor methods. The public fields remain as deprecated
/// compatibility shims.
#[derive(Debug, Clone, Copy)]
pub struct ClassReport {
    /// The SLO class this row describes.
    #[deprecated(note = "use `ClassReport::class()`")]
    pub class: Priority,
    /// Requests of this class resolved.
    #[deprecated(note = "use `ClassReport::completed()`")]
    pub completed: u64,
    /// Responses that resolved after their deadline.
    #[deprecated(note = "use `ClassReport::deadline_misses()`")]
    pub deadline_misses: u64,
    /// Submissions refused with [`crate::SubmitError::Shed`] (admission
    /// predicted a miss at every service level).
    #[deprecated(note = "use `ClassReport::sheds()`")]
    pub sheds: u64,
    /// Requests served at a degraded level (level index > 0: a cheaper
    /// keep-rate schedule or backend than the class's best).
    #[deprecated(note = "use `ClassReport::degraded()`")]
    pub degraded: u64,
    /// Median latency, milliseconds.
    #[deprecated(note = "use `ClassReport::p50_ms()`")]
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    #[deprecated(note = "use `ClassReport::p95_ms()`")]
    pub p95_ms: f64,
    /// Worst latency, milliseconds (exact).
    #[deprecated(note = "use `ClassReport::max_ms()`")]
    pub max_ms: f64,
    /// Mean accuracy proxy of the levels that served this class: the mean
    /// fraction of tokens kept relative to dense (1.0 = full accuracy
    /// budget; lower = degraded under load).
    #[deprecated(note = "use `ClassReport::mean_keep()`")]
    pub mean_keep: f64,
}

#[allow(deprecated)]
impl ClassReport {
    /// The SLO class this row describes.
    pub fn class(&self) -> Priority {
        self.class
    }

    /// Requests of this class resolved.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Responses that resolved after their deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Submissions refused with [`crate::SubmitError::Shed`] (admission
    /// predicted a miss at every service level).
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Requests served at a degraded level (level index > 0).
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// Median latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50_ms
    }

    /// 95th-percentile latency, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.p95_ms
    }

    /// Worst latency, milliseconds (exact).
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Mean accuracy proxy of the levels that served this class.
    pub fn mean_keep(&self) -> f64 {
        self.mean_keep
    }

    /// Fraction of completed requests of this class that missed their
    /// deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.completed as f64
        }
    }
}

/// Aggregate statistics of everything a [`crate::Server`] has served.
///
/// A report is a *view* materialized from the server's telemetry registry
/// ([`ServeReport::from_snapshot`]); read through the accessor methods.
/// The public fields remain as deprecated compatibility shims for code
/// written against the pre-telemetry report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests resolved.
    #[deprecated(note = "use `ServeReport::completed()`")]
    pub completed: u64,
    /// Batches flushed.
    #[deprecated(note = "use `ServeReport::batches()`")]
    pub batches: u64,
    /// Responses that resolved after their request's deadline.
    #[deprecated(note = "use `ServeReport::deadline_misses()`")]
    pub deadline_misses: u64,
    /// Flush counts per policy.
    #[deprecated(note = "use `ServeReport::flushes()`")]
    pub flushes: FlushCounts,
    /// `(batch size, count)` pairs in ascending batch-size order.
    #[deprecated(note = "use `ServeReport::batch_histogram()`")]
    pub batch_histogram: Vec<(usize, u64)>,
    /// Mean formed-batch size.
    #[deprecated(note = "use `ServeReport::mean_batch()`")]
    pub mean_batch: f64,
    /// Median request latency (submit → response), milliseconds. Exact up
    /// to [`MAX_LATENCY_SAMPLES`] requests, computed over a deterministic
    /// even-spread sample beyond that.
    #[deprecated(note = "use `ServeReport::p50_ms()`")]
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds (nearest-rank; same
    /// sampling bound as `p50_ms`).
    #[deprecated(note = "use `ServeReport::p95_ms()`")]
    pub p95_ms: f64,
    /// Worst request latency, milliseconds (always exact).
    #[deprecated(note = "use `ServeReport::max_ms()`")]
    pub max_ms: f64,
    /// Completed requests per second over the serving window (first
    /// submission to last resolved batch).
    #[deprecated(note = "use `ServeReport::throughput()`")]
    pub throughput: f64,
    /// Per-SLO-class breakdown, [`Priority::High`] first.
    #[deprecated(note = "use `ServeReport::classes()` or `ServeReport::class()`")]
    pub classes: [ClassReport; 2],
    /// Requests served per service level (index 0 = the most accurate
    /// level; a single-backend server has one entry).
    #[deprecated(note = "use `ServeReport::level_served()`")]
    pub level_served: Vec<u64>,
    /// Requests served per executing lane (stolen batches count for the
    /// thief — this is who did the work, `level_served` is what model ran).
    #[deprecated(note = "use `ServeReport::lane_served()`")]
    pub lane_served: Vec<u64>,
    /// Requests each lane executed out of batches it stole from another
    /// lane's queue (a subset of `lane_served`).
    #[deprecated(note = "use `ServeReport::lane_steals()`")]
    pub lane_steals: Vec<u64>,
    /// Highest queue depth each lane ever reached (its backlog high-water
    /// mark against [`crate::ServeConfig::queue_capacity`]).
    #[deprecated(note = "use `ServeReport::lane_queue_hwm()`")]
    pub lane_queue_hwm: Vec<u64>,
    /// Mean `|predicted − measured| / measured` batch execution-time error
    /// of the server's latency model, percent, over warmed-up batches
    /// (each level's first batch is excluded as model cold start). `NaN`
    /// until a warmed-up batch completes.
    #[deprecated(note = "use `ServeReport::predicted_error_pct()`")]
    pub predicted_error_pct: f64,
}

#[allow(deprecated)]
impl ServeReport {
    /// Materializes a report from a telemetry registry snapshot — the one
    /// way live reports are built. Every column is read back from the
    /// `heatvit_serve_*` metric families (see [`crate::metrics::names`]);
    /// the parity test asserts the result is bitwise identical to the
    /// legacy locked-accumulator path on a replayed request trace
    /// (wall-clock fields excluded).
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let counter_family = |name: &str, key: &str| -> Vec<u64> {
            snapshot
                .family_by(name, key)
                .into_iter()
                .map(|(_, m)| match m.value {
                    MetricValue::Counter(v) => v,
                    _ => 0,
                })
                .collect()
        };
        let flushes = FlushCounts {
            max_batch: snapshot.counter(names::FLUSH, &[("reason", "max_batch")]),
            deadline: snapshot.counter(names::FLUSH, &[("reason", "deadline")]),
            idle: snapshot.counter(names::FLUSH, &[("reason", "idle")]),
            shutdown: snapshot.counter(names::FLUSH, &[("reason", "shutdown")]),
            steal: snapshot.counter(names::FLUSH, &[("reason", "steal")]),
        };
        let batch_histogram: Vec<(usize, u64)> = snapshot
            .family_by(names::BATCH_SIZE, "size")
            .into_iter()
            .filter_map(|(size, m)| match m.value {
                MetricValue::Counter(n) if n > 0 => Some((size, n)),
                _ => None,
            })
            .collect();
        let total_in_batches: u64 = batch_histogram.iter().map(|(s, n)| (*s as u64) * n).sum();
        let percentiles = |name: &str, labels: &[(&str, &str)]| {
            snapshot
                .series(name, labels)
                .map(|s| s.percentiles_ms())
                .unwrap_or((0.0, 0.0, 0.0))
        };
        let (p50_ms, p95_ms, max_ms) = percentiles(names::LATENCY, &[]);
        let classes = [Priority::High, Priority::Normal].map(|class| {
            let labels = &[("class", class.label())][..];
            let completed = snapshot.counter(names::CLASS_COMPLETED, labels);
            let (p50_ms, p95_ms, max_ms) = percentiles(names::CLASS_LATENCY, labels);
            ClassReport {
                class,
                completed,
                deadline_misses: snapshot.counter(names::CLASS_MISSES, labels),
                sheds: snapshot.counter(names::CLASS_SHEDS, labels),
                degraded: snapshot.counter(names::CLASS_DEGRADED, labels),
                p50_ms,
                p95_ms,
                max_ms,
                mean_keep: if completed == 0 {
                    0.0
                } else {
                    snapshot.float_counter(names::CLASS_KEEP_SUM, labels) / completed as f64
                },
            }
        });
        let completed = snapshot.counter(names::COMPLETED, &[]);
        // Window gauges hold µs offsets + 1 (0 = unset); the +1 cancels in
        // the subtraction.
        let first = snapshot.gauge(names::WINDOW_FIRST_US, &[]);
        let last = snapshot.gauge(names::WINDOW_LAST_US, &[]);
        let window_us = if first == 0 || last == 0 {
            0
        } else {
            last.saturating_sub(first)
        };
        let error_batches = snapshot.counter(names::PREDICTION_BATCHES, &[]);
        ServeReport {
            completed,
            batches: flushes.total(),
            deadline_misses: snapshot.counter(names::DEADLINE_MISSES, &[]),
            flushes,
            batch_histogram,
            mean_batch: if flushes.total() == 0 {
                0.0
            } else {
                total_in_batches as f64 / flushes.total() as f64
            },
            p50_ms,
            p95_ms,
            max_ms,
            throughput: if window_us == 0 {
                0.0
            } else {
                completed as f64 / (window_us as f64 / 1e6)
            },
            classes,
            level_served: counter_family(names::LEVEL_SERVED, "level"),
            lane_served: counter_family(names::LANE_SERVED, "lane"),
            lane_steals: counter_family(names::LANE_STEALS, "lane"),
            lane_queue_hwm: snapshot
                .family_by(names::LANE_QUEUE_HWM, "lane")
                .into_iter()
                .map(|(_, m)| match m.value {
                    MetricValue::Gauge(v) => v,
                    _ => 0,
                })
                .collect(),
            predicted_error_pct: if error_batches == 0 {
                f64::NAN
            } else {
                100.0 * snapshot.float_counter(names::PREDICTION_ERROR_SUM, &[])
                    / error_batches as f64
            },
        }
    }

    /// Requests resolved.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Batches flushed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Responses that resolved after their request's deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Flush counts per policy.
    pub fn flushes(&self) -> FlushCounts {
        self.flushes
    }

    /// `(batch size, count)` pairs in ascending batch-size order.
    pub fn batch_histogram(&self) -> &[(usize, u64)] {
        &self.batch_histogram
    }

    /// Mean formed-batch size.
    pub fn mean_batch(&self) -> f64 {
        self.mean_batch
    }

    /// Median request latency (submit → response), milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50_ms
    }

    /// 95th-percentile request latency, milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.p95_ms
    }

    /// Worst request latency, milliseconds (always exact).
    pub fn max_ms(&self) -> f64 {
        self.max_ms
    }

    /// Completed requests per second over the serving window.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Per-SLO-class breakdown, [`Priority::High`] first.
    pub fn classes(&self) -> &[ClassReport; 2] {
        &self.classes
    }

    /// Requests served per service level (index 0 = most accurate).
    pub fn level_served(&self) -> &[u64] {
        &self.level_served
    }

    /// Requests served per executing lane.
    pub fn lane_served(&self) -> &[u64] {
        &self.lane_served
    }

    /// Requests each lane executed out of stolen batches.
    pub fn lane_steals(&self) -> &[u64] {
        &self.lane_steals
    }

    /// Highest queue depth each lane ever reached.
    pub fn lane_queue_hwm(&self) -> &[u64] {
        &self.lane_queue_hwm
    }

    /// Mean relative batch execution-time prediction error, percent
    /// (`NaN` until a warmed-up batch completes).
    pub fn predicted_error_pct(&self) -> f64 {
        self.predicted_error_pct
    }

    /// Fraction of completed requests that missed their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.completed as f64
        }
    }

    /// The [`ClassReport`] of one SLO class.
    pub fn class(&self, class: Priority) -> &ClassReport {
        &self.classes[if class == Priority::High { 0 } else { 1 }]
    }

    /// Total submissions refused by predictive admission across classes.
    pub fn sheds(&self) -> u64 {
        self.classes.iter().map(|c| c.sheds).sum()
    }

    /// Number of batcher/executor lanes this report covers.
    pub fn lanes(&self) -> usize {
        self.lane_served.len()
    }

    /// Total requests served out of stolen batches, across lanes.
    pub fn stolen(&self) -> u64 {
        self.lane_steals.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 0.50), 50);
        assert_eq!(percentile_us(&v, 0.95), 95);
        assert_eq!(percentile_us(&v, 1.0), 100);
        assert_eq!(percentile_us(&[7], 0.95), 7);
        assert_eq!(percentile_us(&[], 0.95), 0);
        // Small-sample nearest rank rounds up: p50 of [1, 2] is rank 1.
        assert_eq!(percentile_us(&[1, 2], 0.50), 1);
    }

    #[test]
    fn flush_counts_bump_and_total() {
        let mut counts = FlushCounts::default();
        counts.bump(FlushReason::MaxBatch);
        counts.bump(FlushReason::Deadline);
        counts.bump(FlushReason::Deadline);
        counts.bump(FlushReason::Idle);
        counts.bump(FlushReason::Shutdown);
        counts.bump(FlushReason::Steal);
        assert_eq!(counts.max_batch, 1);
        assert_eq!(counts.deadline, 2);
        assert_eq!(counts.steal, 1);
        assert_eq!(counts.total(), 6);
    }

    #[test]
    fn latency_storage_stays_bounded_under_sustained_load() {
        let mut stats = Stats::new(1, 1);
        let total = MAX_LATENCY_SAMPLES * 4;
        for i in 0..total {
            stats.record_response(
                Duration::from_micros(i as u64 + 1),
                false,
                Priority::Normal,
                0,
                1.0,
                0,
            );
        }
        assert!(stats.latencies.samples_us.len() < MAX_LATENCY_SAMPLES);
        let report = stats.report();
        // Counters stay exact through decimation, including the maximum.
        assert_eq!(report.completed(), total as u64);
        assert_eq!(report.max_ms(), total as f64 / 1e3);
        // Percentiles stay representative of the uniform 1..=total ramp.
        let mid = total as f64 / 1e3 / 2.0;
        assert!(
            (report.p50_ms() - mid).abs() < mid * 0.05,
            "{}",
            report.p50_ms()
        );
    }

    #[test]
    fn stats_aggregate_into_a_report() {
        let mut stats = Stats::new(2, 1);
        let t0 = Instant::now();
        stats.record_first_submit(t0);
        stats.record_batch(2, FlushReason::MaxBatch, t0 + Duration::from_millis(10), 0);
        stats.record_response(Duration::from_millis(4), false, Priority::High, 0, 1.0, 0);
        stats.record_response(Duration::from_millis(8), true, Priority::Normal, 1, 0.7, 0);
        stats.record_batch(1, FlushReason::Idle, t0 + Duration::from_millis(20), 0);
        stats.record_response(Duration::from_millis(2), false, Priority::Normal, 0, 1.0, 0);
        let report = stats.report();
        assert_eq!(report.completed(), 3);
        assert_eq!(report.batches(), 2);
        assert_eq!(report.deadline_misses(), 1);
        assert!((report.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.batch_histogram(), vec![(1, 1), (2, 1)]);
        assert!((report.mean_batch() - 1.5).abs() < 1e-12);
        assert_eq!(report.p50_ms(), 4.0);
        assert_eq!(report.max_ms(), 8.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn per_class_rows_split_correctly() {
        let mut stats = Stats::new(2, 1);
        stats.record_response(Duration::from_millis(1), false, Priority::High, 0, 1.0, 0);
        stats.record_response(Duration::from_millis(9), true, Priority::Normal, 1, 0.6, 0);
        stats.record_response(Duration::from_millis(3), false, Priority::Normal, 1, 0.8, 0);
        stats.record_shed(Priority::Normal);
        let report = stats.report();
        let high = report.class(Priority::High);
        assert_eq!(
            (
                high.completed(),
                high.deadline_misses(),
                high.sheds(),
                high.degraded()
            ),
            (1, 0, 0, 0)
        );
        assert!((high.mean_keep() - 1.0).abs() < 1e-12);
        let normal = report.class(Priority::Normal);
        assert_eq!(
            (
                normal.completed(),
                normal.deadline_misses(),
                normal.sheds(),
                normal.degraded()
            ),
            (2, 1, 1, 2)
        );
        assert!((normal.mean_keep() - 0.7).abs() < 1e-12);
        assert!((normal.miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(report.sheds(), 1);
        assert_eq!(report.level_served(), vec![1, 2]);
    }

    #[test]
    fn prediction_error_averages_over_batches() {
        let mut stats = Stats::new(1, 1);
        assert!(stats.report().predicted_error_pct().is_nan());
        stats.record_prediction_error(Duration::from_millis(11), Duration::from_millis(10));
        stats.record_prediction_error(Duration::from_millis(9), Duration::from_millis(10));
        let report = stats.report();
        assert!((report.predicted_error_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn lane_rows_split_served_and_stolen_work() {
        let mut stats = Stats::new(1, 2);
        let t0 = Instant::now();
        // Lane 0 forms and executes a full batch of 3...
        stats.record_batch(3, FlushReason::MaxBatch, t0 + Duration::from_millis(1), 0);
        for _ in 0..3 {
            stats.record_response(Duration::from_millis(1), false, Priority::Normal, 0, 1.0, 0);
        }
        // ...and lane 1 steals and executes a batch of 2 off lane 0's queue.
        stats.record_batch(2, FlushReason::Steal, t0 + Duration::from_millis(2), 1);
        for _ in 0..2 {
            stats.record_response(Duration::from_millis(1), false, Priority::Normal, 0, 1.0, 1);
        }
        let report = stats.report();
        assert_eq!(report.lanes(), 2);
        assert_eq!(report.lane_served(), vec![3, 2]);
        assert_eq!(report.lane_steals(), vec![0, 2]);
        assert_eq!(report.stolen(), 2);
        assert_eq!(report.flushes().steal, 1);
        // Every stolen request still lands in the per-level row.
        assert_eq!(report.level_served(), vec![5]);
    }
}
