//! Serving telemetry: per-flush accounting and the aggregate
//! [`ServeReport`] (latency percentiles, batch-size histogram, deadline
//! misses, flush-policy counts, throughput).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Why the dynamic batcher flushed a pending batch into the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// The batch reached [`crate::ServeConfig::max_batch`] requests.
    MaxBatch,
    /// The earliest deadline in the batch came within
    /// [`crate::ServeConfig::deadline_slack`] of now.
    Deadline,
    /// No new request arrived for [`crate::ServeConfig::idle_flush`].
    Idle,
    /// The server is draining at shutdown (no request is dropped).
    Shutdown,
}

/// Flush counts per [`FlushReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushCounts {
    /// Batches flushed because they filled up.
    pub max_batch: u64,
    /// Batches flushed by deadline proximity.
    pub deadline: u64,
    /// Batches flushed by queue idleness.
    pub idle: u64,
    /// Batches flushed by the shutdown drain.
    pub shutdown: u64,
}

impl FlushCounts {
    pub(crate) fn bump(&mut self, reason: FlushReason) {
        match reason {
            FlushReason::MaxBatch => self.max_batch += 1,
            FlushReason::Deadline => self.deadline += 1,
            FlushReason::Idle => self.idle += 1,
            FlushReason::Shutdown => self.shutdown += 1,
        }
    }

    /// Total batches flushed.
    pub fn total(&self) -> u64 {
        self.max_batch + self.deadline + self.idle + self.shutdown
    }
}

/// Hard cap on retained latency samples: when the buffer fills, it is
/// decimated (every other sample kept) and the sampling stride doubles, so
/// memory stays bounded on a long-running server while p50/p95 remain
/// representative. The worst case is exact for the first 64k requests and
/// a deterministic 1-in-2ᵏ sample thereafter; the maximum is tracked
/// exactly regardless.
pub const MAX_LATENCY_SAMPLES: usize = 1 << 16;

/// Running accumulator behind [`ServeReport`]. One per server, updated
/// under its own lock per flushed batch (never inside the compute path;
/// the batcher only records plain arithmetic under it).
#[derive(Debug)]
pub(crate) struct Stats {
    latencies_us: Vec<u64>,
    /// Record every `latency_stride`-th response (1 until the first
    /// decimation, then doubling).
    latency_stride: u64,
    /// Responses seen, driving the stride phase.
    latency_seen: u64,
    /// Exact worst latency (survives decimation).
    max_latency_us: u64,
    completed: u64,
    deadline_misses: u64,
    batch_sizes: BTreeMap<usize, u64>,
    flushes: FlushCounts,
    first_start: Option<Instant>,
    last_done: Option<Instant>,
}

impl Default for Stats {
    fn default() -> Self {
        Self {
            latencies_us: Vec::new(),
            latency_stride: 1,
            latency_seen: 0,
            max_latency_us: 0,
            completed: 0,
            deadline_misses: 0,
            batch_sizes: BTreeMap::new(),
            flushes: FlushCounts::default(),
            first_start: None,
            last_done: None,
        }
    }
}

impl Stats {
    pub(crate) fn record_batch(&mut self, size: usize, reason: FlushReason, done: Instant) {
        self.flushes.bump(reason);
        *self.batch_sizes.entry(size).or_insert(0) += 1;
        if self.first_start.is_none() {
            self.first_start = Some(done);
        }
        self.last_done = Some(done);
    }

    pub(crate) fn record_first_submit(&mut self, at: Instant) {
        if self.first_start.is_none() {
            self.first_start = Some(at);
        }
    }

    pub(crate) fn record_response(&mut self, latency: Duration, missed: bool) {
        let us = latency.as_micros() as u64;
        self.completed += 1;
        self.max_latency_us = self.max_latency_us.max(us);
        if missed {
            self.deadline_misses += 1;
        }
        if self.latency_seen.is_multiple_of(self.latency_stride) {
            self.latencies_us.push(us);
            if self.latencies_us.len() >= MAX_LATENCY_SAMPLES {
                // Decimate: keep every other retained sample and halve the
                // future sampling rate. Deterministic, bounded, and the
                // kept samples stay an even spread over the whole history.
                let mut index = 0usize;
                self.latencies_us.retain(|_| {
                    let keep = index.is_multiple_of(2);
                    index += 1;
                    keep
                });
                self.latency_stride *= 2;
            }
        }
        self.latency_seen += 1;
    }

    pub(crate) fn report(&self) -> ServeReport {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let completed = self.completed;
        let window = match (self.first_start, self.last_done) {
            (Some(start), Some(done)) => done.duration_since(start),
            _ => Duration::ZERO,
        };
        let total_in_batches: u64 = self.batch_sizes.iter().map(|(s, n)| (*s as u64) * n).sum();
        ServeReport {
            completed,
            batches: self.flushes.total(),
            deadline_misses: self.deadline_misses,
            flushes: self.flushes,
            batch_histogram: self.batch_sizes.iter().map(|(s, n)| (*s, *n)).collect(),
            mean_batch: if self.flushes.total() == 0 {
                0.0
            } else {
                total_in_batches as f64 / self.flushes.total() as f64
            },
            p50_ms: percentile_us(&sorted, 0.50) as f64 / 1e3,
            p95_ms: percentile_us(&sorted, 0.95) as f64 / 1e3,
            max_ms: self.max_latency_us as f64 / 1e3,
            throughput: if window.is_zero() {
                0.0
            } else {
                completed as f64 / window.as_secs_f64()
            },
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice of microsecond
/// latencies (0 for an empty slice).
fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate statistics of everything a [`crate::Server`] has served.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests resolved.
    pub completed: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Responses that resolved after their request's deadline.
    pub deadline_misses: u64,
    /// Flush counts per policy.
    pub flushes: FlushCounts,
    /// `(batch size, count)` pairs in ascending batch-size order.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Mean formed-batch size.
    pub mean_batch: f64,
    /// Median request latency (submit → response), milliseconds. Exact up
    /// to [`MAX_LATENCY_SAMPLES`] requests, computed over a deterministic
    /// even-spread sample beyond that.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds (nearest-rank; same
    /// sampling bound as `p50_ms`).
    pub p95_ms: f64,
    /// Worst request latency, milliseconds (always exact).
    pub max_ms: f64,
    /// Completed requests per second over the serving window (first
    /// submission to last resolved batch).
    pub throughput: f64,
}

impl ServeReport {
    /// Fraction of completed requests that missed their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 0.50), 50);
        assert_eq!(percentile_us(&v, 0.95), 95);
        assert_eq!(percentile_us(&v, 1.0), 100);
        assert_eq!(percentile_us(&[7], 0.95), 7);
        assert_eq!(percentile_us(&[], 0.95), 0);
        // Small-sample nearest rank rounds up: p50 of [1, 2] is rank 1.
        assert_eq!(percentile_us(&[1, 2], 0.50), 1);
    }

    #[test]
    fn flush_counts_bump_and_total() {
        let mut counts = FlushCounts::default();
        counts.bump(FlushReason::MaxBatch);
        counts.bump(FlushReason::Deadline);
        counts.bump(FlushReason::Deadline);
        counts.bump(FlushReason::Idle);
        counts.bump(FlushReason::Shutdown);
        assert_eq!(counts.max_batch, 1);
        assert_eq!(counts.deadline, 2);
        assert_eq!(counts.total(), 5);
    }

    #[test]
    fn latency_storage_stays_bounded_under_sustained_load() {
        let mut stats = Stats::default();
        let total = MAX_LATENCY_SAMPLES * 4;
        for i in 0..total {
            stats.record_response(Duration::from_micros(i as u64 + 1), false);
        }
        assert!(stats.latencies_us.len() < MAX_LATENCY_SAMPLES);
        let report = stats.report();
        // Counters stay exact through decimation, including the maximum.
        assert_eq!(report.completed, total as u64);
        assert_eq!(report.max_ms, total as f64 / 1e3);
        // Percentiles stay representative of the uniform 1..=total ramp.
        let mid = total as f64 / 1e3 / 2.0;
        assert!(
            (report.p50_ms - mid).abs() < mid * 0.05,
            "{}",
            report.p50_ms
        );
    }

    #[test]
    fn stats_aggregate_into_a_report() {
        let mut stats = Stats::default();
        let t0 = Instant::now();
        stats.record_first_submit(t0);
        stats.record_batch(2, FlushReason::MaxBatch, t0 + Duration::from_millis(10));
        stats.record_response(Duration::from_millis(4), false);
        stats.record_response(Duration::from_millis(8), true);
        stats.record_batch(1, FlushReason::Idle, t0 + Duration::from_millis(20));
        stats.record_response(Duration::from_millis(2), false);
        let report = stats.report();
        assert_eq!(report.completed, 3);
        assert_eq!(report.batches, 2);
        assert_eq!(report.deadline_misses, 1);
        assert!((report.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.batch_histogram, vec![(1, 1), (2, 1)]);
        assert!((report.mean_batch - 1.5).abs() < 1e-12);
        assert_eq!(report.p50_ms, 4.0);
        assert_eq!(report.max_ms, 8.0);
        assert!(report.throughput > 0.0);
    }
}
