//! The [`Server`]: a bounded request queue, a dynamic batcher thread, and
//! one shared [`Engine`] per service level whose sharded execution core
//! runs every formed batch.
//!
//! ## Request lifecycle
//!
//! 1. A client calls [`Server::submit`] from any thread. Admission consults
//!    the server's [`LatencyModel`]: the request's predicted completion
//!    (queued work ahead of it plus its own service time at a candidate
//!    level) is compared against its deadline. [`Priority::High`] requests
//!    are pinned to the most accurate level and always admitted;
//!    [`Priority::Normal`] requests degrade down the level ladder until a
//!    level predicts an on-time completion, and — under
//!    [`SloPolicy::shed_normal`] — are refused with [`SubmitError::Shed`]
//!    when even the cheapest level predicts a miss. Admitted requests enter
//!    the bounded queue (blocking while full — the backpressure that makes
//!    closed-loop load generation drop-free) and the client gets a
//!    [`Ticket`] back immediately.
//! 2. The batcher thread accumulates queued requests into per-level pending
//!    batches, high-priority first, and flushes a level when the first of
//!    three conditions trips: its batch is full (`max_batch`), some
//!    member's deadline is within `deadline_slack`, or no new request has
//!    arrived for `idle_flush`.
//! 3. The flushed batch runs through [`Engine::infer_batch_iter`] — the
//!    same sharded, scratch-pooled execution core the offline benchmarks
//!    use, so served logits are bitwise identical to `Engine::infer_batch`
//!    on the same images. The measured execution feeds back into the
//!    latency model ([`LatencyModel::observe`]), so an online model
//!    converges to this machine's real per-level service times.
//! 4. Each request's [`Ticket`] resolves with its [`InferResponse`];
//!    latency, batch size, flush reason, serving level, and deadline
//!    outcome land in the server's [`ServeReport`], broken out per SLO
//!    class.
//!
//! Shutdown closes the queue and *drains* it: every accepted request is
//! still served (flushes tagged [`FlushReason::Shutdown`]), then the
//! batcher exits. Admission can refuse, but nothing accepted is ever
//! dropped.

use crate::report::{FlushReason, ServeReport, Stats};
use crate::request::{InferRequest, InferResponse, Priority, ResponseSlot, SubmitError, Ticket};
use heatvit::{CostProfile, Engine, InferenceModel, LatencyModel, MeasuredEwma};
use heatvit_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Predictive-admission policy of a [`Server`] (the SLO-aware layer; off by
/// default so a plain server behaves like a simple bounded queue).
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// Enables latency-predictive admission: level selection for Normal
    /// requests and (optionally) shedding.
    pub enabled: bool,
    /// Admission headroom: a level is acceptable when predicted completion
    /// plus `admission_slack` is within the deadline, where the prediction
    /// is the queued work ahead plus a full `max_batch` of the level's
    /// per-image service time. Size the slack to cover batching delay plus
    /// prediction noise.
    pub admission_slack: Duration,
    /// Refuse Normal requests with [`SubmitError::Shed`] when every level
    /// predicts a miss; with `false` they are admitted at the cheapest
    /// level instead (best effort). High requests are never shed either
    /// way.
    pub shed_normal: bool,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            admission_slack: Duration::from_millis(2),
            shed_normal: true,
        }
    }
}

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Flush a pending batch as soon as it holds this many requests (also
    /// the hard cap on formed-batch size).
    pub max_batch: usize,
    /// Bound of the submission queue; blocking [`Server::submit`] waits for
    /// space, [`Server::try_submit`] returns [`SubmitError::Full`].
    pub queue_capacity: usize,
    /// Flush a non-empty pending batch once no new request has arrived for
    /// this long (latency floor under trickle traffic).
    pub idle_flush: Duration,
    /// Flush once the earliest deadline in the pending batch is within this
    /// margin of now — the margin should cover one batch's service time so
    /// the response still makes the deadline.
    pub deadline_slack: Duration,
    /// Deadline budget given to [`Server::submit_image`] conveniences.
    pub default_deadline: Duration,
    /// Worker policy of the underlying [`Engine`] (how each formed batch is
    /// sharded across threads).
    pub engine: heatvit::EngineConfig,
    /// Predictive-admission policy (disabled by default).
    pub slo: SloPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            queue_capacity: 64,
            idle_flush: Duration::from_millis(1),
            deadline_slack: Duration::from_millis(2),
            default_deadline: Duration::from_millis(50),
            engine: heatvit::EngineConfig::default(),
            slo: SloPolicy::default(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
    }
}

/// One service level: an engine over one backend, plus the cost profile
/// and accuracy proxy admission reasons about.
struct Level<M: InferenceModel> {
    engine: Engine<M>,
    profile: CostProfile,
    /// Accuracy proxy: the profile's mean token keep fraction vs dense.
    keep: f64,
}

/// One queued request plus its bookkeeping.
struct Pending {
    image: Tensor,
    deadline: Instant,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
    class: Priority,
    /// Service level admission chose (0 = most accurate).
    level: usize,
    /// Admission-time predicted service cost of this request alone, µs
    /// (what `inflight_us` was charged; refunded on completion).
    cost_us: u64,
    /// Admission-time predicted total latency (queue wait + service).
    predicted: Duration,
}

/// Everything behind the queue mutex.
struct QueueState {
    high: VecDeque<Pending>,
    normal: VecDeque<Pending>,
    /// `false` once shutdown begins: submissions are refused, the batcher
    /// drains what remains.
    open: bool,
    /// Most recent arrival, driving the idle-flush timer.
    last_arrival: Option<Instant>,
    /// `true` once the first submission has opened the stats window, so
    /// the per-submit hot path never touches the stats lock again.
    window_opened: bool,
    /// Predicted service µs of every admitted-but-unresolved request — the
    /// queue-wait estimate admission adds to a candidate's own service
    /// time. Charged at admission, refunded when its batch resolves, so it
    /// covers queued, pending, and currently executing work.
    inflight_us: u64,
}

impl QueueState {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Next request in scheduling order: queued high-priority requests
    /// first, FIFO within each class.
    fn pop_next(&mut self) -> Option<Pending> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }

    /// Level of the request [`QueueState::pop_next`] would return.
    fn peek_next_level(&self) -> Option<usize> {
        self.high
            .front()
            .or_else(|| self.normal.front())
            .map(|p| p.level)
    }
}

/// State shared between client threads and the batcher thread.
struct Shared<M: InferenceModel> {
    /// Service levels, most accurate first; every server has at least one.
    levels: Vec<Level<M>>,
    latency: Arc<dyn LatencyModel>,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    /// Signaled on every arrival and at shutdown; the batcher waits here.
    arrived: Condvar,
    /// Signaled whenever queue space frees up; blocking submitters wait.
    space: Condvar,
    stats: Mutex<Stats>,
}

/// A serving front-end over one or more model backends. See the module
/// docs for the request lifecycle.
///
/// The type parameter defaults to [`heatvit::Backend`], the type-erased
/// handle — `Server<Backend>` is the one type a deployment needs no matter
/// which model variants it loads.
///
/// # Examples
///
/// ```
/// use heatvit::Backend;
/// use heatvit_serve::{ServeConfig, Server};
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(3), &mut rng);
/// let server = Server::start(Backend::from(model), ServeConfig::default());
/// let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
/// let ticket = server.submit_image(image).unwrap();
/// let response = ticket.wait();
/// assert_eq!(response.logits.dims(), &[1, 3]);
/// let report = server.shutdown();
/// assert_eq!(report.completed, 1);
/// ```
pub struct Server<M: InferenceModel + 'static = heatvit::Backend> {
    shared: Arc<Shared<M>>,
    batcher: Option<JoinHandle<()>>,
}

impl<M: InferenceModel + 'static> Server<M> {
    /// Builds a single-level server (per `config.engine`) with an online
    /// measured-EWMA latency model and spawns the batcher thread.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (zero `max_batch` or
    /// `queue_capacity`) or the batcher thread cannot be spawned.
    pub fn start(model: M, config: ServeConfig) -> Self {
        Self::start_tiered(vec![model], config, Arc::new(MeasuredEwma::default()))
    }

    /// Builds a tiered server: one engine per model in `models`, ordered
    /// **most accurate first** (level 0 is what High-priority traffic and
    /// unloaded Normal traffic get; later levels are the cheaper keep-rate
    /// schedules / backends predictive admission degrades Normal traffic
    /// onto). `latency` predicts per-request cost at admission and is fed
    /// every measured batch execution — pass an online model (e.g.
    /// `heatvit::MeasuredEwma` over an `FpgaCycleModel` or MAC-proxy
    /// prior) so predictions converge to this machine.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty, the models disagree on input shape or
    /// class count, `config` is invalid, or the batcher thread cannot be
    /// spawned.
    pub fn start_tiered(
        models: Vec<M>,
        config: ServeConfig,
        latency: Arc<dyn LatencyModel>,
    ) -> Self {
        config.validate();
        assert!(!models.is_empty(), "a server needs at least one backend");
        let levels: Vec<Level<M>> = models
            .into_iter()
            .map(|model| {
                let profile = model.cost_profile();
                let keep = profile.keep_fraction();
                Level {
                    engine: Engine::builder(model).config(config.engine).build(),
                    profile,
                    keep,
                }
            })
            .collect();
        let reference = levels[0].engine.model().config();
        for level in &levels[1..] {
            let cfg = level.engine.model().config();
            assert!(
                cfg.in_channels == reference.in_channels
                    && cfg.image_size == reference.image_size
                    && cfg.num_classes == reference.num_classes,
                "every service level must share input shape and class count"
            );
        }
        let level_count = levels.len();
        let shared = Arc::new(Shared {
            levels,
            latency,
            config,
            queue: Mutex::new(QueueState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                open: true,
                last_arrival: None,
                window_opened: false,
                inflight_us: 0,
            }),
            arrived: Condvar::new(),
            space: Condvar::new(),
            stats: Mutex::new(Stats::new(level_count)),
        });
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("heatvit-serve-batcher".into())
            .spawn(move || batcher_loop(batcher_shared))
            .expect("failed to spawn batcher thread");
        Self {
            shared,
            batcher: Some(batcher),
        }
    }

    /// Submits a request, blocking while the bounded queue is full.
    /// Returns the [`Ticket`] that will resolve with the response, or the
    /// request back if the server is closed (or, under
    /// [`SloPolicy::shed_normal`], shed).
    pub fn submit(&self, request: InferRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, true)
    }

    /// Non-blocking [`Server::submit`]: refuses with [`SubmitError::Full`]
    /// instead of waiting for queue space.
    pub fn try_submit(&self, request: InferRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, false)
    }

    /// Submits an image as a normal-priority request due
    /// [`ServeConfig::default_deadline`] from now (blocking while full).
    pub fn submit_image(&self, image: Tensor) -> Result<Ticket, SubmitError> {
        self.submit(InferRequest::with_budget(
            image,
            self.shared.config.default_deadline,
        ))
    }

    /// Picks the service level for an admitted request and its predicted
    /// latency `(level, service µs, total predicted)`; `Err(best)` means
    /// every level predicts a miss (shed candidate, with the cheapest
    /// level's prediction).
    fn choose_level(
        &self,
        queue: &QueueState,
        request: &InferRequest,
        now: Instant,
    ) -> Result<(usize, u64, Duration), (u64, Duration)> {
        let shared = &*self.shared;
        let slo = shared.config.slo;
        let wait = Duration::from_micros(queue.inflight_us);
        // Completion estimate per level: queued work ahead, plus a full
        // `max_batch` of the level's per-image service time — the request
        // may ride a batch that is executed whole before its response
        // resolves, and the batch term is also what separates the levels
        // (per-image differences alone are small next to queue wait, so
        // admission would almost never find the degradation window).
        // The inflight charge stays per-image: the backlog drains one
        // image at a time regardless of batch shape.
        let predict = |level: &Level<M>| {
            let per_image = shared.latency.predict(&level.profile);
            let svc = per_image * shared.config.max_batch as u32;
            (per_image.as_micros() as u64, wait + svc)
        };
        // High is pinned to the most accurate level no matter the load;
        // disabled admission serves everyone there too.
        if request.priority == Priority::High || !slo.enabled {
            let (cost, predicted) = predict(&shared.levels[0]);
            return Ok((0, cost, predicted));
        }
        let mut cheapest = (0, Duration::ZERO);
        for (i, level) in shared.levels.iter().enumerate() {
            let (cost, predicted) = predict(level);
            if now + predicted + slo.admission_slack <= request.deadline {
                return Ok((i, cost, predicted));
            }
            cheapest = (cost, predicted);
        }
        if slo.shed_normal {
            Err(cheapest)
        } else {
            let (cost, predicted) = cheapest;
            Ok((shared.levels.len() - 1, cost, predicted))
        }
    }

    fn enqueue(&self, request: InferRequest, block: bool) -> Result<Ticket, SubmitError> {
        let shared = &*self.shared;
        // Shape-check before accepting: a malformed image must be refused
        // here, at the submitter, not panic later inside the batcher thread
        // (which would strand every in-flight ticket).
        let config = shared.levels[0].engine.model().config();
        let expected = [config.in_channels, config.image_size, config.image_size];
        if request.image.dims() != expected {
            return Err(SubmitError::BadImage { request, expected });
        }
        let mut queue = shared.queue.lock().expect("serve queue poisoned");
        while queue.open && queue.len() >= shared.config.queue_capacity {
            if !block {
                return Err(SubmitError::Full(request));
            }
            queue = shared.space.wait(queue).expect("serve queue poisoned");
        }
        if !queue.open {
            return Err(SubmitError::Closed(request));
        }
        let now = Instant::now();
        let (level, cost_us, predicted) = match self.choose_level(&queue, &request, now) {
            Ok(choice) => choice,
            Err((_, predicted)) => {
                drop(queue);
                let class = request.priority;
                shared
                    .stats
                    .lock()
                    .expect("serve stats poisoned")
                    .record_shed(class);
                return Err(SubmitError::Shed { request, predicted });
            }
        };
        let slot = Arc::new(ResponseSlot::default());
        let pending = Pending {
            image: request.image,
            deadline: request.deadline,
            submitted: now,
            slot: Arc::clone(&slot),
            class: request.priority,
            level,
            cost_us,
            predicted,
        };
        match request.priority {
            Priority::High => queue.high.push_back(pending),
            Priority::Normal => queue.normal.push_back(pending),
        }
        queue.inflight_us += cost_us;
        queue.last_arrival = Some(now);
        // Open the serving window before the request becomes visible to the
        // batcher (queue lock still held; the batcher never takes the stats
        // lock while holding the queue lock, so the queue→stats order here
        // cannot deadlock) — otherwise a fast batcher could record the
        // first batch completion as the window start, skewing throughput.
        // The flag keeps this off the steady-state submit path: the stats
        // lock is taken exactly once per server lifetime.
        if !queue.window_opened {
            queue.window_opened = true;
            shared
                .stats
                .lock()
                .expect("serve stats poisoned")
                .record_first_submit(now);
        }
        drop(queue);
        shared.arrived.notify_all();
        Ok(Ticket { slot })
    }

    /// Stops accepting new requests; the batcher keeps draining in the
    /// background. Safe to call more than once.
    pub fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
        queue.open = false;
        drop(queue);
        self.shared.arrived.notify_all();
        self.shared.space.notify_all();
    }

    /// Snapshot of everything served so far (callable while running).
    pub fn report(&self) -> ServeReport {
        self.shared
            .stats
            .lock()
            .expect("serve stats poisoned")
            .report()
    }

    /// The most accurate (level 0) model being served.
    pub fn model(&self) -> &M {
        self.shared.levels[0].engine.model()
    }

    /// Number of service levels.
    pub fn level_count(&self) -> usize {
        self.shared.levels.len()
    }

    /// The model serving level `index` (0 = most accurate).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn level_model(&self, index: usize) -> &M {
        self.shared.levels[index].engine.model()
    }

    /// The latency model admission consults.
    pub fn latency_model(&self) -> &Arc<dyn LatencyModel> {
        &self.shared.latency
    }

    /// Closes the queue, waits for the drain to finish (every accepted
    /// ticket resolves first), and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.close();
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
        self.report()
    }
}

impl<M: InferenceModel + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.close();
        if let Some(batcher) = self.batcher.take() {
            // Re-raising a batcher panic here could double-panic during an
            // unwind and abort, so the join error is swallowed; use
            // `shutdown()` to surface it. A batcher panic is always a bug —
            // submissions are shape-checked before they reach the thread.
            let _ = batcher.join();
        }
    }
}

/// Moves queued requests into their levels' pending batches (scheduling
/// order), stopping at the first request whose level batch is full —
/// head-of-line order is preserved and a full batch flushes immediately
/// anyway. Reports whether anything moved (so the batcher can wake blocked
/// submitters).
fn top_up(queue: &mut QueueState, pending: &mut [Vec<Pending>], max_batch: usize) -> bool {
    let mut moved = false;
    while let Some(level) = queue.peek_next_level() {
        if pending[level].len() >= max_batch {
            break;
        }
        let request = queue.pop_next().expect("peeked request vanished");
        pending[level].push(request);
        moved = true;
    }
    moved
}

/// Index of the non-empty pending level holding the earliest deadline
/// (flush-urgency order), if any batch is non-empty.
fn most_urgent_level(pending: &[Vec<Pending>]) -> Option<usize> {
    pending
        .iter()
        .enumerate()
        .filter(|(_, batch)| !batch.is_empty())
        .min_by_key(|(_, batch)| batch.iter().map(|p| p.deadline).min())
        .map(|(i, _)| i)
}

/// The batcher thread: gather → flush one level → resolve, until closed
/// and drained.
fn batcher_loop<M: InferenceModel + 'static>(shared: Arc<Shared<M>>) {
    let config = shared.config;
    let mut pending: Vec<Vec<Pending>> = (0..shared.levels.len()).map(|_| Vec::new()).collect();
    // Levels whose first batch has fed the latency model — before that, a
    // prediction-error sample would only measure the prior's cold start.
    let mut warmed = vec![false; shared.levels.len()];
    loop {
        let (level, reason) = {
            let mut queue = shared.queue.lock().expect("serve queue poisoned");
            loop {
                if top_up(&mut queue, &mut pending, config.max_batch) {
                    shared.space.notify_all();
                }
                if let Some(full) = pending.iter().position(|b| b.len() >= config.max_batch) {
                    break (full, FlushReason::MaxBatch);
                }
                let urgent = most_urgent_level(&pending);
                if !queue.open {
                    match urgent {
                        None => return, // closed and fully drained
                        Some(level) => break (level, FlushReason::Shutdown),
                    }
                }
                let Some(urgent) = urgent else {
                    queue = shared.arrived.wait(queue).expect("serve queue poisoned");
                    continue;
                };
                // A partial batch is pending: sleep until whichever flush
                // timer trips first, unless a new arrival wakes us to top
                // up (and possibly hit max_batch) sooner.
                let now = Instant::now();
                let earliest_deadline = pending
                    .iter()
                    .flatten()
                    .map(|p| p.deadline)
                    .min()
                    .expect("some batch is non-empty");
                let deadline_at = earliest_deadline
                    .checked_sub(config.deadline_slack)
                    .unwrap_or(now);
                let idle_at = queue.last_arrival.unwrap_or(now) + config.idle_flush;
                let (flush_at, tentative) = if deadline_at <= idle_at {
                    (deadline_at, FlushReason::Deadline)
                } else {
                    (idle_at, FlushReason::Idle)
                };
                if flush_at <= now {
                    break (urgent, tentative);
                }
                let (guard, _timeout) = shared
                    .arrived
                    .wait_timeout(queue, flush_at - now)
                    .expect("serve queue poisoned");
                queue = guard;
            }
        };
        execute_batch(&shared, &mut pending[level], level, reason, &mut warmed);
    }
}

/// Runs one level's formed batch through its engine's sharded execution
/// core, feeds the measured execution back into the latency model, and
/// resolves every member's response slot.
fn execute_batch<M: InferenceModel>(
    shared: &Shared<M>,
    pending: &mut Vec<Pending>,
    level_index: usize,
    reason: FlushReason,
    warmed: &mut [bool],
) {
    debug_assert!(!pending.is_empty(), "flushed an empty batch");
    let level = &shared.levels[level_index];
    let batch_size = pending.len();
    let started = Instant::now();
    let out = level
        .engine
        .infer_batch_iter(pending.iter().map(|p| &p.image));
    let done = Instant::now();
    let measured = done.duration_since(started);

    // Judge the model on what it would have predicted for this batch, then
    // feed the measurement back (prediction before observation, or the
    // comparison is circular). The first batch per level only warms the
    // model up: scoring it would measure the prior's cold start.
    let predicted_batch = shared.latency.predict(&level.profile) * batch_size as u32;
    let record_error = warmed[level_index];
    warmed[level_index] = true;
    shared.latency.observe(&level.profile, batch_size, measured);

    // Refund the predicted in-flight work this batch was charged with (the
    // queue lock is taken and released before the stats lock below — the
    // batcher never holds both).
    {
        let mut queue = shared.queue.lock().expect("serve queue poisoned");
        let refund: u64 = pending.iter().map(|p| p.cost_us).sum();
        queue.inflight_us = queue.inflight_us.saturating_sub(refund);
    }

    // Build every response (tensor copies included) before touching the
    // stats lock, and resolve the tickets after releasing it: submitters
    // contend on that lock, so it only ever guards cheap arithmetic.
    let classes = out.logits.dims()[1];
    let predictions = out.predictions();
    let mut tokens = out.tokens_per_block.into_iter();
    let resolved: Vec<(Arc<ResponseSlot>, InferResponse, Priority, usize)> = pending
        .drain(..)
        .enumerate()
        .map(|(i, request)| {
            let latency = done.duration_since(request.submitted);
            let response = InferResponse {
                logits: Tensor::from_vec(out.logits.row(i).to_vec(), &[1, classes]),
                prediction: predictions[i],
                tokens_per_block: tokens.next().expect("one token row per image"),
                macs: out.macs[i],
                queued: started.duration_since(request.submitted),
                latency,
                deadline_missed: done > request.deadline,
                batch_size,
                flush: reason,
                class: request.class,
                level: request.level,
                predicted: request.predicted,
            };
            (request.slot, response, request.class, request.level)
        })
        .collect();
    {
        let mut stats = shared.stats.lock().expect("serve stats poisoned");
        stats.record_batch(batch_size, reason, done);
        if record_error {
            stats.record_prediction_error(predicted_batch, measured);
        }
        for (_, response, class, level_idx) in &resolved {
            stats.record_response(
                response.latency,
                response.deadline_missed,
                *class,
                *level_idx,
                level.keep,
            );
        }
    }
    for (slot, response, _, _) in resolved {
        slot.fill(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A placeholder request whose `tag` rides in the deadline offset so
    /// scheduling order is observable.
    fn pending(tag: u64) -> Pending {
        pending_at_level(tag, 0)
    }

    fn pending_at_level(tag: u64, level: usize) -> Pending {
        let now = Instant::now();
        Pending {
            image: Tensor::zeros(&[1]),
            deadline: now + Duration::from_secs(tag),
            submitted: now,
            slot: Arc::new(ResponseSlot::default()),
            class: Priority::Normal,
            level,
            cost_us: 0,
            predicted: Duration::ZERO,
        }
    }

    fn empty_queue() -> QueueState {
        QueueState {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            open: true,
            last_arrival: None,
            window_opened: false,
            inflight_us: 0,
        }
    }

    impl Pending {
        fn tag(&self) -> u64 {
            self.deadline.duration_since(self.submitted).as_secs()
        }
    }

    #[test]
    fn pop_next_prefers_high_priority_fifo_within_class() {
        let mut queue = empty_queue();
        queue.normal.push_back(pending(1));
        queue.normal.push_back(pending(2));
        queue.high.push_back(pending(10));
        queue.high.push_back(pending(11));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_next())
            .map(|p| p.tag())
            .collect();
        assert_eq!(order, vec![10, 11, 1, 2]);
    }

    #[test]
    fn top_up_respects_max_batch_and_reports_movement() {
        let mut queue = empty_queue();
        queue.normal = (0..5).map(pending).collect();
        let mut pending_levels = vec![Vec::new()];
        assert!(top_up(&mut queue, &mut pending_levels, 3));
        assert_eq!(pending_levels[0].len(), 3);
        assert_eq!(queue.len(), 2);
        // Full batch: nothing moves, nothing reported.
        assert!(!top_up(&mut queue, &mut pending_levels, 3));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn top_up_routes_requests_to_their_levels() {
        let mut queue = empty_queue();
        queue.normal.push_back(pending_at_level(1, 0));
        queue.normal.push_back(pending_at_level(2, 1));
        queue.normal.push_back(pending_at_level(3, 0));
        let mut pending_levels = vec![Vec::new(), Vec::new()];
        assert!(top_up(&mut queue, &mut pending_levels, 4));
        assert_eq!(pending_levels[0].len(), 2);
        assert_eq!(pending_levels[1].len(), 1);
        // Head-of-line at a full level stops the drain entirely (the full
        // batch flushes immediately anyway).
        queue.normal.push_back(pending_at_level(4, 1));
        queue.normal.push_back(pending_at_level(5, 0));
        let mut capped = vec![Vec::new(), vec![pending_at_level(9, 1)]];
        assert!(!top_up(&mut queue, &mut capped, 1));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn most_urgent_level_picks_earliest_deadline() {
        let batches = vec![vec![pending(30)], Vec::new(), vec![pending(40), pending(5)]];
        assert_eq!(most_urgent_level(&batches), Some(2));
        assert_eq!(most_urgent_level(&[Vec::new(), Vec::new()]), None);
    }
}
