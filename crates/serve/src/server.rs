//! The [`Server`]: a shared admission front-end feeding [`LaneCount`]
//! batcher/executor lanes, each draining its own bounded per-lane queue
//! into the shared per-level [`Engine`]s, with work stealing between idle
//! lanes.
//!
//! ## Request lifecycle
//!
//! 1. A client calls [`Server::submit`] from any thread. Admission consults
//!    the server's [`LatencyModel`]: the request's predicted completion
//!    (queued work ahead of it on its home lane plus its own service time
//!    at a candidate level) is compared against its deadline.
//!    [`Priority::High`] requests are pinned to the most accurate level and
//!    always admitted; [`Priority::Normal`] requests degrade down the level
//!    ladder until a level predicts an on-time completion, and — under
//!    [`SloPolicy::shed_normal`] — are refused with [`SubmitError::Shed`]
//!    when even the cheapest level predicts a miss. Each service level has
//!    a *home lane* ([`LaneAssignment`]); the admitted request enters that
//!    lane's bounded queue (blocking while full — the backpressure that
//!    makes closed-loop load generation drop-free) and the client gets a
//!    [`Ticket`] back immediately.
//! 2. Each lane thread accumulates its queued requests into per-level
//!    pending batches, high-priority first, and flushes a level when the
//!    first of three conditions trips: its batch is full (`max_batch`),
//!    some member's deadline is within `deadline_slack`, or no new request
//!    has arrived for `idle_flush`. A lane with nothing to do *steals*
//!    ([`StealPolicy`]): it scans the other lanes' queue depths, locks the
//!    deepest backlogged victim, takes up to one `max_batch` of requests
//!    off its front (scheduling order, leaving the victim a batch to form),
//!    and executes them itself — flushes tagged [`FlushReason::Steal`].
//! 3. The flushed batch runs through [`Engine::infer_batch_iter`] — the
//!    engines are shared across lanes (`&self` inference over a scratch
//!    checkout pool sized `workers × lanes`), so served logits are bitwise
//!    identical to `Engine::infer_batch` on the same images no matter which
//!    lane executes. The measured execution feeds back into the latency
//!    model ([`LatencyModel::observe`]) from every lane; admission reads
//!    the one merged model (per-lane observe, merged predict).
//! 4. Each request's [`Ticket`] resolves with its [`InferResponse`];
//!    latency, batch size, flush reason, serving level, serving lane, and
//!    deadline outcome land in the server's [`ServeReport`], broken out per
//!    SLO class and per lane.
//!
//! Shutdown closes every lane queue and *drains* them: every accepted
//! request is still served (flushes tagged [`FlushReason::Shutdown`], idle
//! lanes steal from draining ones), then the lane threads exit. Admission
//! can refuse, but nothing accepted is ever dropped.

use crate::metrics::{LaneMetrics, ServeMetrics};
use crate::report::{FlushReason, ServeReport};
use crate::request::{InferRequest, InferResponse, Priority, ResponseSlot, SubmitError, Ticket};
use heatvit::telemetry::{Gauge, Registry, SpanRecorder};
use heatvit::{CostProfile, Engine, InferenceModel, LatencyModel, MeasuredEwma};
use heatvit_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper clamp applied when [`LaneCount::Auto`] resolves: auto-sizing never
/// spawns more than this many lanes even on very wide machines (an explicit
/// [`LaneCount::Fixed`] can still go higher deliberately).
///
/// Deliberately far below `heatvit::MAX_AUTO_THREADS` (64): an engine
/// worker is a cheap scoped thread that lives for one batch, so
/// over-provisioning costs little, while each lane is a long-lived OS
/// thread owning a bounded queue, two condvars, and a steal-scan loop —
/// idle lanes still wake every [`StealPolicy::poll`] to scan the other
/// lanes' depths, so lane over-provisioning has a standing cost that
/// worker over-provisioning does not. The two caps are pinned together in
/// `crates/serve/tests/telemetry_parity.rs`.
pub const MAX_AUTO_LANES: usize = 8;

/// Lane-count policy of a [`ServeConfig`] — how many batcher/executor
/// threads the server runs.
///
/// Like `heatvit::ThreadCount`, `Auto` is *deferred*: the hardware is
/// queried when the server starts, not when the configuration value is
/// created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneCount {
    /// Resolve to [`std::thread::available_parallelism`] at server start,
    /// clamped to `1..=`[`MAX_AUTO_LANES`] (falling back to 1 when
    /// parallelism cannot be queried).
    Auto,
    /// Exactly this many lanes. Must be positive.
    Fixed(usize),
}

impl LaneCount {
    /// Resolves the policy to a concrete lane count on *this* machine.
    ///
    /// # Panics
    ///
    /// Panics on `Fixed(0)`.
    pub fn resolve(self) -> usize {
        match self {
            LaneCount::Auto => std::thread::available_parallelism()
                .ok()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, MAX_AUTO_LANES),
            LaneCount::Fixed(n) => {
                assert!(n > 0, "lane count must be positive");
                n
            }
        }
    }
}

/// How service levels map onto lanes — which lane is the *home* (admission
/// target) of each level's traffic.
///
/// Per-backend lane assignment is what keeps an int8 level and a float
/// level from serializing on one batcher: with at least as many lanes as
/// levels, every backend batches and executes independently, and work
/// stealing evens out imbalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneAssignment {
    /// Level `i` homes on lane `i % lanes` — with `lanes >= levels` every
    /// backend gets its own lane.
    RoundRobin,
    /// `map[level]` is the home lane of `level`. Must name one lane per
    /// level, each within the resolved lane count.
    Explicit(Vec<usize>),
}

impl LaneAssignment {
    /// The level → home-lane map under `lanes` resolved lanes.
    ///
    /// # Panics
    ///
    /// Panics if an explicit map does not cover every level or names a lane
    /// out of range.
    fn home_map(&self, levels: usize, lanes: usize) -> Vec<usize> {
        match self {
            LaneAssignment::RoundRobin => (0..levels).map(|level| level % lanes).collect(),
            LaneAssignment::Explicit(map) => {
                assert_eq!(
                    map.len(),
                    levels,
                    "lane assignment must map every service level ({} levels, {} entries)",
                    levels,
                    map.len()
                );
                for (level, &lane) in map.iter().enumerate() {
                    assert!(
                        lane < lanes,
                        "level {level} assigned to lane {lane}, but only {lanes} lanes exist"
                    );
                }
                map.clone()
            }
        }
    }
}

/// Work-stealing policy between lanes: what an idle lane does about other
/// lanes' backlogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPolicy {
    /// Enables stealing (on by default; irrelevant under one lane).
    pub enabled: bool,
    /// How often an idle lane re-scans the other lanes' queue depths for a
    /// backlog worth stealing.
    pub poll: Duration,
    /// A victim keeps at least this many queued requests — stealing only
    /// takes the surplus beyond it, so the victim can still form a full
    /// local batch. `None` (the default) keeps one `max_batch`.
    pub keep_local: Option<usize>,
}

impl Default for StealPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            poll: Duration::from_micros(200),
            keep_local: None,
        }
    }
}

/// Predictive-admission policy of a [`Server`] (the SLO-aware layer; off by
/// default so a plain server behaves like a simple bounded queue).
#[derive(Debug, Clone, Copy)]
pub struct SloPolicy {
    /// Enables latency-predictive admission: level selection for Normal
    /// requests and (optionally) shedding.
    pub enabled: bool,
    /// Admission headroom: a level is acceptable when predicted completion
    /// plus `admission_slack` is within the deadline, where the prediction
    /// is the queued work ahead on the level's home lane plus a full
    /// `max_batch` of the level's service time. Size the slack to cover
    /// batching delay plus prediction noise.
    pub admission_slack: Duration,
    /// Refuse Normal requests with [`SubmitError::Shed`] when every level
    /// predicts a miss; with `false` they are admitted at the cheapest
    /// level instead (best effort). High requests are never shed either
    /// way.
    pub shed_normal: bool,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            admission_slack: Duration::from_millis(2),
            shed_normal: true,
        }
    }
}

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a pending batch as soon as it holds this many requests (also
    /// the hard cap on formed-batch size, stolen batches included).
    pub max_batch: usize,
    /// Bound of each lane's submission queue; blocking [`Server::submit`]
    /// waits for space on the request's home lane, [`Server::try_submit`]
    /// returns [`SubmitError::Full`].
    pub queue_capacity: usize,
    /// Flush a non-empty pending batch once no new request has arrived on
    /// the lane for this long (latency floor under trickle traffic).
    pub idle_flush: Duration,
    /// Flush once the earliest deadline in a lane's pending batches is
    /// within this margin of now — the margin should cover one batch's
    /// service time so the response still makes the deadline.
    pub deadline_slack: Duration,
    /// Deadline budget given to [`Server::submit_image`] conveniences.
    pub default_deadline: Duration,
    /// Worker policy of the underlying [`Engine`]s (how each formed batch
    /// is sharded across threads). The engines' warm scratch pools are
    /// sized `workers × lanes` so concurrent lanes never contend on
    /// allocation.
    pub engine: heatvit::EngineConfig,
    /// Predictive-admission policy (disabled by default).
    pub slo: SloPolicy,
    /// How many batcher/executor lanes to run (one by default — the
    /// single-batcher behavior of earlier versions).
    pub lanes: LaneCount,
    /// Which lane each service level's traffic homes on.
    pub assignment: LaneAssignment,
    /// Work stealing between idle and backlogged lanes.
    pub steal: StealPolicy,
    /// Capacity of the bounded request-trace ring ([`SpanRecorder`]): the
    /// newest spans are kept, the oldest evicted (counted as dropped).
    pub trace_capacity: usize,
    /// Telemetry registry the server records into; `None` builds a private
    /// one. Pass a shared registry to land serve and engine metrics in one
    /// exposition.
    pub telemetry: Option<Arc<Registry>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            queue_capacity: 64,
            idle_flush: Duration::from_millis(1),
            deadline_slack: Duration::from_millis(2),
            default_deadline: Duration::from_millis(50),
            engine: heatvit::EngineConfig::default(),
            slo: SloPolicy::default(),
            lanes: LaneCount::Fixed(1),
            assignment: LaneAssignment::RoundRobin,
            steal: StealPolicy::default(),
            trace_capacity: 4096,
            telemetry: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(self.trace_capacity > 0, "trace_capacity must be positive");
        if let LaneCount::Fixed(n) = self.lanes {
            assert!(n > 0, "lane count must be positive");
        }
        assert!(
            !self.steal.enabled || !self.steal.poll.is_zero(),
            "steal poll interval must be positive when stealing is enabled"
        );
    }
}

/// One service level: an engine over one backend, plus the cost profile
/// and accuracy proxy admission reasons about. Engines are shared across
/// lanes — inference takes `&self` over the scratch checkout pool.
struct Level<M: InferenceModel> {
    engine: Engine<M>,
    profile: CostProfile,
    /// Accuracy proxy: the profile's mean token keep fraction vs dense.
    keep: f64,
}

/// One queued request plus its bookkeeping.
struct Pending {
    image: Tensor,
    deadline: Instant,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
    class: Priority,
    /// Service level admission chose (0 = most accurate).
    level: usize,
    /// Home lane whose in-flight ledger was charged (refunded there on
    /// completion even when another lane steals and executes the request).
    lane: usize,
    /// Admission-time predicted service cost of this request alone, µs
    /// (what the home lane's `inflight_us` was charged; refunded on
    /// completion).
    cost_us: u64,
    /// Admission-time predicted total latency (queue wait + service).
    predicted: Duration,
}

/// Everything behind one lane's queue mutex.
struct LaneQueue {
    high: VecDeque<Pending>,
    normal: VecDeque<Pending>,
    /// `false` once shutdown begins: submissions are refused, the lanes
    /// drain what remains.
    open: bool,
    /// Most recent arrival on this lane, driving its idle-flush timer.
    last_arrival: Option<Instant>,
}

impl Default for LaneQueue {
    fn default() -> Self {
        Self {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            open: true,
            last_arrival: None,
        }
    }
}

impl LaneQueue {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Next request in scheduling order: queued high-priority requests
    /// first, FIFO within each class.
    fn pop_next(&mut self) -> Option<Pending> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }

    /// Level of the request [`LaneQueue::pop_next`] would return.
    fn peek_next_level(&self) -> Option<usize> {
        self.high
            .front()
            .or_else(|| self.normal.front())
            .map(|p| p.level)
    }
}

/// One lane's shared state: its bounded queue plus the lock-free signals
/// other threads read — queue depth (steal victim selection, high-water
/// mark) and the predicted in-flight work ledger (admission wait
/// estimates). The signals are telemetry [`Gauge`]s: the exported
/// `heatvit_serve_lane_*` values and the coordination atomics are the
/// same cells, so the metrics cannot drift from the mechanism.
struct LaneShared {
    queue: Mutex<LaneQueue>,
    /// Signaled on every arrival to this lane and at shutdown; the lane
    /// thread waits here.
    arrived: Condvar,
    /// Signaled whenever this lane's queue space frees up (including by a
    /// steal); blocking submitters wait.
    space: Condvar,
    /// Mirror of the queue length, maintained under the queue lock but
    /// readable without it — thieves scan depths lock-free.
    depth: Arc<Gauge>,
    /// Highest queue depth ever observed on this lane.
    depth_hwm: Arc<Gauge>,
    /// Predicted service µs of every request admitted to this lane and not
    /// yet resolved — the queue-wait estimate admission adds to a
    /// candidate's own service time. Charged at admission, refunded when
    /// its batch resolves (wherever it executed), so it covers queued,
    /// pending, and currently executing work.
    inflight_us: Arc<Gauge>,
}

impl LaneShared {
    fn new(metrics: &LaneMetrics) -> Self {
        Self {
            queue: Mutex::new(LaneQueue::default()),
            arrived: Condvar::new(),
            space: Condvar::new(),
            depth: Arc::clone(&metrics.depth),
            depth_hwm: Arc::clone(&metrics.depth_hwm),
            inflight_us: Arc::clone(&metrics.inflight_us),
        }
    }
}

/// State shared between client threads and the lane threads.
struct Shared<M: InferenceModel> {
    /// Service levels, most accurate first; every server has at least one.
    levels: Vec<Level<M>>,
    /// Home lane of each level ([`LaneAssignment`] resolved).
    home: Vec<usize>,
    lanes: Vec<LaneShared>,
    latency: Arc<dyn LatencyModel>,
    config: ServeConfig,
    /// The telemetry surface every observation lands in — reports are
    /// materialized from its registry snapshots; no locked accumulator
    /// sits on the request path.
    metrics: ServeMetrics,
    /// Per level: `true` once its first batch has fed the latency model —
    /// before that, a prediction-error sample would only measure the
    /// prior's cold start. Shared across lanes (any lane can run a level's
    /// first batch).
    warmed: Vec<AtomicBool>,
}

/// A serving front-end over one or more model backends. See the module
/// docs for the request lifecycle.
///
/// The type parameter defaults to [`heatvit::Backend`], the type-erased
/// handle — `Server<Backend>` is the one type a deployment needs no matter
/// which model variants it loads.
///
/// # Examples
///
/// ```
/// use heatvit::Backend;
/// use heatvit_serve::{ServeConfig, Server};
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(3), &mut rng);
/// let server = Server::start(Backend::from(model), ServeConfig::default());
/// let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
/// let ticket = server.submit_image(image).unwrap();
/// let response = ticket.wait();
/// assert_eq!(response.logits.dims(), &[1, 3]);
/// let report = server.shutdown();
/// assert_eq!(report.completed(), 1);
/// ```
pub struct Server<M: InferenceModel + 'static = heatvit::Backend> {
    shared: Arc<Shared<M>>,
    lanes: Vec<JoinHandle<()>>,
}

impl<M: InferenceModel + 'static> Server<M> {
    /// Builds a single-level server (per `config.engine`) with an online
    /// measured-EWMA latency model and spawns the lane threads.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (zero `max_batch`, `queue_capacity`,
    /// or lane count; an explicit lane assignment that does not cover every
    /// level or names a lane out of range) or a lane thread cannot be
    /// spawned.
    pub fn start(model: M, config: ServeConfig) -> Self {
        Self::start_tiered(vec![model], config, Arc::new(MeasuredEwma::default()))
    }

    /// Builds a tiered server: one engine per model in `models`, ordered
    /// **most accurate first** (level 0 is what High-priority traffic and
    /// unloaded Normal traffic get; later levels are the cheaper keep-rate
    /// schedules / backends predictive admission degrades Normal traffic
    /// onto). `latency` predicts per-request cost at admission and is fed
    /// every measured batch execution — pass an online model (e.g.
    /// `heatvit::MeasuredEwma` over an `FpgaCycleModel` or MAC-proxy
    /// prior) so predictions converge to this machine. Every lane feeds the
    /// same model (per-lane observe, merged predict).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty, the models disagree on input shape or
    /// class count, `config` is invalid (see [`Server::start`]), or a lane
    /// thread cannot be spawned.
    pub fn start_tiered(
        models: Vec<M>,
        config: ServeConfig,
        latency: Arc<dyn LatencyModel>,
    ) -> Self {
        config.validate();
        assert!(!models.is_empty(), "a server needs at least one backend");
        let registry = config.telemetry.clone().unwrap_or_default();
        let lane_count = config.lanes.resolve();
        // Engines are shared across lanes; retain one warm scratch per
        // worker per lane so concurrent lanes batching into the same level
        // never contend on allocation.
        let retention = config.engine.threads.resolve() * lane_count;
        let levels: Vec<Level<M>> = models
            .into_iter()
            .map(|model| {
                let profile = model.cost_profile();
                let keep = profile.keep_fraction();
                Level {
                    engine: Engine::builder(model)
                        .config(config.engine)
                        .scratch_retention(retention)
                        .telemetry(Arc::clone(&registry))
                        .build(),
                    profile,
                    keep,
                }
            })
            .collect();
        let reference = levels[0].engine.model().config();
        for level in &levels[1..] {
            let cfg = level.engine.model().config();
            assert!(
                cfg.in_channels == reference.in_channels
                    && cfg.image_size == reference.image_size
                    && cfg.num_classes == reference.num_classes,
                "every service level must share input shape and class count"
            );
        }
        let level_count = levels.len();
        let home = config.assignment.home_map(level_count, lane_count);
        let variants: Vec<String> = levels
            .iter()
            .map(|level| level.engine.model().variant().to_string())
            .collect();
        let metrics = ServeMetrics::new(
            registry,
            config.trace_capacity,
            &variants,
            lane_count,
            config.max_batch,
        );
        let shared = Arc::new(Shared {
            levels,
            home,
            lanes: metrics.lanes.iter().map(LaneShared::new).collect(),
            latency,
            config,
            metrics,
            warmed: (0..level_count).map(|_| AtomicBool::new(false)).collect(),
        });
        let lanes = (0..lane_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("heatvit-serve-lane-{index}"))
                    .spawn(move || lane_loop(shared, index))
                    .expect("failed to spawn lane thread")
            })
            .collect();
        Self { shared, lanes }
    }

    /// Submits a request, blocking while its home lane's bounded queue is
    /// full. Returns the [`Ticket`] that will resolve with the response, or
    /// the request back if the server is closed (or, under
    /// [`SloPolicy::shed_normal`], shed).
    pub fn submit(&self, request: InferRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, true)
    }

    /// Non-blocking [`Server::submit`]: refuses with [`SubmitError::Full`]
    /// instead of waiting for queue space.
    pub fn try_submit(&self, request: InferRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, false)
    }

    /// Submits an image as a normal-priority request due
    /// [`ServeConfig::default_deadline`] from now (blocking while full).
    pub fn submit_image(&self, image: Tensor) -> Result<Ticket, SubmitError> {
        self.submit(InferRequest::with_budget(
            image,
            self.shared.config.default_deadline,
        ))
    }

    /// Picks the service level for an admitted request and its predicted
    /// latency `(level, service µs, total predicted)`; `Err(best)` means
    /// every level predicts a miss (shed candidate, with the cheapest
    /// level's prediction). Reads only the lanes' lock-free in-flight
    /// ledgers — no queue lock is held.
    fn choose_level(
        &self,
        request: &InferRequest,
        now: Instant,
    ) -> Result<(usize, u64, Duration), (u64, Duration)> {
        let shared = &*self.shared;
        let slo = shared.config.slo;
        let max_batch = shared.config.max_batch;
        // Completion estimate per level: queued work ahead on the level's
        // home lane, plus a full `max_batch` of the level's service time —
        // the request may ride a batch that is executed whole before its
        // response resolves, and the batch term is also what separates the
        // levels (per-image differences alone are small next to queue wait,
        // so admission would almost never find the degradation window).
        // The inflight charge stays per-image (the batch service time
        // amortized): the backlog drains one image at a time regardless of
        // batch shape.
        let predict = |index: usize| {
            let level = &shared.levels[index];
            let svc =
                shared
                    .latency
                    .predict_batch(&level.profile, max_batch, level.engine.threads());
            let wait = Duration::from_micros(shared.lanes[shared.home[index]].inflight_us.get());
            let cost = (svc.as_micros() as u64 / max_batch as u64).max(1);
            (cost, wait + svc)
        };
        // High is pinned to the most accurate level no matter the load;
        // disabled admission serves everyone there too.
        if request.priority == Priority::High || !slo.enabled {
            let (cost, predicted) = predict(0);
            return Ok((0, cost, predicted));
        }
        let mut cheapest = (0, Duration::ZERO);
        for index in 0..shared.levels.len() {
            let (cost, predicted) = predict(index);
            if now + predicted + slo.admission_slack <= request.deadline {
                return Ok((index, cost, predicted));
            }
            cheapest = (cost, predicted);
        }
        if slo.shed_normal {
            Err(cheapest)
        } else {
            let (cost, predicted) = cheapest;
            Ok((shared.levels.len() - 1, cost, predicted))
        }
    }

    fn enqueue(&self, request: InferRequest, block: bool) -> Result<Ticket, SubmitError> {
        let shared = &*self.shared;
        // Shape-check before accepting: a malformed image must be refused
        // here, at the submitter, not panic later inside a lane thread
        // (which would strand every in-flight ticket).
        let config = shared.levels[0].engine.model().config();
        let expected = [config.in_channels, config.image_size, config.image_size];
        if request.image.dims() != expected {
            return Err(SubmitError::BadImage { request, expected });
        }
        let now = Instant::now();
        // Level choice reads only the lock-free ledgers, so it runs before
        // any lane lock — it has to: the choice decides *which* lane's
        // queue the request enters.
        let choice = self.choose_level(&request, now);
        let (level, cost_us, predicted) = match choice {
            Ok(choice) => choice,
            Err((_, predicted)) => {
                // A closed server refuses with Closed, not Shed — check the
                // (arbitrary) first lane's flag before reporting the shed.
                let open = shared.lanes[0]
                    .queue
                    .lock()
                    .expect("lane queue poisoned")
                    .open;
                if !open {
                    return Err(SubmitError::Closed(request));
                }
                shared.metrics.record_shed(request.priority, predicted);
                return Err(SubmitError::Shed { request, predicted });
            }
        };
        let lane_index = shared.home[level];
        let lane = &shared.lanes[lane_index];
        let mut queue = lane.queue.lock().expect("lane queue poisoned");
        while queue.open && queue.len() >= shared.config.queue_capacity {
            if !block {
                return Err(SubmitError::Full(request));
            }
            queue = lane.space.wait(queue).expect("lane queue poisoned");
        }
        if !queue.open {
            return Err(SubmitError::Closed(request));
        }
        // Open the serving window before the request becomes visible to a
        // lane — otherwise a fast lane could record the first batch
        // completion as the window start, skewing throughput. Lock-free:
        // at most one submitter's CAS lands.
        shared.metrics.record_first_submit(now);
        shared.metrics.record_admission(level);
        let slot = Arc::new(ResponseSlot::default());
        let pending = Pending {
            image: request.image,
            deadline: request.deadline,
            submitted: now,
            slot: Arc::clone(&slot),
            class: request.priority,
            level,
            lane: lane_index,
            cost_us,
            predicted,
        };
        match request.priority {
            Priority::High => queue.high.push_back(pending),
            Priority::Normal => queue.normal.push_back(pending),
        }
        lane.inflight_us.add(cost_us);
        let depth = queue.len() as u64;
        lane.depth.set(depth);
        lane.depth_hwm.set_max(depth);
        queue.last_arrival = Some(now);
        drop(queue);
        lane.arrived.notify_all();
        Ok(Ticket { slot })
    }

    /// Stops accepting new requests; the lanes keep draining in the
    /// background. Safe to call more than once.
    pub fn close(&self) {
        for lane in &self.shared.lanes {
            let mut queue = lane.queue.lock().expect("lane queue poisoned");
            queue.open = false;
            drop(queue);
            lane.arrived.notify_all();
            lane.space.notify_all();
        }
    }

    /// Snapshot of everything served so far (callable while running) —
    /// materialized from the telemetry registry via
    /// [`ServeReport::from_snapshot`].
    pub fn report(&self) -> ServeReport {
        ServeReport::from_snapshot(&self.shared.metrics.registry().snapshot())
    }

    /// The telemetry registry every serve (and engine) observation lands
    /// in. Snapshot or expose it directly; [`Server::report`] is a view
    /// over the same data.
    pub fn telemetry(&self) -> &Arc<Registry> {
        self.shared.metrics.registry()
    }

    /// The bounded per-request/per-batch trace ring (capacity
    /// [`ServeConfig::trace_capacity`]).
    pub fn recorder(&self) -> &Arc<SpanRecorder> {
        self.shared.metrics.recorder()
    }

    /// The most accurate (level 0) model being served.
    pub fn model(&self) -> &M {
        self.shared.levels[0].engine.model()
    }

    /// Number of service levels.
    pub fn level_count(&self) -> usize {
        self.shared.levels.len()
    }

    /// Number of batcher/executor lanes ([`LaneCount::Auto`] already
    /// resolved).
    pub fn lane_count(&self) -> usize {
        self.shared.lanes.len()
    }

    /// Home lane of service level `index` (per [`LaneAssignment`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn home_lane(&self, index: usize) -> usize {
        self.shared.home[index]
    }

    /// The model serving level `index` (0 = most accurate).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn level_model(&self, index: usize) -> &M {
        self.shared.levels[index].engine.model()
    }

    /// The latency model admission consults.
    pub fn latency_model(&self) -> &Arc<dyn LatencyModel> {
        &self.shared.latency
    }

    /// Closes the queues, waits for the drain to finish (every accepted
    /// ticket resolves first), and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.close();
        for lane in self.lanes.drain(..) {
            lane.join().expect("lane thread panicked");
        }
        self.report()
    }
}

impl<M: InferenceModel + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.close();
        for lane in self.lanes.drain(..) {
            // Re-raising a lane panic here could double-panic during an
            // unwind and abort, so the join error is swallowed; use
            // `shutdown()` to surface it. A lane panic is always a bug —
            // submissions are shape-checked before they reach the thread.
            let _ = lane.join();
        }
    }
}

/// Moves queued requests into their levels' pending batches (scheduling
/// order), stopping at the first request whose level batch is full —
/// head-of-line order is preserved and a full batch flushes immediately
/// anyway. Reports whether anything moved (so the lane can wake blocked
/// submitters).
fn top_up(queue: &mut LaneQueue, pending: &mut [Vec<Pending>], max_batch: usize) -> bool {
    let mut moved = false;
    while let Some(level) = queue.peek_next_level() {
        if pending[level].len() >= max_batch {
            break;
        }
        let request = queue.pop_next().expect("peeked request vanished");
        pending[level].push(request);
        moved = true;
    }
    moved
}

/// Index of the non-empty pending level holding the earliest deadline
/// (flush-urgency order), if any batch is non-empty.
fn most_urgent_level(pending: &[Vec<Pending>]) -> Option<usize> {
    pending
        .iter()
        .enumerate()
        .filter(|(_, batch)| !batch.is_empty())
        .min_by_key(|(_, batch)| batch.iter().map(|p| p.deadline).min())
        .map(|(i, _)| i)
}

/// What a lane decided to do after one pass over its queue and pending
/// batches.
enum Step {
    /// Flush this pending level for this reason.
    Flush(usize, FlushReason),
    /// Nothing local to do, still open: try stealing, then sleep.
    Idle,
    /// Closed and locally drained: try one last steal sweep, then exit.
    Drained,
}

/// Steals a batch from the deepest backlogged other lane, if any victim's
/// queue depth exceeds the keep-local threshold. Takes a contiguous run of
/// same-level requests off the victim's front in scheduling order (high
/// first, FIFO within class — exactly what the victim would have batched
/// next), capped at one `max_batch`. Holds only the victim's queue lock —
/// never two lane locks at once, so lanes cannot deadlock stealing from
/// each other.
fn try_steal<M: InferenceModel>(shared: &Shared<M>, thief: usize) -> Option<(usize, Vec<Pending>)> {
    let config = &shared.config;
    if !config.steal.enabled || shared.lanes.len() < 2 {
        return None;
    }
    let keep = config.steal.keep_local.unwrap_or(config.max_batch);
    let mut best: Option<(usize, usize)> = None;
    for (index, lane) in shared.lanes.iter().enumerate() {
        if index == thief {
            continue;
        }
        let depth = lane.depth.get() as usize;
        if depth > keep && best.is_none_or(|(_, d)| depth > d) {
            best = Some((index, depth));
        }
    }
    let (victim_index, _) = best?;
    let victim = &shared.lanes[victim_index];
    let mut queue = victim.queue.lock().expect("lane queue poisoned");
    // Re-check under the lock: the depth scan was advisory.
    let surplus = queue.len().saturating_sub(keep);
    let take = surplus.min(config.max_batch);
    if take == 0 {
        return None;
    }
    let level = queue.peek_next_level()?;
    let mut stolen = Vec::with_capacity(take);
    while stolen.len() < take && queue.peek_next_level() == Some(level) {
        stolen.push(queue.pop_next().expect("peeked request vanished"));
    }
    victim.depth.set(queue.len() as u64);
    drop(queue);
    victim.space.notify_all();
    Some((level, stolen))
}

/// One lane thread: gather → flush one level → resolve, stealing from
/// backlogged lanes whenever locally idle, until closed and drained.
fn lane_loop<M: InferenceModel + 'static>(shared: Arc<Shared<M>>, lane_index: usize) {
    let config = &shared.config;
    let lane = &shared.lanes[lane_index];
    let stealing = config.steal.enabled && shared.lanes.len() > 1;
    let mut pending: Vec<Vec<Pending>> = (0..shared.levels.len()).map(|_| Vec::new()).collect();
    loop {
        let step = {
            let mut queue = lane.queue.lock().expect("lane queue poisoned");
            loop {
                if top_up(&mut queue, &mut pending, config.max_batch) {
                    lane.depth.set(queue.len() as u64);
                    lane.space.notify_all();
                }
                if let Some(full) = pending.iter().position(|b| b.len() >= config.max_batch) {
                    break Step::Flush(full, FlushReason::MaxBatch);
                }
                let urgent = most_urgent_level(&pending);
                if !queue.open {
                    break match urgent {
                        Some(level) => Step::Flush(level, FlushReason::Shutdown),
                        None => Step::Drained,
                    };
                }
                let Some(urgent) = urgent else {
                    break Step::Idle;
                };
                // A partial batch is pending: sleep until whichever flush
                // timer trips first, unless a new arrival wakes us to top
                // up (and possibly hit max_batch) sooner.
                let now = Instant::now();
                let earliest_deadline = pending
                    .iter()
                    .flatten()
                    .map(|p| p.deadline)
                    .min()
                    .expect("some batch is non-empty");
                let deadline_at = earliest_deadline
                    .checked_sub(config.deadline_slack)
                    .unwrap_or(now);
                let idle_at = queue.last_arrival.unwrap_or(now) + config.idle_flush;
                let (flush_at, tentative) = if deadline_at <= idle_at {
                    (deadline_at, FlushReason::Deadline)
                } else {
                    (idle_at, FlushReason::Idle)
                };
                if flush_at <= now {
                    break Step::Flush(urgent, tentative);
                }
                let (guard, _timeout) = lane
                    .arrived
                    .wait_timeout(queue, flush_at - now)
                    .expect("lane queue poisoned");
                queue = guard;
            }
        };
        match step {
            Step::Flush(level, reason) => {
                execute_batch(&shared, &mut pending[level], level, reason, lane_index);
            }
            Step::Idle => {
                if let Some((level, mut stolen)) = try_steal(&shared, lane_index) {
                    execute_batch(&shared, &mut stolen, level, FlushReason::Steal, lane_index);
                    continue;
                }
                // Nothing to steal either: sleep until an arrival — or for
                // one steal-poll interval, so another lane's backlog is
                // noticed promptly. Re-check emptiness under the lock
                // first; an arrival between the steal attempt and here must
                // not be slept through.
                let queue = lane.queue.lock().expect("lane queue poisoned");
                if queue.len() == 0 && queue.open {
                    if stealing {
                        drop(
                            lane.arrived
                                .wait_timeout(queue, config.steal.poll)
                                .expect("lane queue poisoned"),
                        );
                    } else {
                        drop(lane.arrived.wait(queue).expect("lane queue poisoned"));
                    }
                }
            }
            Step::Drained => {
                // Help drain the other lanes' backlogs before exiting.
                if let Some((level, mut stolen)) = try_steal(&shared, lane_index) {
                    execute_batch(&shared, &mut stolen, level, FlushReason::Steal, lane_index);
                    continue;
                }
                return;
            }
        }
    }
}

/// Runs one formed batch through its level's engine (shared across lanes —
/// the sharded execution core), feeds the measured execution back into the
/// latency model, refunds the in-flight ledgers, and resolves every
/// member's response slot.
fn execute_batch<M: InferenceModel>(
    shared: &Shared<M>,
    pending: &mut Vec<Pending>,
    level_index: usize,
    reason: FlushReason,
    lane_index: usize,
) {
    debug_assert!(!pending.is_empty(), "flushed an empty batch");
    let level = &shared.levels[level_index];
    let batch_size = pending.len();
    let started = Instant::now();
    let out = level
        .engine
        .infer_batch_iter(pending.iter().map(|p| &p.image));
    let done = Instant::now();
    let measured = done.duration_since(started);

    // Judge the model on what it would have predicted for this batch, then
    // feed the measurement back (prediction before observation, or the
    // comparison is circular). The first batch per level only warms the
    // model up: scoring it would measure the prior's cold start.
    let predicted_batch =
        shared
            .latency
            .predict_batch(&level.profile, batch_size, level.engine.threads());
    let record_error = shared.warmed[level_index].swap(true, Ordering::Relaxed);
    shared.latency.observe(&level.profile, batch_size, measured);

    // Refund the predicted in-flight work this batch was charged with —
    // always against each request's *home* lane's ledger, which is the one
    // admission charged, even when this batch was stolen. Lock-free: the
    // ledgers are atomics.
    for request in pending.iter() {
        shared.lanes[request.lane]
            .inflight_us
            .sub_saturating(request.cost_us);
    }

    // Build every response (tensor copies included) before recording, and
    // resolve the tickets after: ticket waiters should never observe a
    // response whose telemetry has not landed yet.
    let classes = out.logits.dims()[1];
    let predictions = out.predictions();
    let mut tokens = out.tokens_per_block.into_iter();
    let resolved: Vec<(Arc<ResponseSlot>, InferResponse, Priority, usize)> = pending
        .drain(..)
        .enumerate()
        .map(|(i, request)| {
            let latency = done.duration_since(request.submitted);
            let response = InferResponse {
                logits: Tensor::from_vec(out.logits.row(i).to_vec(), &[1, classes]),
                prediction: predictions[i],
                tokens_per_block: tokens.next().expect("one token row per image"),
                macs: out.macs[i],
                queued: started.duration_since(request.submitted),
                latency,
                deadline_missed: done > request.deadline,
                batch_size,
                flush: reason,
                class: request.class,
                level: request.level,
                lane: lane_index,
                predicted: request.predicted,
            };
            (request.slot, response, request.class, request.level)
        })
        .collect();
    shared.metrics.record_batch(
        batch_size,
        reason,
        done,
        lane_index,
        level_index,
        predicted_batch,
        measured,
        record_error,
    );
    for (_, response, class, level_idx) in &resolved {
        shared.metrics.record_response(
            response.latency,
            response.queued,
            response.deadline_missed,
            *class,
            *level_idx,
            level.keep,
            lane_index,
            batch_size,
        );
    }
    for (slot, response, _, _) in resolved {
        slot.fill(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A placeholder request whose `tag` rides in the deadline offset so
    /// scheduling order is observable.
    fn pending(tag: u64) -> Pending {
        pending_at_level(tag, 0)
    }

    fn pending_at_level(tag: u64, level: usize) -> Pending {
        let now = Instant::now();
        Pending {
            image: Tensor::zeros(&[1]),
            deadline: now + Duration::from_secs(tag),
            submitted: now,
            slot: Arc::new(ResponseSlot::default()),
            class: Priority::Normal,
            level,
            lane: 0,
            cost_us: 0,
            predicted: Duration::ZERO,
        }
    }

    fn empty_queue() -> LaneQueue {
        LaneQueue::default()
    }

    impl Pending {
        fn tag(&self) -> u64 {
            self.deadline.duration_since(self.submitted).as_secs()
        }
    }

    #[test]
    fn pop_next_prefers_high_priority_fifo_within_class() {
        let mut queue = empty_queue();
        queue.normal.push_back(pending(1));
        queue.normal.push_back(pending(2));
        queue.high.push_back(pending(10));
        queue.high.push_back(pending(11));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_next())
            .map(|p| p.tag())
            .collect();
        assert_eq!(order, vec![10, 11, 1, 2]);
    }

    #[test]
    fn top_up_respects_max_batch_and_reports_movement() {
        let mut queue = empty_queue();
        queue.normal = (0..5).map(pending).collect();
        let mut pending_levels = vec![Vec::new()];
        assert!(top_up(&mut queue, &mut pending_levels, 3));
        assert_eq!(pending_levels[0].len(), 3);
        assert_eq!(queue.len(), 2);
        // Full batch: nothing moves, nothing reported.
        assert!(!top_up(&mut queue, &mut pending_levels, 3));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn top_up_routes_requests_to_their_levels() {
        let mut queue = empty_queue();
        queue.normal.push_back(pending_at_level(1, 0));
        queue.normal.push_back(pending_at_level(2, 1));
        queue.normal.push_back(pending_at_level(3, 0));
        let mut pending_levels = vec![Vec::new(), Vec::new()];
        assert!(top_up(&mut queue, &mut pending_levels, 4));
        assert_eq!(pending_levels[0].len(), 2);
        assert_eq!(pending_levels[1].len(), 1);
        // Head-of-line at a full level stops the drain entirely (the full
        // batch flushes immediately anyway).
        queue.normal.push_back(pending_at_level(4, 1));
        queue.normal.push_back(pending_at_level(5, 0));
        let mut capped = vec![Vec::new(), vec![pending_at_level(9, 1)]];
        assert!(!top_up(&mut queue, &mut capped, 1));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn most_urgent_level_picks_earliest_deadline() {
        let batches = vec![vec![pending(30)], Vec::new(), vec![pending(40), pending(5)]];
        assert_eq!(most_urgent_level(&batches), Some(2));
        assert_eq!(most_urgent_level(&[Vec::new(), Vec::new()]), None);
    }

    #[test]
    fn fixed_lane_count_resolves_to_itself() {
        assert_eq!(LaneCount::Fixed(3).resolve(), 3);
        assert_eq!(LaneCount::Fixed(1).resolve(), 1);
        // Auto resolves somewhere in the clamp range on any machine.
        let auto = LaneCount::Auto.resolve();
        assert!((1..=MAX_AUTO_LANES).contains(&auto));
    }

    #[test]
    #[should_panic(expected = "lane count must be positive")]
    fn zero_fixed_lanes_panics_at_resolution() {
        LaneCount::Fixed(0).resolve();
    }

    #[test]
    fn round_robin_homes_wrap_over_lanes() {
        assert_eq!(LaneAssignment::RoundRobin.home_map(3, 2), vec![0, 1, 0]);
        assert_eq!(LaneAssignment::RoundRobin.home_map(2, 4), vec![0, 1]);
        assert_eq!(LaneAssignment::RoundRobin.home_map(3, 1), vec![0, 0, 0]);
        assert_eq!(
            LaneAssignment::Explicit(vec![1, 1, 0]).home_map(3, 2),
            vec![1, 1, 0]
        );
    }

    #[test]
    #[should_panic(expected = "must map every service level")]
    fn explicit_assignment_must_cover_every_level() {
        LaneAssignment::Explicit(vec![0]).home_map(2, 2);
    }

    #[test]
    #[should_panic(expected = "only 2 lanes exist")]
    fn explicit_assignment_rejects_out_of_range_lanes() {
        LaneAssignment::Explicit(vec![0, 2]).home_map(2, 2);
    }

    #[test]
    fn steal_policy_defaults_keep_one_batch_local() {
        let policy = StealPolicy::default();
        assert!(policy.enabled);
        assert!(policy.keep_local.is_none());
        assert!(!policy.poll.is_zero());
    }
}
