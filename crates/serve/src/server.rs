//! The [`Server`]: a bounded request queue, a dynamic batcher thread, and
//! one shared [`Engine`] whose sharded execution core runs every formed
//! batch.
//!
//! ## Request lifecycle
//!
//! 1. A client calls [`Server::submit`] from any thread. The request enters
//!    the bounded queue (blocking while full — the backpressure that makes
//!    closed-loop load generation drop-free) and the client gets a
//!    [`Ticket`] back immediately.
//! 2. The batcher thread accumulates queued requests into a pending batch,
//!    high-priority first, and flushes when the first of three conditions
//!    trips: the batch is full (`max_batch`), some member's deadline is
//!    within `deadline_slack`, or no new request has arrived for
//!    `idle_flush`.
//! 3. The flushed batch runs through [`Engine::infer_batch_iter`] — the
//!    same sharded, scratch-pooled execution core the offline benchmarks
//!    use, so served logits are bitwise identical to `Engine::infer_batch`
//!    on the same images.
//! 4. Each request's [`Ticket`] resolves with its [`InferResponse`];
//!    latency, batch size, flush reason, and deadline outcome land in the
//!    server's [`ServeReport`].
//!
//! Shutdown closes the queue and *drains* it: every accepted request is
//! still served (flushes tagged [`FlushReason::Shutdown`]), then the
//! batcher exits. Nothing is ever dropped.

use crate::report::{FlushReason, ServeReport, Stats};
use crate::request::{InferRequest, InferResponse, Priority, ResponseSlot, SubmitError, Ticket};
use heatvit::{Engine, InferenceModel};
use heatvit_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Flush a pending batch as soon as it holds this many requests (also
    /// the hard cap on formed-batch size).
    pub max_batch: usize,
    /// Bound of the submission queue; blocking [`Server::submit`] waits for
    /// space, [`Server::try_submit`] returns [`SubmitError::Full`].
    pub queue_capacity: usize,
    /// Flush a non-empty pending batch once no new request has arrived for
    /// this long (latency floor under trickle traffic).
    pub idle_flush: Duration,
    /// Flush once the earliest deadline in the pending batch is within this
    /// margin of now — the margin should cover one batch's service time so
    /// the response still makes the deadline.
    pub deadline_slack: Duration,
    /// Deadline budget given to [`Server::submit_image`] conveniences.
    pub default_deadline: Duration,
    /// Worker policy of the underlying [`Engine`] (how each formed batch is
    /// sharded across threads).
    pub engine: heatvit::EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            queue_capacity: 64,
            idle_flush: Duration::from_millis(1),
            deadline_slack: Duration::from_millis(2),
            default_deadline: Duration::from_millis(50),
            engine: heatvit::EngineConfig::default(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
    }
}

/// One queued request plus its bookkeeping.
struct Pending {
    image: Tensor,
    deadline: Instant,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
}

/// Everything behind the queue mutex.
struct QueueState {
    high: VecDeque<Pending>,
    normal: VecDeque<Pending>,
    /// `false` once shutdown begins: submissions are refused, the batcher
    /// drains what remains.
    open: bool,
    /// Most recent arrival, driving the idle-flush timer.
    last_arrival: Option<Instant>,
    /// `true` once the first submission has opened the stats window, so
    /// the per-submit hot path never touches the stats lock again.
    window_opened: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Next request in scheduling order: queued high-priority requests
    /// first, FIFO within each class.
    fn pop_next(&mut self) -> Option<Pending> {
        self.high.pop_front().or_else(|| self.normal.pop_front())
    }
}

/// State shared between client threads and the batcher thread.
struct Shared<M: InferenceModel> {
    engine: Engine<M>,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    /// Signaled on every arrival and at shutdown; the batcher waits here.
    arrived: Condvar,
    /// Signaled whenever queue space frees up; blocking submitters wait.
    space: Condvar,
    stats: Mutex<Stats>,
}

/// A serving front-end over one model backend. See the module docs for the
/// request lifecycle.
///
/// The type parameter defaults to [`heatvit::Backend`], the type-erased
/// handle — `Server<Backend>` is the one type a deployment needs no matter
/// which model variant it loads.
///
/// # Examples
///
/// ```
/// use heatvit::Backend;
/// use heatvit_serve::{ServeConfig, Server};
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(3), &mut rng);
/// let server = Server::start(Backend::from(model), ServeConfig::default());
/// let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
/// let ticket = server.submit_image(image).unwrap();
/// let response = ticket.wait();
/// assert_eq!(response.logits.dims(), &[1, 3]);
/// let report = server.shutdown();
/// assert_eq!(report.completed, 1);
/// ```
pub struct Server<M: InferenceModel + 'static = heatvit::Backend> {
    shared: Arc<Shared<M>>,
    batcher: Option<JoinHandle<()>>,
}

impl<M: InferenceModel + 'static> Server<M> {
    /// Builds the engine (per `config.engine`) and spawns the batcher
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (zero `max_batch` or
    /// `queue_capacity`) or the batcher thread cannot be spawned.
    pub fn start(model: M, config: ServeConfig) -> Self {
        config.validate();
        let engine = Engine::builder(model).config(config.engine).build();
        let shared = Arc::new(Shared {
            engine,
            config,
            queue: Mutex::new(QueueState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                open: true,
                last_arrival: None,
                window_opened: false,
            }),
            arrived: Condvar::new(),
            space: Condvar::new(),
            stats: Mutex::new(Stats::default()),
        });
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("heatvit-serve-batcher".into())
            .spawn(move || batcher_loop(batcher_shared))
            .expect("failed to spawn batcher thread");
        Self {
            shared,
            batcher: Some(batcher),
        }
    }

    /// Submits a request, blocking while the bounded queue is full.
    /// Returns the [`Ticket`] that will resolve with the response, or the
    /// request back if the server is closed.
    pub fn submit(&self, request: InferRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, true)
    }

    /// Non-blocking [`Server::submit`]: refuses with [`SubmitError::Full`]
    /// instead of waiting for queue space.
    pub fn try_submit(&self, request: InferRequest) -> Result<Ticket, SubmitError> {
        self.enqueue(request, false)
    }

    /// Submits an image as a normal-priority request due
    /// [`ServeConfig::default_deadline`] from now (blocking while full).
    pub fn submit_image(&self, image: Tensor) -> Result<Ticket, SubmitError> {
        self.submit(InferRequest::with_budget(
            image,
            self.shared.config.default_deadline,
        ))
    }

    fn enqueue(&self, request: InferRequest, block: bool) -> Result<Ticket, SubmitError> {
        let shared = &*self.shared;
        // Shape-check before accepting: a malformed image must be refused
        // here, at the submitter, not panic later inside the batcher thread
        // (which would strand every in-flight ticket).
        let config = shared.engine.model().config();
        let expected = [config.in_channels, config.image_size, config.image_size];
        if request.image.dims() != expected {
            return Err(SubmitError::BadImage { request, expected });
        }
        let mut queue = shared.queue.lock().expect("serve queue poisoned");
        while queue.open && queue.len() >= shared.config.queue_capacity {
            if !block {
                return Err(SubmitError::Full(request));
            }
            queue = shared.space.wait(queue).expect("serve queue poisoned");
        }
        if !queue.open {
            return Err(SubmitError::Closed(request));
        }
        let now = Instant::now();
        let slot = Arc::new(ResponseSlot::default());
        let pending = Pending {
            image: request.image,
            deadline: request.deadline,
            submitted: now,
            slot: Arc::clone(&slot),
        };
        match request.priority {
            Priority::High => queue.high.push_back(pending),
            Priority::Normal => queue.normal.push_back(pending),
        }
        queue.last_arrival = Some(now);
        // Open the serving window before the request becomes visible to the
        // batcher (queue lock still held; the batcher never takes the stats
        // lock while holding the queue lock, so the queue→stats order here
        // cannot deadlock) — otherwise a fast batcher could record the
        // first batch completion as the window start, skewing throughput.
        // The flag keeps this off the steady-state submit path: the stats
        // lock is taken exactly once per server lifetime.
        if !queue.window_opened {
            queue.window_opened = true;
            shared
                .stats
                .lock()
                .expect("serve stats poisoned")
                .record_first_submit(now);
        }
        drop(queue);
        shared.arrived.notify_all();
        Ok(Ticket { slot })
    }

    /// Stops accepting new requests; the batcher keeps draining in the
    /// background. Safe to call more than once.
    pub fn close(&self) {
        let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
        queue.open = false;
        drop(queue);
        self.shared.arrived.notify_all();
        self.shared.space.notify_all();
    }

    /// Snapshot of everything served so far (callable while running).
    pub fn report(&self) -> ServeReport {
        self.shared
            .stats
            .lock()
            .expect("serve stats poisoned")
            .report()
    }

    /// The model being served.
    pub fn model(&self) -> &M {
        self.shared.engine.model()
    }

    /// Closes the queue, waits for the drain to finish (every accepted
    /// ticket resolves first), and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.close();
        if let Some(batcher) = self.batcher.take() {
            batcher.join().expect("batcher thread panicked");
        }
        self.report()
    }
}

impl<M: InferenceModel + 'static> Drop for Server<M> {
    fn drop(&mut self) {
        self.close();
        if let Some(batcher) = self.batcher.take() {
            // Re-raising a batcher panic here could double-panic during an
            // unwind and abort, so the join error is swallowed; use
            // `shutdown()` to surface it. A batcher panic is always a bug —
            // submissions are shape-checked before they reach the thread.
            let _ = batcher.join();
        }
    }
}

/// Moves queued requests into `pending` (scheduling order) up to
/// `max_batch`, waking blocked submitters for every slot freed.
fn top_up(queue: &mut QueueState, pending: &mut Vec<Pending>, max_batch: usize) -> bool {
    let mut moved = false;
    while pending.len() < max_batch {
        match queue.pop_next() {
            Some(request) => {
                pending.push(request);
                moved = true;
            }
            None => break,
        }
    }
    moved
}

/// The batcher thread: gather → flush → resolve, until closed and drained.
fn batcher_loop<M: InferenceModel + 'static>(shared: Arc<Shared<M>>) {
    let config = shared.config;
    let mut pending: Vec<Pending> = Vec::new();
    loop {
        let reason = {
            let mut queue = shared.queue.lock().expect("serve queue poisoned");
            loop {
                if top_up(&mut queue, &mut pending, config.max_batch) {
                    shared.space.notify_all();
                }
                if pending.len() >= config.max_batch {
                    break FlushReason::MaxBatch;
                }
                if !queue.open {
                    if pending.is_empty() {
                        return; // closed and fully drained
                    }
                    break FlushReason::Shutdown;
                }
                if pending.is_empty() {
                    queue = shared.arrived.wait(queue).expect("serve queue poisoned");
                    continue;
                }
                // A partial batch is pending: sleep until whichever flush
                // timer trips first, unless a new arrival wakes us to top
                // up (and possibly hit max_batch) sooner.
                let now = Instant::now();
                let earliest_deadline = pending
                    .iter()
                    .map(|p| p.deadline)
                    .min()
                    .expect("pending is non-empty");
                let deadline_at = earliest_deadline
                    .checked_sub(config.deadline_slack)
                    .unwrap_or(now);
                let idle_at = queue.last_arrival.unwrap_or(now) + config.idle_flush;
                let (flush_at, tentative) = if deadline_at <= idle_at {
                    (deadline_at, FlushReason::Deadline)
                } else {
                    (idle_at, FlushReason::Idle)
                };
                if flush_at <= now {
                    break tentative;
                }
                let (guard, _timeout) = shared
                    .arrived
                    .wait_timeout(queue, flush_at - now)
                    .expect("serve queue poisoned");
                queue = guard;
            }
        };
        execute_batch(&shared, &mut pending, reason);
    }
}

/// Runs one formed batch through the engine's sharded execution core and
/// resolves every member's response slot.
fn execute_batch<M: InferenceModel>(
    shared: &Shared<M>,
    pending: &mut Vec<Pending>,
    reason: FlushReason,
) {
    debug_assert!(!pending.is_empty(), "flushed an empty batch");
    let batch_size = pending.len();
    let started = Instant::now();
    let out = shared
        .engine
        .infer_batch_iter(pending.iter().map(|p| &p.image));
    let done = Instant::now();

    // Build every response (tensor copies included) before touching the
    // stats lock, and resolve the tickets after releasing it: submitters
    // contend on that lock, so it only ever guards cheap arithmetic.
    let classes = out.logits.dims()[1];
    let predictions = out.predictions();
    let mut tokens = out.tokens_per_block.into_iter();
    let resolved: Vec<(Arc<ResponseSlot>, InferResponse)> = pending
        .drain(..)
        .enumerate()
        .map(|(i, request)| {
            let latency = done.duration_since(request.submitted);
            let response = InferResponse {
                logits: Tensor::from_vec(out.logits.row(i).to_vec(), &[1, classes]),
                prediction: predictions[i],
                tokens_per_block: tokens.next().expect("one token row per image"),
                macs: out.macs[i],
                queued: started.duration_since(request.submitted),
                latency,
                deadline_missed: done > request.deadline,
                batch_size,
                flush: reason,
            };
            (request.slot, response)
        })
        .collect();
    {
        let mut stats = shared.stats.lock().expect("serve stats poisoned");
        stats.record_batch(batch_size, reason, done);
        for (_, response) in &resolved {
            stats.record_response(response.latency, response.deadline_missed);
        }
    }
    for (slot, response) in resolved {
        slot.fill(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A placeholder request whose `tag` rides in the deadline offset so
    /// scheduling order is observable.
    fn pending(tag: u64) -> Pending {
        let now = Instant::now();
        Pending {
            image: Tensor::zeros(&[1]),
            deadline: now + Duration::from_secs(tag),
            submitted: now,
            slot: Arc::new(ResponseSlot::default()),
        }
    }

    impl Pending {
        fn tag(&self) -> u64 {
            self.deadline.duration_since(self.submitted).as_secs()
        }
    }

    #[test]
    fn pop_next_prefers_high_priority_fifo_within_class() {
        let mut queue = QueueState {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            open: true,
            last_arrival: None,
            window_opened: false,
        };
        queue.normal.push_back(pending(1));
        queue.normal.push_back(pending(2));
        queue.high.push_back(pending(10));
        queue.high.push_back(pending(11));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop_next())
            .map(|p| p.tag())
            .collect();
        assert_eq!(order, vec![10, 11, 1, 2]);
    }

    #[test]
    fn top_up_respects_max_batch_and_reports_movement() {
        let mut queue = QueueState {
            high: VecDeque::new(),
            normal: (0..5).map(pending).collect(),
            open: true,
            last_arrival: None,
            window_opened: false,
        };
        let mut batch = Vec::new();
        assert!(top_up(&mut queue, &mut batch, 3));
        assert_eq!(batch.len(), 3);
        assert_eq!(queue.len(), 2);
        // Full batch: nothing moves, nothing reported.
        assert!(!top_up(&mut queue, &mut batch, 3));
        assert_eq!(queue.len(), 2);
    }
}
