//! SLO-aware predictive admission: High pinned to the best level and never
//! shed, Normal degrading down the level ladder and shedding only as a
//! last resort, and the per-class report rows that prove it.
//!
//! A fixed (variant-keyed) latency model makes admission deterministic:
//! the tests exercise the decision logic, not wall-clock behavior.

use heatvit::{CostProfile, LatencyModel};
use heatvit_selector::{PrunedViT, TokenSelector};
use heatvit_serve::{InferRequest, Priority, ServeConfig, Server, SloPolicy, SubmitError};
use heatvit_tensor::Tensor;
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A latency model with a fixed prediction per variant name — no learning,
/// no noise, so admission decisions are exactly reproducible.
#[derive(Debug)]
struct FixedLatency {
    per_variant: HashMap<&'static str, Duration>,
}

impl LatencyModel for FixedLatency {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn predict(&self, profile: &CostProfile) -> Duration {
        *self
            .per_variant
            .get(profile.variant.as_str())
            .expect("prediction for every served variant")
    }
}

/// Two-level ladder over one µDeiT backbone family: dense (accurate, slow
/// per the fixed model) above adaptive-pruned (keep 0.6 at block 1:
/// degraded accuracy proxy, fast per the fixed model).
fn tiered_server(config: ServeConfig) -> Server {
    let mut rng = StdRng::seed_from_u64(7);
    let dense = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let backbone = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut pruned = PrunedViT::new(backbone);
    pruned.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
    pruned.set_nominal_keep(1, 0.6);
    let latency = Arc::new(FixedLatency {
        per_variant: [
            ("dense", Duration::from_millis(40)),
            ("adaptive-pruned", Duration::from_micros(1)),
        ]
        .into_iter()
        .collect(),
    });
    Server::start_tiered(vec![dense.into(), pruned.into()], config, latency)
}

fn slo_config() -> ServeConfig {
    ServeConfig {
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::from_millis(1),
            shed_normal: true,
        },
        ..ServeConfig::default()
    }
}

fn image(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng)
}

fn request(budget: Duration, priority: Priority) -> InferRequest {
    InferRequest {
        image: image(11),
        deadline: Instant::now() + budget,
        priority,
    }
}

#[test]
fn high_is_pinned_to_the_best_level_and_never_shed() {
    let server = tiered_server(slo_config());
    // 10 ms budget: the fixed model says level 0 needs 40 ms — a Normal
    // request would degrade, but High stays pinned and is always admitted.
    let ticket = server
        .submit(request(Duration::from_millis(10), Priority::High))
        .expect("high is never shed");
    let response = ticket.wait();
    assert_eq!(response.class, Priority::High);
    assert_eq!(response.level, 0);
    // Even a deadline that already passed cannot shed High.
    let ticket = server
        .submit(request(Duration::ZERO, Priority::High))
        .expect("high is never shed");
    assert_eq!(ticket.wait().level, 0);
    let report = server.shutdown();
    let high = report.class(Priority::High);
    assert_eq!(high.completed(), 2);
    assert_eq!(high.sheds(), 0);
    assert_eq!(high.degraded(), 0);
    assert!((high.mean_keep() - 1.0).abs() < 1e-12);
}

#[test]
fn normal_degrades_to_the_level_that_makes_its_deadline() {
    let server = tiered_server(slo_config());
    // Level 0 predicts 40 ms against a 10 ms budget; level 1 predicts 1 µs.
    let ticket = server
        .submit(request(Duration::from_millis(10), Priority::Normal))
        .expect("a cheaper level can make this deadline");
    let response = ticket.wait();
    assert_eq!(response.class, Priority::Normal);
    assert_eq!(response.level, 1);
    assert!(response.predicted > Duration::ZERO);
    let report = server.shutdown();
    let normal = report.class(Priority::Normal);
    assert_eq!(normal.completed(), 1);
    assert_eq!(normal.degraded(), 1);
    assert_eq!(normal.sheds(), 0);
    // The degraded level's accuracy proxy (keep 0.6 from block 1 on) shows
    // up in the class row.
    assert!(normal.mean_keep() < 1.0);
    assert_eq!(report.level_served(), vec![0, 1]);
}

#[test]
fn normal_keeps_the_best_level_when_unloaded() {
    let server = tiered_server(slo_config());
    // A generous budget admits at level 0 even though it is the slowest.
    let ticket = server
        .submit(request(Duration::from_secs(10), Priority::Normal))
        .expect("level 0 makes a generous deadline");
    assert_eq!(ticket.wait().level, 0);
    let report = server.shutdown();
    assert_eq!(report.class(Priority::Normal).degraded(), 0);
}

#[test]
fn normal_is_shed_only_when_every_level_predicts_a_miss() {
    let server = tiered_server(slo_config());
    let err = server
        .submit(request(Duration::ZERO, Priority::Normal))
        .expect_err("an already-expired deadline sheds Normal");
    match err {
        SubmitError::Shed { request, .. } => {
            assert_eq!(request.priority, Priority::Normal)
        }
        other => panic!("expected Shed, got {other}"),
    }
    let report = server.shutdown();
    assert_eq!(report.class(Priority::Normal).sheds(), 1);
    assert_eq!(report.sheds(), 1);
    assert_eq!(report.completed(), 0);
}

#[test]
fn best_effort_mode_degrades_to_the_cheapest_level_instead_of_shedding() {
    let mut config = slo_config();
    config.slo.shed_normal = false;
    let server = tiered_server(config);
    let ticket = server
        .submit(request(Duration::ZERO, Priority::Normal))
        .expect("best-effort mode never sheds");
    // Served at the cheapest level; the miss is recorded, not dropped.
    let response = ticket.wait();
    assert_eq!(response.level, 1);
    assert!(response.deadline_missed);
    let report = server.shutdown();
    assert_eq!(report.class(Priority::Normal).sheds(), 0);
    assert_eq!(report.class(Priority::Normal).completed(), 1);
}

#[test]
fn disabled_slo_admits_everything_at_the_best_level() {
    // Default policy (disabled): the tiered server behaves like the plain
    // single-level server — no degradation, no shedding, even for
    // deadlines admission knows it cannot make.
    let server = tiered_server(ServeConfig::default());
    let ticket = server
        .submit(request(Duration::ZERO, Priority::Normal))
        .expect("disabled admission never refuses");
    assert_eq!(ticket.wait().level, 0);
    let report = server.shutdown();
    assert_eq!(report.sheds(), 0);
    assert_eq!(report.level_served(), vec![1, 0]);
}
