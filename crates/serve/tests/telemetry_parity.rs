//! The telemetry redesign's contract, asserted end to end: a
//! [`ServeReport`] materialized from a registry snapshot is **bitwise
//! identical** (wall-clock-derived fields excluded) to one produced by the
//! legacy locked `Stats` accumulator replaying the same request sequence —
//! recovered from the server's own span trace — plus the pin test on the
//! `MAX_AUTO_THREADS` / `MAX_AUTO_LANES` auto-sizing caps.

use heatvit::telemetry::TraceEvent;
use heatvit::{CostProfile, LatencyModel};
use heatvit_selector::{PrunedViT, TokenSelector};
use heatvit_serve::{
    FlushReason, InferRequest, Priority, ServeConfig, Server, SloPolicy, Stats, SubmitError,
};
use heatvit_tensor::Tensor;
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A latency model with a fixed prediction per variant name, so admission
/// decisions (degrade to level 1, shed impossible Normals) are exactly
/// reproducible.
#[derive(Debug)]
struct FixedLatency {
    per_variant: HashMap<&'static str, Duration>,
}

impl LatencyModel for FixedLatency {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn predict(&self, profile: &CostProfile) -> Duration {
        *self
            .per_variant
            .get(profile.variant.as_str())
            .expect("prediction for every served variant")
    }
}

/// Two-level ladder (dense above adaptive-pruned keep-0.6) on ONE lane —
/// single-lane execution makes every accumulation order deterministic, so
/// the replayed f64 sums must match bitwise, not just approximately.
fn tiered_server() -> Server {
    let mut rng = StdRng::seed_from_u64(7);
    let dense = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let backbone = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut pruned = PrunedViT::new(backbone);
    pruned.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
    pruned.set_nominal_keep(1, 0.6);
    let latency = Arc::new(FixedLatency {
        per_variant: [
            ("dense", Duration::from_millis(40)),
            ("adaptive-pruned", Duration::from_micros(1)),
        ]
        .into_iter()
        .collect(),
    });
    let config = ServeConfig {
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::from_millis(1),
            shed_normal: true,
        },
        ..ServeConfig::default()
    };
    Server::start_tiered(vec![dense.into(), pruned.into()], config, latency)
}

fn image(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng)
}

fn class_from_index(index: usize) -> Priority {
    match index {
        0 => Priority::High,
        1 => Priority::Normal,
        other => panic!("unknown class index {other}"),
    }
}

/// Feeds the server's recorded span trace through the legacy `Stats`
/// accumulator in event order — the replay path the snapshot view is
/// measured against.
fn replay(events: &[TraceEvent], levels: usize, lanes: usize) -> Stats {
    let mut stats = Stats::new(levels, lanes);
    for event in events {
        match event {
            TraceEvent::Batch(b) => {
                let reason = FlushReason::from_label(b.reason).expect("known flush reason");
                // The `done` instant only feeds the throughput window,
                // which is wall-clock-derived and excluded from the
                // comparison — any instant works for the replay.
                stats.record_batch(b.size, reason, Instant::now(), b.lane);
                if b.scored {
                    stats.record_prediction_error(
                        Duration::from_micros(b.predicted_us),
                        Duration::from_micros(b.measured_us),
                    );
                }
            }
            TraceEvent::Request(r) => stats.record_response(
                Duration::from_micros(r.total_us),
                r.missed,
                class_from_index(r.class),
                r.level,
                r.keep,
                r.lane,
            ),
            TraceEvent::Shed(s) => stats.record_shed(class_from_index(s.class)),
        }
    }
    stats
}

/// Bitwise f64 comparison that treats NaN == NaN (the no-scored-batches
/// sentinel of `predicted_error_pct`).
#[track_caller]
fn assert_f64_bits(actual: f64, expected: f64, what: &str) {
    assert_eq!(
        actual.to_bits(),
        expected.to_bits(),
        "{what}: snapshot {actual} vs replay {expected}"
    );
}

#[test]
fn snapshot_report_is_bitwise_identical_to_legacy_replay() {
    let server = tiered_server();
    let mut sheds = 0u64;
    for i in 0..24u64 {
        let (priority, budget) = match i % 6 {
            // High with a generous budget: pinned to level 0, on time.
            0 => (Priority::High, Duration::from_secs(5)),
            // High with an already-expired deadline: served, missed.
            3 => (Priority::High, Duration::ZERO),
            // Normal with an impossible budget: every level predicts a
            // miss, so predictive admission sheds it at the door.
            5 => (Priority::Normal, Duration::ZERO),
            // Normal inside level 1's prediction but not level 0's:
            // degrades down the ladder deterministically.
            _ => (Priority::Normal, Duration::from_millis(10)),
        };
        let request = InferRequest {
            image: image(i),
            deadline: Instant::now() + budget,
            priority,
        };
        // Submit-and-wait: the inflight refund lands before the ticket is
        // resolved, so admission for the next request always sees an empty
        // lane — the degrade/shed decisions depend only on the fixed model.
        match server.submit(request) {
            Ok(ticket) => {
                ticket.wait();
            }
            Err(SubmitError::Shed { .. }) => sheds += 1,
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert_eq!(sheds, 4, "every 6th submission is an impossible Normal");

    let levels = server.level_count();
    let lanes = server.lane_count();
    let recorder = Arc::clone(server.recorder());
    let live = server.shutdown();
    assert_eq!(recorder.dropped(), 0, "trace ring must not evict this run");
    let replayed = replay(&recorder.events(), levels, lanes).report();

    // Everything except the two wall-clock-derived fields (throughput's
    // serving window and the lanes' queue HWMs live outside the trace).
    assert_eq!(live.completed(), replayed.completed());
    assert_eq!(live.batches(), replayed.batches());
    assert_eq!(live.deadline_misses(), replayed.deadline_misses());
    assert_eq!(live.flushes(), replayed.flushes());
    assert_eq!(live.batch_histogram(), replayed.batch_histogram());
    assert_f64_bits(live.mean_batch(), replayed.mean_batch(), "mean_batch");
    assert_f64_bits(live.p50_ms(), replayed.p50_ms(), "p50_ms");
    assert_f64_bits(live.p95_ms(), replayed.p95_ms(), "p95_ms");
    assert_f64_bits(live.max_ms(), replayed.max_ms(), "max_ms");
    assert_eq!(live.level_served(), replayed.level_served());
    assert_eq!(live.lane_served(), replayed.lane_served());
    assert_eq!(live.lane_steals(), replayed.lane_steals());
    assert_f64_bits(
        live.predicted_error_pct(),
        replayed.predicted_error_pct(),
        "predicted_error_pct",
    );
    for class in [Priority::High, Priority::Normal] {
        let l = live.class(class);
        let r = replayed.class(class);
        let label = class.label();
        assert_eq!(l.class(), r.class());
        assert_eq!(l.completed(), r.completed(), "completed[{label}]");
        assert_eq!(
            l.deadline_misses(),
            r.deadline_misses(),
            "deadline_misses[{label}]"
        );
        assert_eq!(l.sheds(), r.sheds(), "sheds[{label}]");
        assert_eq!(l.degraded(), r.degraded(), "degraded[{label}]");
        assert_f64_bits(l.p50_ms(), r.p50_ms(), "class p50_ms");
        assert_f64_bits(l.p95_ms(), r.p95_ms(), "class p95_ms");
        assert_f64_bits(l.max_ms(), r.max_ms(), "class max_ms");
        assert_f64_bits(l.mean_keep(), r.mean_keep(), "class mean_keep");
    }

    // The run exercised the interesting paths, so the parity above was not
    // vacuous: misses, sheds, degradations, and scored batches all landed.
    assert_eq!(live.completed(), 20);
    assert!(live.deadline_misses() >= 4);
    assert_eq!(live.class(Priority::Normal).sheds(), 4);
    assert_eq!(live.class(Priority::Normal).degraded(), 12);
    assert!(live.batches() >= 2);
}

/// Pins the two auto-sizing caps and their deliberate asymmetry: engine
/// workers are cheap one-batch scoped threads (cap 64), lanes are
/// long-lived OS threads with queues, condvars, and a standing steal-scan
/// cost (cap 8). `MAX_AUTO_LANES`'s docs explain the difference; this test
/// keeps the documented values honest.
#[test]
fn auto_sizing_caps_are_pinned() {
    assert_eq!(heatvit::MAX_AUTO_THREADS, 64);
    assert_eq!(heatvit_serve::MAX_AUTO_LANES, 8);
    // Lanes have a standing per-thread cost workers do not; the lane cap
    // must stay strictly lower than the worker cap.
    const _: () = assert!(heatvit_serve::MAX_AUTO_LANES < heatvit::MAX_AUTO_THREADS);
}
