//! Multi-lane scheduling coverage: bitwise served-vs-engine parity at
//! 1/2/4 lanes, work-steal correctness (no request served twice, none
//! dropped on drain), and per-backend lane isolation under mixed traffic.
//!
//! The parity and steal tests run real inference (a µDeiT backbone) so the
//! lanes genuinely contend; the isolation test drives admission with a
//! fixed latency model so the routing decisions are deterministic.

use heatvit::{Backend, CostProfile, Engine, LatencyModel};
use heatvit_quant::QuantizedViT;
use heatvit_selector::{PrunedViT, TokenSelector};
use heatvit_serve::{
    FlushReason, InferRequest, LaneAssignment, LaneCount, Priority, ServeConfig, Server, SloPolicy,
    StealPolicy,
};
use heatvit_tensor::Tensor;
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const FAR_FUTURE: Duration = Duration::from_secs(600);

fn pruned_model(seed: u64) -> Backend {
    let mut rng = StdRng::seed_from_u64(seed);
    let backbone = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut pruned = PrunedViT::new(backbone);
    pruned.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
    Backend::from(pruned)
}

fn images(seed: u64, count: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng))
        .collect()
}

fn request(image: &Tensor, budget: Duration, priority: Priority) -> InferRequest {
    InferRequest {
        image: image.clone(),
        deadline: Instant::now() + budget,
        priority,
    }
}

/// The satellite acceptance gate: served logits bitwise identical to
/// `Engine::infer_batch` at 1, 2, and 4 lanes. All traffic homes on lane 0
/// (single level), so at 2 and 4 lanes much of it is executed by thieves —
/// parity must hold no matter which lane runs the shared engine.
#[test]
fn served_outputs_are_bitwise_identical_at_1_2_and_4_lanes() {
    let imgs = images(21, 12);
    let reference = Engine::builder(pruned_model(22)).build().infer_batch(&imgs);
    for lanes in [1usize, 2, 4] {
        let config = ServeConfig {
            max_batch: 4,
            queue_capacity: 32,
            idle_flush: Duration::from_millis(5),
            deadline_slack: Duration::from_millis(2),
            lanes: LaneCount::Fixed(lanes),
            ..ServeConfig::default()
        };
        let server = Server::start(pruned_model(22), config);
        assert_eq!(server.lane_count(), lanes);
        let tickets: Vec<_> = imgs
            .iter()
            .map(|img| {
                server
                    .submit(request(img, FAR_FUTURE, Priority::Normal))
                    .expect("open")
            })
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let report = server.shutdown();
        assert_eq!(report.completed(), 12, "{lanes} lanes dropped requests");
        assert_eq!(report.lane_served().iter().sum::<u64>(), 12);
        for (i, response) in responses.iter().enumerate() {
            assert!(response.lane < lanes);
            assert_eq!(
                response.logits.data(),
                reference.logits.row(i),
                "served logits diverge from Engine::infer_batch for image {i} at {lanes} lanes"
            );
            assert_eq!(response.tokens_per_block, reference.tokens_per_block[i]);
            assert_eq!(response.macs, reference.macs[i]);
            assert_eq!(response.prediction, reference.predictions()[i]);
        }
    }
}

/// Work-steal correctness under a drain: a deep backlog on lane 0's queue,
/// lane 1 with nothing homed on it. Every request resolves exactly once
/// (the one-shot response slots debug-assert against double fills), none
/// is dropped by the shutdown drain, and the idle lane actually steals.
#[test]
fn stealing_drains_a_backlogged_lane_without_loss_or_double_service() {
    let requests = 48usize;
    let config = ServeConfig {
        max_batch: 2,
        queue_capacity: requests,
        idle_flush: Duration::from_secs(60),
        deadline_slack: Duration::ZERO,
        lanes: LaneCount::Fixed(2),
        steal: StealPolicy {
            enabled: true,
            poll: Duration::from_micros(100),
            keep_local: None,
        },
        ..ServeConfig::default()
    };
    let server = Server::start(pruned_model(23), config);
    let imgs = images(24, requests);
    let tickets: Vec<_> = imgs
        .iter()
        .map(|img| {
            server
                .submit(request(img, FAR_FUTURE, Priority::Normal))
                .expect("open")
        })
        .collect();
    let report = server.shutdown();
    assert_eq!(
        report.completed(),
        requests as u64,
        "drain dropped requests"
    );
    assert_eq!(report.level_served(), vec![requests as u64]);
    assert_eq!(report.lane_served().iter().sum::<u64>(), requests as u64);
    // Lane 1 has no home traffic: anything it served, it stole.
    assert_eq!(report.lane_served()[1], report.lane_steals()[1]);
    assert_eq!(report.lane_steals()[0], 0, "lane 0 had nothing to steal");
    assert!(
        report.stolen() > 0,
        "a 48-deep backlog against an idle lane must get stolen from: {:?}",
        report.lane_served()
    );
    // Steal flushes carry at most max_batch (2) requests each.
    assert!(report.flushes().steal >= report.lane_steals()[1].div_ceil(2));
    // Every ticket resolved exactly once: `completed == submitted` rules
    // out drops, the slots' double-fill debug assertion rules out double
    // service, and each response is still present and well-formed.
    for ticket in tickets {
        let response = ticket.try_take().expect("every ticket must resolve");
        assert_eq!(response.logits.dims(), &[1, 4]);
        if response.flush == FlushReason::Steal {
            assert_eq!(response.lane, 1, "only lane 1 can steal here");
        }
    }
    // The backlog's high-water mark is visible on the victim lane.
    assert!(report.lane_queue_hwm()[0] > 0);
}

/// Stealing disabled: the idle lane must leave the backlog alone and every
/// request is served by its home lane.
#[test]
fn disabled_stealing_pins_work_to_the_home_lane() {
    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 32,
        idle_flush: Duration::from_millis(2),
        lanes: LaneCount::Fixed(2),
        steal: StealPolicy {
            enabled: false,
            ..StealPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(pruned_model(25), config);
    let imgs = images(26, 12);
    let tickets: Vec<_> = imgs
        .iter()
        .map(|img| {
            server
                .submit(request(img, FAR_FUTURE, Priority::Normal))
                .expect("open")
        })
        .collect();
    for ticket in tickets {
        assert_eq!(ticket.wait().lane, 0, "home lane is 0 for the only level");
    }
    let report = server.shutdown();
    assert_eq!(report.lane_served(), vec![12, 0]);
    assert_eq!(report.stolen(), 0);
    assert_eq!(report.flushes().steal, 0);
}

/// A latency model with a fixed prediction per variant name, so admission
/// routing is exactly reproducible (same idiom as the SLO tests).
#[derive(Debug)]
struct FixedLatency {
    per_variant: HashMap<&'static str, Duration>,
}

impl LatencyModel for FixedLatency {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn predict(&self, profile: &CostProfile) -> Duration {
        *self
            .per_variant
            .get(profile.variant.as_str())
            .expect("prediction for every served variant")
    }
}

/// Per-backend lane isolation under mixed traffic: a float dense level
/// homed on lane 0 and an int8-dense level homed on lane 1. High traffic
/// pins to the dense level, tight-budget Normal traffic degrades to the
/// int8 level — and each backend batches and executes on its own lane,
/// with no steals (neither backlog ever exceeds the keep-local threshold).
#[test]
fn int8_and_float_levels_batch_on_their_own_lanes() {
    let mut rng = StdRng::seed_from_u64(27);
    let backbone = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let mut quantized = QuantizedViT::from_float(&backbone);
    quantized.calibrate(&images(28, 4));
    let latency = Arc::new(FixedLatency {
        per_variant: [
            ("dense", Duration::from_millis(40)),
            ("int8-dense", Duration::from_micros(1)),
        ]
        .into_iter()
        .collect(),
    });
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: 32,
        idle_flush: Duration::from_millis(2),
        lanes: LaneCount::Fixed(2),
        assignment: LaneAssignment::RoundRobin,
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::from_millis(1),
            shed_normal: false,
        },
        ..ServeConfig::default()
    };
    let server = Server::start_tiered(
        vec![Backend::from(backbone), Backend::from(quantized)],
        config,
        latency,
    );
    assert_eq!(server.home_lane(0), 0);
    assert_eq!(server.home_lane(1), 1);
    let imgs = images(29, 12);
    let tickets: Vec<_> = imgs
        .iter()
        .enumerate()
        .map(|(i, img)| {
            // Alternate High (generous budget, pinned to dense) with
            // tight-budget Normal (10 ms: the fixed model predicts a 320 ms
            // dense batch, so admission degrades it to int8).
            let req = if i % 2 == 0 {
                request(img, FAR_FUTURE, Priority::High)
            } else {
                request(img, Duration::from_millis(10), Priority::Normal)
            };
            server.submit(req).expect("open")
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait();
        if i % 2 == 0 {
            assert_eq!(response.class, Priority::High);
            assert_eq!(response.level, 0, "High pins to the dense level");
            assert_eq!(response.lane, 0, "dense homes on lane 0");
        } else {
            assert_eq!(response.level, 1, "tight Normal degrades to int8");
            assert_eq!(response.lane, 1, "int8 homes on lane 1");
        }
    }
    let report = server.shutdown();
    assert_eq!(report.completed(), 12);
    assert_eq!(report.level_served(), vec![6, 6]);
    assert_eq!(report.lane_served(), vec![6, 6]);
    assert_eq!(
        report.stolen(),
        0,
        "sub-threshold backlogs must not trigger steals"
    );
}
