//! Batcher flush-policy coverage: max-batch flush, deadline-proximity
//! flush, idle flush, and the shutdown drain (no request dropped), plus
//! the parity gate — served logits bitwise identical to
//! `Engine::infer_batch` on the same images.
//!
//! Timing-dependent tests use widely separated timescales (milliseconds vs.
//! tens of seconds) so scheduler jitter on a loaded single-core CI machine
//! cannot flip which policy fires.

use heatvit::{Backend, Engine};
use heatvit_selector::{PrunedViT, TokenSelector};
use heatvit_serve::{FlushReason, InferRequest, Priority, ServeConfig, Server, SubmitError};
use heatvit_tensor::Tensor;
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const FAR_FUTURE: Duration = Duration::from_secs(600);

fn model(seed: u64) -> Backend {
    let mut rng = StdRng::seed_from_u64(seed);
    Backend::from(VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng))
}

fn pruned_model(seed: u64) -> Backend {
    let mut rng = StdRng::seed_from_u64(seed);
    let backbone = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut pruned = PrunedViT::new(backbone);
    pruned.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
    Backend::from(pruned)
}

fn images(seed: u64, count: usize, side: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Tensor::rand_uniform(&[3, side, side], 0.0, 1.0, &mut rng))
        .collect()
}

fn request(image: &Tensor, budget: Duration) -> InferRequest {
    InferRequest {
        image: image.clone(),
        deadline: Instant::now() + budget,
        priority: Priority::Normal,
    }
}

#[test]
fn max_batch_flushes_without_waiting_for_timers() {
    // Timers are far away (10 min deadlines, 30 s idle): the only way these
    // requests resolve promptly is the max-batch policy.
    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 16,
        idle_flush: Duration::from_secs(30),
        deadline_slack: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = Server::start(model(1), config);
    let imgs = images(2, 8, 16);
    let tickets: Vec<_> = imgs
        .iter()
        .map(|img| server.submit(request(img, FAR_FUTURE)).expect("open"))
        .collect();
    for ticket in tickets {
        let response = ticket.wait();
        assert_eq!(response.batch_size, 4);
        assert_eq!(response.flush, FlushReason::MaxBatch);
    }
    let report = server.shutdown();
    assert_eq!(report.completed(), 8);
    assert_eq!(report.flushes().max_batch, 2);
    assert_eq!(report.batch_histogram(), vec![(4, 2)]);
}

#[test]
fn deadline_proximity_flushes_a_partial_batch() {
    // One request, deadline 50 ms out, idle timer 60 s out: only the
    // deadline policy can flush before the test's sanity timeout.
    let config = ServeConfig {
        max_batch: 64,
        queue_capacity: 16,
        idle_flush: Duration::from_secs(60),
        deadline_slack: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let server = Server::start(model(3), config);
    let img = &images(4, 1, 16)[0];
    let submitted = Instant::now();
    let ticket = server
        .submit(request(img, Duration::from_millis(50)))
        .expect("open");
    let response = ticket
        .wait_timeout(Duration::from_secs(20))
        .expect("deadline flush must fire long before the idle timer");
    assert_eq!(response.flush, FlushReason::Deadline);
    assert_eq!(response.batch_size, 1);
    // It flushed near the deadline, not at the 60 s idle horizon.
    assert!(submitted.elapsed() < Duration::from_secs(20));
    let report = server.shutdown();
    assert_eq!(report.flushes().deadline, 1);
    assert_eq!(report.completed(), 1);
}

#[test]
fn idle_flush_serves_trickle_traffic() {
    // Deadlines 10 min out, idle timer 25 ms: only the queue-idle policy
    // can flush this partial batch.
    let config = ServeConfig {
        max_batch: 64,
        queue_capacity: 16,
        idle_flush: Duration::from_millis(25),
        deadline_slack: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = Server::start(model(5), config);
    let imgs = images(6, 3, 16);
    let tickets: Vec<_> = imgs
        .iter()
        .map(|img| server.submit(request(img, FAR_FUTURE)).expect("open"))
        .collect();
    for ticket in tickets {
        let response = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("idle flush must fire");
        assert_eq!(response.flush, FlushReason::Idle);
    }
    let report = server.shutdown();
    assert_eq!(report.completed(), 3);
    assert!(report.flushes().idle >= 1);
    assert_eq!(report.flushes().deadline, 0);
}

#[test]
fn shutdown_drains_every_queued_request() {
    // All timers far away; shutdown must serve all 10 requests anyway:
    // 2 full batches (max-batch) + one 2-request shutdown-drain remainder.
    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 16,
        idle_flush: Duration::from_secs(60),
        deadline_slack: Duration::ZERO,
        ..ServeConfig::default()
    };
    let server = Server::start(model(7), config);
    let imgs = images(8, 10, 16);
    let tickets: Vec<_> = imgs
        .iter()
        .map(|img| server.submit(request(img, FAR_FUTURE)).expect("open"))
        .collect();
    let report = server.shutdown();
    assert_eq!(report.completed(), 10, "shutdown dropped requests");
    assert!(
        report.flushes().shutdown >= 1,
        "the sub-max_batch remainder can only flush via the shutdown drain: {:?}",
        report.flushes()
    );
    // Every ticket resolves even though shutdown already returned.
    for ticket in tickets {
        let response = ticket.try_take().expect("drained response must be ready");
        assert!(response.batch_size <= 4);
    }
}

#[test]
fn malformed_images_are_refused_at_submission_not_in_the_batcher() {
    // test_tiny expects [3, 16, 16]; a wrong-shaped image must bounce at
    // submit instead of panicking the batcher and stranding other tickets.
    let server = Server::start(model(17), ServeConfig::default());
    let bad = Tensor::zeros(&[3, 8, 8]);
    match server.submit(request(&bad, FAR_FUTURE)) {
        Err(SubmitError::BadImage { request, expected }) => {
            assert_eq!(expected, [3, 16, 16]);
            assert_eq!(request.image.dims(), &[3, 8, 8], "request not returned");
        }
        other => panic!("expected BadImage, got {other:?}"),
    }
    // The server is still fully alive for well-formed traffic.
    let good = &images(18, 1, 16)[0];
    let response = server
        .submit(request(good, FAR_FUTURE))
        .expect("open")
        .wait();
    assert_eq!(response.logits.dims(), &[1, 4]);
    assert_eq!(server.shutdown().completed(), 1);
}

#[test]
fn submissions_after_close_are_refused_with_the_request_returned() {
    let server = Server::start(model(9), ServeConfig::default());
    server.close();
    let img = &images(10, 1, 16)[0];
    match server.submit(request(img, FAR_FUTURE)) {
        Err(SubmitError::Closed(returned)) => {
            assert_eq!(returned.image.data(), img.data(), "request not returned");
        }
        other => panic!("expected Closed, got {other:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.completed(), 0);
}

/// The acceptance gate: served outputs bitwise identical to
/// `Engine::infer_batch` on the same images — across mixed batch shapes
/// and a pruned (input-adaptive) backend.
#[test]
fn served_outputs_are_bitwise_identical_to_engine_infer_batch() {
    let imgs = images(11, 9, 32);
    let reference = Engine::builder(pruned_model(12)).build().infer_batch(&imgs);

    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 16,
        idle_flush: Duration::from_millis(5),
        deadline_slack: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let server = Server::start(pruned_model(12), config);
    let tickets: Vec<_> = imgs
        .iter()
        .map(|img| server.submit(request(img, FAR_FUTURE)).expect("open"))
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let report = server.shutdown();
    assert_eq!(report.completed(), 9);

    for (i, response) in responses.iter().enumerate() {
        assert_eq!(
            response.logits.data(),
            reference.logits.row(i),
            "served logits diverge from Engine::infer_batch for image {i}"
        );
        assert_eq!(response.tokens_per_block, reference.tokens_per_block[i]);
        assert_eq!(response.macs, reference.macs[i]);
        assert_eq!(response.prediction, reference.predictions()[i]);
    }
}

#[test]
fn mixed_priorities_all_complete() {
    let config = ServeConfig {
        max_batch: 3,
        queue_capacity: 16,
        idle_flush: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let server = Server::start(model(13), config);
    let imgs = images(14, 6, 16);
    let tickets: Vec<_> = imgs
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let mut req = request(img, FAR_FUTURE);
            if i % 2 == 0 {
                req.priority = Priority::High;
            }
            server.submit(req).expect("open")
        })
        .collect();
    for ticket in tickets {
        ticket.wait();
    }
    assert_eq!(server.shutdown().completed(), 6);
}

#[test]
fn concurrent_submitters_share_one_server() {
    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 8,
        idle_flush: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let server = Server::start(model(15), config);
    let imgs = images(16, 4, 16);
    let reference = Engine::builder(model(15)).build().infer_batch(&imgs);
    std::thread::scope(|scope| {
        for (i, img) in imgs.iter().enumerate() {
            let server = &server;
            let expect = reference.logits.row(i).to_vec();
            scope.spawn(move || {
                let response = server
                    .submit(request(img, FAR_FUTURE))
                    .expect("open")
                    .wait();
                assert_eq!(response.logits.data(), &expect[..], "client {i} diverged");
            });
        }
    });
    assert_eq!(server.shutdown().completed(), 4);
}
