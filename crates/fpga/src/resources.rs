//! Accelerator configuration and on-chip resource accounting
//! (paper Table IV: DSP and BRAM utilization on the ZCU102).

/// Geometry and budgets of the tiled GEMM engine.
///
/// The engine is a `tile_m × tile_n` MAC array: each cycle it consumes one
/// reduction element per output tile position, so a tile of the output
/// matrix takes `K` (float) or `ceil(K / packing)` (packed int8) beats plus
/// a fixed pipeline fill/drain. Input panels stream through double-buffered
/// `tile × tile_k` line buffers.
#[derive(Debug, Clone)]
pub struct FpgaConfig {
    /// Accelerator clock in MHz.
    pub clock_mhz: f64,
    /// MAC-array rows (output-tile rows).
    pub tile_m: usize,
    /// MAC-array columns (output-tile columns).
    pub tile_n: usize,
    /// Streaming-buffer depth along the reduction dimension (sizing only —
    /// the reduction streams, so it does not bound the cycle count).
    pub tile_k: usize,
    /// Pipeline fill + drain overhead per output tile, in cycles (adder
    /// tree depth plus output write-back).
    pub pipeline_fill: u64,
    /// How many elements per cycle the post-GEMM vector unit processes
    /// (layernorm, softmax, GELU, residual adds).
    pub vector_lanes: u64,
    /// int8 MACs per DSP slice per cycle relative to float
    /// (`heatvit_quant::DSP_PACKING_FACTOR`: two multiplies packed per
    /// DSP48, derated for the correction logic).
    pub packing: f64,
    /// DSP slices available on the device.
    pub dsp_budget: usize,
    /// 18 Kb BRAM blocks available on the device.
    pub bram18_budget: usize,
}

impl FpgaConfig {
    /// The paper's evaluation device: Xilinx ZCU102 (XCZU9EG — 2520 DSP
    /// slices, 1824 BRAM-18K blocks) at a 150 MHz accelerator clock.
    pub fn zcu102() -> Self {
        Self {
            clock_mhz: 150.0,
            tile_m: 32,
            tile_n: 32,
            tile_k: 64,
            pipeline_fill: 12,
            vector_lanes: 32,
            packing: heatvit_quant::DSP_PACKING_FACTOR,
            dsp_budget: 2520,
            bram18_budget: 1824,
        }
    }

    /// On-chip resources this geometry occupies.
    pub fn resources(&self) -> FpgaResources {
        let dsps = self.tile_m * self.tile_n;
        // Double-buffered A (tile_m × tile_k) and B (tile_k × tile_n)
        // panels plus the C accumulator tile (tile_m × tile_n), 4 bytes per
        // element (float path is the sizing worst case; int8 reuses the
        // same buffers).
        let bytes = 4
            * (2 * self.tile_m * self.tile_k
                + 2 * self.tile_k * self.tile_n
                + self.tile_m * self.tile_n);
        let bram18 = bytes.div_ceil(18 * 1024 / 8);
        FpgaResources { dsps, bram18 }
    }

    /// `true` when the geometry fits this configuration's own device
    /// budgets.
    pub fn fits(&self) -> bool {
        let r = self.resources();
        r.dsps <= self.dsp_budget && r.bram18 <= self.bram18_budget
    }
}

impl Default for FpgaConfig {
    fn default() -> Self {
        Self::zcu102()
    }
}

/// On-chip resources occupied by a [`FpgaConfig`] geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaResources {
    /// DSP slices consumed by the MAC array.
    pub dsps: usize,
    /// 18 Kb BRAM blocks consumed by the streaming and accumulator
    /// buffers.
    pub bram18: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu102_geometry_fits_its_own_budgets() {
        let cfg = FpgaConfig::zcu102();
        let r = cfg.resources();
        assert!(cfg.fits(), "default geometry must fit the ZCU102: {r:?}");
        // Table IV reports ~66% DSP utilization at full scale; our single
        // 32×32 array is deliberately below budget.
        assert_eq!(r.dsps, 1024);
        assert!(r.bram18 > 0);
    }

    #[test]
    fn oversized_array_is_rejected() {
        let cfg = FpgaConfig {
            tile_m: 64,
            tile_n: 64, // 4096 DSPs > 2520
            ..FpgaConfig::zcu102()
        };
        assert!(!cfg.fits());
    }
}
