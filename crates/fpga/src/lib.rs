//! # heatvit-fpga
//!
//! Latency and resource model of the HeatViT FPGA accelerator: the tiled
//! GEMM engine (paper Fig. 8), DSP packing for int8 MACs, and the
//! Table III/IV cycle accounting.
//!
//! Placeholder: the int8 arithmetic it models is implemented in
//! `heatvit-quant` (whose `DSP_PACKING_FACTOR = 1.9` and
//! packed-DSP-equivalent MAC accounting this cycle model will consume), and
//! per-variant MAC counts flow through
//! `heatvit::InferenceModel::infer_one`; the cycle/BRAM model lands in a
//! follow-up PR (see `ROADMAP.md` → Open items).

#![warn(missing_docs)]
