//! # heatvit-fpga
//!
//! Latency and resource model of the HeatViT FPGA accelerator: the tiled
//! GEMM engine (paper Fig. 8), int8 DSP packing, and the Table III/IV
//! cycle and resource accounting.
//!
//! The accelerator executes a ViT as a sequence of GEMMs — the six
//! Table II layers per block, plus the patch embedding and the
//! classification head — on one systolic `tile_m × tile_n` MAC array that
//! streams the reduction dimension. `heatvit-vit` exposes exactly those
//! GEMM geometries ([`heatvit_vit::flops::GemmShape`]), so the cycle model
//! here and the workspace's MAC model agree by construction; the int8 path
//! consumes `heatvit-quant`'s [`DSP_PACKING_FACTOR`](heatvit_quant::DSP_PACKING_FACTOR)
//! so the ~1.9× packed-DSP claim is one constant shared by the arithmetic,
//! the MAC accounting, and the cycle model.
//!
//! [`FpgaCycleModel`] implements `heatvit`'s
//! [`LatencyModel`](heatvit::LatencyModel), turning any backend's
//! [`CostProfile`](heatvit::CostProfile) into predicted cycles and wall
//! clock — the cost signal the serving layer's predictive admission
//! consumes (directly on an FPGA deployment, or as the cold-start prior of
//! `heatvit::MeasuredEwma` on a host).

#![warn(missing_docs)]

mod cycle;
mod resources;

pub use cycle::{FpgaCycleModel, GemmCycles, Precision};
pub use resources::{FpgaConfig, FpgaResources};
