//! The tiled GEMM-engine cycle model (paper Fig. 8, Table III) and its
//! [`LatencyModel`] implementation.

use crate::resources::FpgaConfig;
use heatvit::{CostProfile, LatencyModel};
use heatvit_vit::flops::{head_gemm, patch_embed_gemm, BlockLayer, GemmShape};
use heatvit_vit::ViTConfig;
use std::time::Duration;

/// Arithmetic family a GEMM executes in on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// 32-bit float: one MAC per DSP-cascade per cycle.
    Float,
    /// Packed int8: `packing` MACs per DSP per cycle
    /// (`heatvit_quant::DSP_PACKING_FACTOR`).
    Int8,
}

/// Cycle breakdown of one GEMM on the tiled engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmCycles {
    /// Output tiles scheduled (`reps · ceil(m/tile_m) · ceil(n/tile_n)`).
    pub tiles: u64,
    /// Reduction beats across all tiles — the MAC-bound portion, and the
    /// part int8 packing shrinks.
    pub mac_cycles: u64,
    /// Pipeline fill/drain beats across all tiles.
    pub fill_cycles: u64,
}

impl GemmCycles {
    /// Total engine cycles for the GEMM.
    pub fn total(&self) -> u64 {
        self.mac_cycles + self.fill_cycles
    }
}

/// The FPGA cycle model: predicts accelerator cycles (and wall clock at the
/// configured accelerator clock) for any backend [`CostProfile`].
///
/// Every layer the profile implies is scheduled on one tiled MAC array —
/// `reps · ceil(m/tile_m) · ceil(n/tile_n)` output tiles, each streaming
/// the reduction dimension at one beat per element (float) or one beat per
/// `packing` elements (int8, paper Section V) — plus a vector-unit term for
/// the nonlinearities between GEMMs. Pruning enters through the profile's
/// per-block token counts: fewer tokens mean fewer and smaller tiles, which
/// is exactly the latency knob HeatViT's token selectors turn.
#[derive(Debug, Clone, Default)]
pub struct FpgaCycleModel {
    /// Engine geometry and clock.
    pub config: FpgaConfig,
}

impl FpgaCycleModel {
    /// A cycle model over the given engine geometry.
    pub fn new(config: FpgaConfig) -> Self {
        Self { config }
    }

    /// Cycle breakdown of one GEMM at the given precision.
    pub fn gemm_cycles(&self, shape: GemmShape, precision: Precision) -> GemmCycles {
        let tiles = shape.reps
            * shape.m.div_ceil(self.config.tile_m as u64)
            * shape.n.div_ceil(self.config.tile_n as u64);
        let k_beats = match precision {
            Precision::Float => shape.k,
            Precision::Int8 => (shape.k as f64 / self.config.packing).ceil() as u64,
        };
        GemmCycles {
            tiles,
            mac_cycles: tiles * k_beats,
            fill_cycles: tiles * self.config.pipeline_fill,
        }
    }

    /// Vector-unit cycles for the non-GEMM work of one block at `tokens`
    /// tokens: two layernorms and two residual adds over the token matrix,
    /// GELU over the FFN hidden activations, and softmax over the per-head
    /// attention maps.
    pub fn vector_cycles(&self, config: &ViTConfig, tokens: usize) -> u64 {
        let t = tokens as u64;
        let dch = config.embed_dim as u64;
        let h = config.num_heads as u64;
        let hidden = config.ffn_hidden() as u64;
        let elems = 4 * t * dch + t * hidden + h * t * t;
        elems.div_ceil(self.config.vector_lanes)
    }

    /// Total accelerator cycles for one inference of `profile`.
    pub fn model_cycles(&self, profile: &CostProfile) -> u64 {
        let precision = if profile.quantized {
            Precision::Int8
        } else {
            Precision::Float
        };
        let cfg = &profile.config;
        let mut cycles = self.gemm_cycles(patch_embed_gemm(cfg), precision).total()
            + self.gemm_cycles(head_gemm(cfg), precision).total();
        for &tokens in &profile.tokens_per_block {
            for layer in BlockLayer::ALL {
                cycles += self
                    .gemm_cycles(layer.gemm_shape(cfg, tokens), precision)
                    .total();
            }
            cycles += self.vector_cycles(cfg, tokens);
        }
        cycles
    }
}

impl LatencyModel for FpgaCycleModel {
    fn name(&self) -> &'static str {
        "fpga-cycles"
    }

    /// [`FpgaCycleModel::model_cycles`] at the configured accelerator
    /// clock.
    fn predict(&self, profile: &CostProfile) -> Duration {
        Duration::from_secs_f64(self.model_cycles(profile) as f64 / (self.config.clock_mhz * 1e6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_quant::{packed_macs, DSP_PACKING_FACTOR};

    fn model() -> FpgaCycleModel {
        FpgaCycleModel::default()
    }

    /// The hot DeiT-T GEMM shapes at the full 197-token count: the QKV
    /// projection, per-head Q·Kᵀ, and the FFN expansion — the three layers
    /// that dominate Table II.
    fn hot_shapes() -> Vec<GemmShape> {
        let cfg = ViTConfig::deit_tiny();
        let n = cfg.num_tokens();
        vec![
            BlockLayer::LinearTransformation.gemm_shape(&cfg, n),
            BlockLayer::QueryKey.gemm_shape(&cfg, n),
            BlockLayer::FfnExpand.gemm_shape(&cfg, n),
        ]
    }

    #[test]
    fn int8_packing_gain_matches_qmatmul_packed_mac_accounting() {
        // The paper's ~1.9× DSP-packing claim, validated end to end: the
        // cycle model's float-vs-int8 MAC-beat ratio on the hot ViT GEMM
        // shapes must match `heatvit-quant`'s packed-MAC accounting
        // (`packed_macs = round(raw / DSP_PACKING_FACTOR)`, the numbers
        // `qmatmul` inferences report) — same constant, two independent
        // accountings, small integer-rounding slack only.
        let m = model();
        for shape in hot_shapes() {
            let float = m.gemm_cycles(shape, Precision::Float);
            let int8 = m.gemm_cycles(shape, Precision::Int8);
            let cycle_ratio = float.mac_cycles as f64 / int8.mac_cycles as f64;
            let mac_ratio = shape.macs() as f64 / packed_macs(shape.macs()) as f64;
            let rel = (cycle_ratio - mac_ratio).abs() / mac_ratio;
            assert!(
                rel < 0.02,
                "{shape:?}: cycle ratio {cycle_ratio:.3} vs packed-MAC ratio {mac_ratio:.3}"
            );
            let vs_claim = (cycle_ratio - DSP_PACKING_FACTOR).abs() / DSP_PACKING_FACTOR;
            assert!(
                vs_claim < 0.05,
                "{shape:?}: cycle ratio {cycle_ratio:.3} strays from the ~1.9× claim"
            );
        }
    }

    #[test]
    fn fewer_tokens_cost_fewer_cycles() {
        let m = model();
        let cfg = ViTConfig::deit_tiny();
        let dense = CostProfile::dense("dense", &cfg, 0);
        let mut pruned = dense.clone();
        pruned.tokens_per_block = vec![
            cfg.num_tokens(),
            120,
            120,
            80,
            80,
            80,
            80,
            50,
            50,
            50,
            50,
            50,
        ];
        assert!(m.model_cycles(&pruned) < m.model_cycles(&dense));
        assert!(m.predict(&pruned) < m.predict(&dense));
    }

    #[test]
    fn int8_is_faster_than_float_at_equal_tokens() {
        let m = model();
        let cfg = ViTConfig::deit_tiny();
        let float = CostProfile::dense("dense", &cfg, 0);
        let mut int8 = float.clone();
        int8.quantized = true;
        let speedup = m.model_cycles(&float) as f64 / m.model_cycles(&int8) as f64;
        // Fill and vector-unit cycles don't pack, so the whole-model gain
        // sits below the pure-MAC 1.9× but must stay well above 1.
        assert!(
            speedup > 1.4 && speedup < DSP_PACKING_FACTOR,
            "whole-model int8 speedup {speedup:.3}"
        );
    }

    #[test]
    fn predictions_are_positive_and_clock_scaled() {
        let cfg = ViTConfig::deit_tiny();
        let profile = CostProfile::dense("dense", &cfg, 0);
        let slow = FpgaCycleModel::new(FpgaConfig {
            clock_mhz: 75.0,
            ..FpgaConfig::zcu102()
        });
        let fast = model();
        assert!(fast.predict(&profile) > Duration::ZERO);
        // Half the clock, twice the latency (same cycle count).
        let ratio = slow.predict(&profile).as_secs_f64() / fast.predict(&profile).as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gemm_cycle_breakdown_is_consistent() {
        let m = model();
        let shape = GemmShape {
            reps: 2,
            m: 100,
            k: 64,
            n: 40,
        };
        let c = m.gemm_cycles(shape, Precision::Float);
        // 2 reps · ceil(100/32) · ceil(40/32) = 2·4·2 = 16 tiles.
        assert_eq!(c.tiles, 16);
        assert_eq!(c.mac_cycles, 16 * 64);
        assert_eq!(c.fill_cycles, 16 * m.config.pipeline_fill);
        assert_eq!(c.total(), c.mac_cycles + c.fill_cycles);
    }
}
