//! # heatvit-nn
//!
//! Reverse-mode automatic differentiation and neural-network building blocks
//! for the [HeatViT](https://arxiv.org/abs/2211.08110) reproduction.
//!
//! The centerpiece is [`Tape`], a single-use define-by-run autograd arena:
//! each training step records the forward computation as nodes, then
//! [`Tape::backward`] replays them in reverse to produce [`Gradients`].
//! Layers ([`layers::Linear`], [`layers::LayerNorm`], [`layers::Mlp`],
//! [`layers::Activation`]) own their [`Param`]s and expose both a
//! differentiable `forward(&mut Tape, Var)` and a fast tape-free
//! `infer(&Tensor)` path — the latter is what the quantizer and the FPGA
//! simulator consume.
//!
//! The operation set is deliberately exactly what HeatViT needs: GEMM-shaped
//! linear algebra, ViT nonlinearities, row/column broadcasts for token
//! keep-masks and head weighting (paper Eqs. 3–10), structural ops for head
//! split/merge and dense token repacking, and fused losses (cross-entropy,
//! DeiT-style distillation KL, MSE for the latency-sparsity target).
//!
//! ## Example: one SGD step
//!
//! ```
//! use heatvit_nn::{layers::Linear, optim::{Optimizer, Sgd}, Module, Tape};
//! use heatvit_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut layer = Linear::new(4, 2, true, &mut rng);
//! let mut opt = Sgd::new(0.1);
//!
//! let mut tape = Tape::new();
//! let x = tape.constant(Tensor::ones(&[8, 4]));
//! let logits = layer.forward(&mut tape, x);
//! let loss = tape.cross_entropy(logits, &[0, 1, 0, 1, 0, 1, 0, 1]);
//! let grads = tape.backward(loss);
//! tape.write_grads(&grads, layer.params_mut());
//! opt.step(layer.params_mut());
//! ```

#![warn(missing_docs)]

pub mod layers;
mod op;
pub mod optim;
mod param;
mod tape;

pub use param::{Module, Param};
pub use tape::{Gradients, Tape, Var};

use heatvit_tensor::Tensor;

/// Classification accuracy of `logits` `[B, C]` against integer targets.
///
/// # Panics
///
/// Panics if `targets.len() != logits.dim(0)`.
///
/// # Examples
///
/// ```
/// use heatvit_nn::accuracy;
/// use heatvit_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 3.0], &[2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
/// ```
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(logits.dim(0), targets.len(), "one target per row required");
    if targets.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f32 / targets.len() as f32
}
