//! The reverse-mode autograd tape.
//!
//! A [`Tape`] is a single-use computation graph: forward calls append nodes,
//! [`Tape::backward`] walks them in reverse. One tape is built per training
//! step and dropped afterwards, which sidesteps interior mutability entirely
//! — the idiomatic arena formulation of define-by-run autograd in Rust.

use crate::op::Op;
use crate::param::Param;
use heatvit_tensor::Tensor;

/// Lower clamp applied inside [`Tape::ln`] for numerical stability.
pub(crate) const LN_CLAMP: f32 = 1e-12;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// The gradient of the loss with respect to `v`, if `v` required one.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }
}

/// A define-by-run reverse-mode autodiff tape.
///
/// # Examples
///
/// Differentiate `mean((x·w)²)` with respect to `w`:
///
/// ```
/// use heatvit_nn::Tape;
/// use heatvit_tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
/// let w = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2, 1]));
/// let y = tape.matmul(x, w);       // [[11]]
/// let y2 = tape.mul(y, y);         // [[121]]
/// let loss = tape.mean_all(y2);
/// let grads = tape.backward(loss);
/// // d/dw mean((x·w)²) = 2(x·w)·xᵀ = [22, 44]
/// assert_eq!(grads.get(w).unwrap().data(), &[22.0, 44.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// `(param id, leaf var)` pairs recorded by [`Tape::param`].
    bindings: Vec<(u64, Var)>,
    /// Parameter ids recorded as constants by [`Tape::param`] — the
    /// frozen-backbone fast path.
    frozen: std::collections::HashSet<u64>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Shape of a node's value.
    pub fn dims(&self, v: Var) -> &[usize] {
        self.nodes[v.0].value.dims()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let requires_grad = op.parents().iter().any(|p| self.nodes[p.0].requires_grad);
        self.nodes.push(Node {
            value,
            op,
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a differentiable input (a gradient will be computed for it).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.nodes.push(Node {
            value,
            op: Op::Leaf,
            requires_grad: true,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a non-differentiable input (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.nodes.push(Node {
            value,
            op: Op::Leaf,
            requires_grad: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a `[1]`-shaped scalar constant.
    pub fn scalar(&mut self, value: f32) -> Var {
        self.constant(Tensor::from_vec(vec![value], &[1]))
    }

    /// Records a parameter as a differentiable leaf and remembers the
    /// binding so [`Tape::write_grads`] can route its gradient back.
    ///
    /// Parameters frozen via [`Tape::freeze_params`] are recorded as
    /// constants instead: `requires_grad` stays false through everything
    /// computed from them, so [`Tape::backward`] skips their entire weight
    /// subgraph — the frozen-backbone fast path of selector-only training.
    pub fn param(&mut self, p: &Param) -> Var {
        if self.frozen.contains(&p.id()) {
            return self.constant(p.value().clone());
        }
        let v = self.leaf(p.value().clone());
        self.bindings.push((p.id(), v));
        v
    }

    /// Marks parameter ids as frozen: subsequent [`Tape::param`] calls for
    /// them record constants, so no gradients are computed or routed for
    /// them. Gradients still flow *through* ops that consume frozen
    /// parameters (activations keep their grads); only the weight-side
    /// vector-Jacobian products are skipped. Freezing affects only
    /// parameters recorded after the call.
    pub fn freeze_params(&mut self, ids: impl IntoIterator<Item = u64>) {
        self.frozen.extend(ids);
    }

    /// `true` if the parameter id is currently frozen on this tape.
    pub fn is_frozen(&self, id: u64) -> bool {
        self.frozen.contains(&id)
    }

    /// `true` if a gradient will be computed for this node.
    pub fn requires_grad(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Re-records a node's value as a constant: gradient flow stops here.
    ///
    /// The straight-through Gumbel-Softmax estimator is built on this.
    pub fn detach(&mut self, v: Var) -> Var {
        let value = self.value(v).clone();
        self.constant(value)
    }

    // ----- arithmetic -------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        self.push(value, Op::Scale(a, s))
    }

    /// Scalar offset.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).add_scalar(s);
        self.push(value, Op::AddScalar(a, s))
    }

    /// Adds rank-1 `bias` to every row of rank-2 `a`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(bias));
        self.push(value, Op::AddRowBroadcast(a, bias))
    }

    /// Multiplies row `r` of rank-2 `a` by `m[r]` (`m` rank-1).
    ///
    /// This is how soft keep-masks modulate token embeddings during
    /// selector training.
    pub fn mul_col_broadcast(&mut self, a: Var, m: Var) -> Var {
        let value = self.value(a).scale_rows(self.value(m).data());
        self.push(value, Op::MulColBroadcast(a, m))
    }

    /// Divides row `r` of rank-2 `a` by `m[r]` (`m` rank-1).
    pub fn div_col_broadcast(&mut self, a: Var, m: Var) -> Var {
        let inv: Vec<f32> = self.value(m).data().iter().map(|&x| 1.0 / x).collect();
        let value = self.value(a).scale_rows(&inv);
        self.push(value, Op::DivColBroadcast(a, m))
    }

    /// Adds a constant tensor (no gradient to the constant) — e.g. an
    /// additive attention mask or Gumbel noise.
    pub fn add_const(&mut self, a: Var, c: Tensor) -> Var {
        let value = self.value(a).add(&c);
        self.push(value, Op::AddConst(a, c))
    }

    /// Multiplies by a constant tensor elementwise (no gradient to it).
    pub fn mul_const(&mut self, a: Var, c: Tensor) -> Var {
        let value = self.value(a).mul(&c);
        self.push(value, Op::MulConst(a, c))
    }

    // ----- linear algebra ---------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::Matmul(a, b))
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose2();
        self.push(value, Op::Transpose(a))
    }

    /// Shape change preserving elements.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let in_dims = self.dims(a).to_vec();
        let value = self.value(a).reshape(dims);
        self.push(value, Op::Reshape(a, in_dims))
    }

    // ----- nonlinearities ----------------------------------------------

    /// Exact GELU.
    pub fn gelu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(heatvit_tensor::scalar::gelu);
        self.push(value, Op::Gelu(a))
    }

    /// ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(heatvit_tensor::scalar::relu);
        self.push(value, Op::Relu(a))
    }

    /// Hardswish.
    pub fn hardswish(&mut self, a: Var) -> Var {
        let value = self.value(a).map(heatvit_tensor::scalar::hardswish);
        self.push(value, Op::Hardswish(a))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).map(heatvit_tensor::scalar::sigmoid);
        self.push(value, Op::Sigmoid(a))
    }

    /// Natural logarithm, with inputs clamped to `1e-12` for stability
    /// (the Gumbel-Softmax log-probability path).
    pub fn ln(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(LN_CLAMP).ln());
        self.push(value, Op::Ln(a))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        self.push(value, Op::SoftmaxRows(a))
    }

    /// Layer normalization over each row with affine parameters.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xv = self.value(x);
        let gv = self.value(gamma);
        let bv = self.value(beta);
        let (rows, cols) = (xv.dim(0), xv.dim(1));
        let (means, vars) = xv.row_mean_var();
        let mut out = Tensor::zeros(&[rows, cols]);
        for r in 0..rows {
            let inv_std = 1.0 / (vars[r] + eps).sqrt();
            let xrow = xv.row(r);
            let orow = out.row_mut(r);
            for j in 0..cols {
                orow[j] = (xrow[j] - means[r]) * inv_std * gv.data()[j] + bv.data()[j];
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            },
        )
    }

    // ----- reductions & structure ---------------------------------------

    /// Column means `[N,D] → [1,D]`.
    pub fn mean_cols_keep(&mut self, a: Var) -> Var {
        let m = self.value(a).mean_cols();
        let cols = m.dim(0);
        let value = m.reshape(&[1, cols]);
        self.push(value, Op::MeanColsKeep(a))
    }

    /// Row means `[N,D] → [N,1]`.
    pub fn mean_rows_keep(&mut self, a: Var) -> Var {
        let m = self.value(a).mean_rows();
        let rows = m.dim(0);
        let value = m.reshape(&[rows, 1]);
        self.push(value, Op::MeanRowsKeep(a))
    }

    /// Tiles a `[1,D]` row `n` times.
    pub fn repeat_rows(&mut self, a: Var, n: usize) -> Var {
        let av = self.value(a);
        assert_eq!(av.dim(0), 1, "repeat_rows expects a [1, D] input");
        let cols = av.dim(1);
        let mut data = Vec::with_capacity(n * cols);
        for _ in 0..n {
            data.extend_from_slice(av.data());
        }
        let value = Tensor::from_vec(data, &[n, cols]);
        self.push(value, Op::RepeatRows(a, n))
    }

    /// Concatenates along rows.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Tensor::concat_rows(&tensors);
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Concatenates along columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Tensor::concat_cols(&tensors);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Column slice `[start, end)`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let value = self.value(a).slice_cols(start, end);
        self.push(value, Op::SliceCols(a, start, end))
    }

    /// Row slice `[start, end)`.
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let value = self.value(a).slice_rows(start, end);
        self.push(value, Op::SliceRows(a, start, end))
    }

    /// Row gather (dense token repacking).
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let value = self.value(a).gather_rows(indices);
        self.push(value, Op::GatherRows(a, indices.to_vec()))
    }

    /// Mean of all elements `→ [1]`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(vec![self.value(a).mean_all()], &[1]);
        self.push(value, Op::MeanAll(a))
    }

    /// Sum of all elements `→ [1]`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(vec![self.value(a).sum_all()], &[1]);
        self.push(value, Op::SumAll(a))
    }

    // ----- losses --------------------------------------------------------

    /// Mean cross-entropy from logits `[B, C]` against integer targets.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.dim(0)` or a target is out of
    /// range.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = self.value(logits);
        assert_eq!(lv.dim(0), targets.len(), "one target per row required");
        let probs = lv.softmax_rows();
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < lv.dim(1), "target class out of range");
            loss -= probs.at(&[r, t]).max(1e-12).ln();
        }
        loss /= targets.len() as f32;
        self.push(
            Tensor::from_vec(vec![loss], &[1]),
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    /// Distillation loss `T²·KL(teacher ‖ softmax(student/T))`, mean over
    /// rows (paper Eq. 21 uses the DeiT distillation term).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `temperature <= 0`.
    pub fn distill_kl(&mut self, student: Var, teacher_probs: Tensor, temperature: f32) -> Var {
        assert!(temperature > 0.0, "temperature must be positive");
        let sv = self.value(student);
        assert_eq!(sv.dims(), teacher_probs.dims(), "student/teacher shapes");
        let q = sv.scale(1.0 / temperature).softmax_rows();
        let batch = sv.dim(0) as f32;
        let mut loss = 0.0f32;
        for r in 0..sv.dim(0) {
            for (p, qv) in teacher_probs.row(r).iter().zip(q.row(r).iter()) {
                if *p > 0.0 {
                    loss += p * (p.max(1e-12).ln() - qv.max(1e-12).ln());
                }
            }
        }
        loss *= temperature * temperature / batch;
        self.push(
            Tensor::from_vec(vec![loss], &[1]),
            Op::DistillKl {
                student,
                teacher_probs,
                temperature,
                student_probs: q,
            },
        )
    }

    /// Mean squared error to a constant target.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&mut self, x: Var, target: Tensor) -> Var {
        let xv = self.value(x);
        assert_eq!(xv.dims(), target.dims(), "mse shapes must match");
        let loss = xv.sub(&target).map(|d| d * d).mean_all();
        self.push(Tensor::from_vec(vec![loss], &[1]), Op::Mse { x, target })
    }

    // ----- backward --------------------------------------------------------

    /// Runs reverse-mode differentiation from `loss` (a `[1]` node).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).numel(),
            1,
            "backward expects a scalar loss node"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::from_vec(vec![1.0], &[1]));
        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            let Some(grad) = grads[i].clone() else {
                continue;
            };
            let node = &self.nodes[i];
            for (parent, g) in node.op.backward(self, &node.value, &grad) {
                if !self.nodes[parent.0].requires_grad {
                    continue;
                }
                match &mut grads[parent.0] {
                    Some(acc) => *acc = acc.add(&g),
                    slot => *slot = Some(g),
                }
            }
        }
        Gradients { grads }
    }

    /// Accumulates gradients into the matching parameters.
    ///
    /// Parameters not used on this tape are left untouched; a parameter used
    /// several times receives the sum of all its contributions.
    pub fn write_grads(&self, grads: &Gradients, params: Vec<&mut Param>) {
        for p in params {
            for (pid, var) in &self.bindings {
                if *pid == p.id() {
                    if let Some(g) = grads.get(*var) {
                        p.accumulate_grad(g);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_nodes_get_no_grad() {
        let mut tape = Tape::new();
        let c = tape.constant(Tensor::ones(&[2]));
        let l = tape.leaf(Tensor::ones(&[2]));
        let s = tape.mul(c, l);
        let loss = tape.sum_all(s);
        let grads = tape.backward(loss);
        assert!(grads.get(c).is_none());
        assert_eq!(grads.get(l).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // loss = sum(x + x) → dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[3]));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[2.0; 3]);
    }

    #[test]
    fn detach_stops_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(&[1], 3.0));
        let d = tape.detach(x);
        let y = tape.mul(x, d); // y = x·const(3)
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(x).unwrap().data(), &[3.0]); // not 6
    }

    #[test]
    fn write_grads_routes_by_param_id() {
        let p = Param::new("w", Tensor::ones(&[2]));
        let mut q = Param::new("unused", Tensor::ones(&[2]));
        let mut tape = Tape::new();
        let w = tape.param(&p);
        let loss = tape.sum_all(w);
        let grads = tape.backward(loss);
        let mut p = p;
        tape.write_grads(&grads, vec![&mut p, &mut q]);
        assert_eq!(p.grad().unwrap().data(), &[1.0, 1.0]);
        assert!(q.grad().is_none());
    }

    #[test]
    fn frozen_param_is_recorded_as_constant() {
        let p = Param::new("backbone.w", Tensor::ones(&[2, 2]));
        let mut tape = Tape::new();
        tape.freeze_params([p.id()]);
        assert!(tape.is_frozen(p.id()));
        let w = tape.param(&p);
        assert!(!tape.requires_grad(w));
        let x = tape.leaf(Tensor::ones(&[1, 2]));
        let y = tape.matmul(x, w);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        // No weight gradient, but the activation gradient still flows.
        assert!(grads.get(w).is_none());
        assert_eq!(grads.get(x).unwrap().data(), &[2.0, 2.0]);
        let mut p = p;
        tape.write_grads(&grads, vec![&mut p]);
        assert!(p.grad().is_none());
    }

    #[test]
    fn freezing_one_param_leaves_other_grads_bitwise_identical() {
        let w1 = Param::new(
            "selector.w",
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25], &[2, 2]),
        );
        let w2 = Param::new(
            "backbone.w",
            Tensor::from_vec(vec![1.5, 0.5, -0.5, 1.0], &[2, 2]),
        );
        let x = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5], &[2, 2]);

        let run = |freeze: bool| {
            let mut tape = Tape::new();
            if freeze {
                tape.freeze_params([w2.id()]);
            }
            let xv = tape.constant(x.clone());
            let a = tape.param(&w1);
            let b = tape.param(&w2);
            let h = tape.matmul(xv, a);
            let h = tape.gelu(h);
            let y = tape.matmul(h, b);
            let loss = tape.mean_all(y);
            let grads = tape.backward(loss);
            (grads.get(a).cloned(), grads.get(b).cloned())
        };
        let (g1_full, g2_full) = run(false);
        let (g1_frozen, g2_frozen) = run(true);
        assert!(g2_full.is_some());
        assert!(g2_frozen.is_none(), "frozen weight must get no gradient");
        // The surviving gradient is bitwise identical — freezing only skips
        // work, it never changes arithmetic.
        assert_eq!(g1_frozen.unwrap().data(), g1_full.unwrap().data(),);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(vec![2.0, 0.0, -1.0], &[1, 3]));
        let loss = tape.cross_entropy(logits, &[0]);
        let probs = Tensor::from_vec(vec![2.0, 0.0, -1.0], &[1, 3]).softmax_rows();
        let expect = -probs.at(&[0, 0]).ln();
        assert!((tape.value(loss).data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[2]));
        tape.backward(x);
    }
}
