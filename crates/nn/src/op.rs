//! The differentiable operation set and its backward rules.
//!
//! Each [`Op`] variant records the parent [`Var`]s plus whatever constants the
//! backward rule needs. The rules themselves live in [`Op::backward`], which
//! maps an upstream gradient to `(parent, gradient)` contributions. The set is
//! exactly what the HeatViT stack needs: GEMM-shaped linear algebra, the ViT
//! nonlinearities, row/column broadcasts for token masks and head weighting,
//! structural ops for head split/merge and token gathering, and fused losses.

use crate::tape::{Tape, Var};
use heatvit_tensor::{scalar, Tensor};

/// A recorded differentiable operation.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input node; `requires_grad` distinguishes parameters from constants.
    Leaf,
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// Elementwise `a - b`.
    Sub(Var, Var),
    /// Elementwise `a * b`.
    Mul(Var, Var),
    /// `a * s` for scalar `s`.
    Scale(Var, f32),
    /// `a + s` for scalar `s`. The scalar is recorded for completeness of
    /// the op log only — the backward rule is identity, so it is never read.
    #[allow(dead_code)]
    AddScalar(Var, f32),
    /// `x[N,D] + bias[D]` broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// `x[N,D] * m[N]` broadcast over columns.
    MulColBroadcast(Var, Var),
    /// `x[N,D] / m[N]` broadcast over columns.
    DivColBroadcast(Var, Var),
    /// Matrix product `a · b`.
    Matmul(Var, Var),
    /// Matrix transpose.
    Transpose(Var),
    /// Shape change preserving elements; stores the *input* dims for backward.
    Reshape(Var, Vec<usize>),
    /// Exact GELU.
    Gelu(Var),
    /// ReLU.
    Relu(Var),
    /// Hardswish.
    Hardswish(Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Natural logarithm of inputs clamped to `[LN_CLAMP, ∞)`.
    Ln(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Fused layer normalization over rows with affine `gamma`/`beta`.
    LayerNorm {
        /// Normalized input `[N, D]`.
        x: Var,
        /// Scale `[D]`.
        gamma: Var,
        /// Shift `[D]`.
        beta: Var,
        /// Variance stabilizer.
        eps: f32,
    },
    /// Column means: `[N, D] → [1, D]`.
    MeanColsKeep(Var),
    /// Row means: `[N, D] → [N, 1]`.
    MeanRowsKeep(Var),
    /// Tile a `[1, D]` row `n` times: `→ [n, D]`.
    RepeatRows(Var, usize),
    /// Row-wise concatenation.
    ConcatRows(Vec<Var>),
    /// Column-wise concatenation.
    ConcatCols(Vec<Var>),
    /// Column slice `[start, end)`.
    SliceCols(Var, usize, usize),
    /// Row slice `[start, end)`.
    SliceRows(Var, usize, usize),
    /// Row gather by index (dense token repacking).
    GatherRows(Var, Vec<usize>),
    /// Mean over all elements `→ [1]`.
    MeanAll(Var),
    /// Sum over all elements `→ [1]`.
    SumAll(Var),
    /// `a + c` for a constant tensor `c` (no gradient to `c`). The constant
    /// is recorded for completeness of the op log only — the backward rule
    /// is identity, so it is never read.
    #[allow(dead_code)]
    AddConst(Var, Tensor),
    /// `a * c` elementwise for a constant tensor `c` (no gradient to `c`).
    MulConst(Var, Tensor),
    /// Fused mean cross-entropy from logits; saves the softmax for backward.
    CrossEntropy {
        /// Logits `[B, C]`.
        logits: Var,
        /// Target class per row.
        targets: Vec<usize>,
        /// Saved `softmax(logits)`.
        probs: Tensor,
    },
    /// Fused distillation loss `T²·KL(p ‖ softmax(s/T))`, mean over rows.
    DistillKl {
        /// Student logits `[B, C]`.
        student: Var,
        /// Constant teacher probabilities `[B, C]`.
        teacher_probs: Tensor,
        /// Distillation temperature.
        temperature: f32,
        /// Saved `softmax(student/T)`.
        student_probs: Tensor,
    },
    /// Fused mean-squared-error to a constant target.
    Mse {
        /// Prediction.
        x: Var,
        /// Constant target of the same shape.
        target: Tensor,
    },
}

impl Op {
    /// Parent variables of this operation.
    pub(crate) fn parents(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => vec![*a, *b],
            Op::Scale(a, _) | Op::AddScalar(a, _) => vec![*a],
            Op::AddRowBroadcast(a, b)
            | Op::MulColBroadcast(a, b)
            | Op::DivColBroadcast(a, b)
            | Op::Matmul(a, b) => vec![*a, *b],
            Op::Transpose(a) | Op::Reshape(a, _) => vec![*a],
            Op::Gelu(a) | Op::Relu(a) | Op::Hardswish(a) | Op::Sigmoid(a) | Op::Ln(a) => {
                vec![*a]
            }
            Op::SoftmaxRows(a) => vec![*a],
            Op::LayerNorm { x, gamma, beta, .. } => vec![*x, *gamma, *beta],
            Op::MeanColsKeep(a) | Op::MeanRowsKeep(a) | Op::RepeatRows(a, _) => vec![*a],
            Op::ConcatRows(vs) | Op::ConcatCols(vs) => vs.clone(),
            Op::SliceCols(a, _, _) | Op::SliceRows(a, _, _) | Op::GatherRows(a, _) => vec![*a],
            Op::MeanAll(a) | Op::SumAll(a) => vec![*a],
            Op::AddConst(a, _) | Op::MulConst(a, _) => vec![*a],
            Op::CrossEntropy { logits, .. } => vec![*logits],
            Op::DistillKl { student, .. } => vec![*student],
            Op::Mse { x, .. } => vec![*x],
        }
    }

    /// Computes `(parent, gradient)` contributions given the upstream
    /// gradient `grad` and this node's forward `value`.
    pub(crate) fn backward(
        &self,
        tape: &Tape,
        value: &Tensor,
        grad: &Tensor,
    ) -> Vec<(Var, Tensor)> {
        match self {
            Op::Leaf => vec![],
            Op::Add(a, b) => vec![(*a, grad.clone()), (*b, grad.clone())],
            Op::Sub(a, b) => vec![(*a, grad.clone()), (*b, grad.scale(-1.0))],
            Op::Mul(a, b) => {
                let mut out = Vec::with_capacity(2);
                if tape.requires_grad(*a) {
                    out.push((*a, grad.mul(tape.value(*b))));
                }
                if tape.requires_grad(*b) {
                    out.push((*b, grad.mul(tape.value(*a))));
                }
                out
            }
            Op::Scale(a, s) => vec![(*a, grad.scale(*s))],
            Op::AddScalar(a, _) => vec![(*a, grad.clone())],
            Op::AddRowBroadcast(a, b) => {
                let mut out = Vec::with_capacity(2);
                if tape.requires_grad(*a) {
                    out.push((*a, grad.clone()));
                }
                if tape.requires_grad(*b) {
                    let rows = grad.dim(0) as f32;
                    out.push((*b, grad.mean_cols().scale(rows)));
                }
                out
            }
            Op::MulColBroadcast(a, b) => {
                let av = tape.value(*a);
                let bv = tape.value(*b);
                let ga = grad.scale_rows(bv.data());
                let gb = grad.mul(av).sum_rows();
                vec![(*a, ga), (*b, gb)]
            }
            Op::DivColBroadcast(a, b) => {
                let av = tape.value(*a);
                let bv = tape.value(*b);
                let inv: Vec<f32> = bv.data().iter().map(|&m| 1.0 / m).collect();
                let ga = grad.scale_rows(&inv);
                let neg_inv_sq: Vec<f32> = bv.data().iter().map(|&m| -1.0 / (m * m)).collect();
                let gb_raw = grad.mul(av).sum_rows();
                let gb = Tensor::from_vec(
                    gb_raw
                        .data()
                        .iter()
                        .zip(neg_inv_sq.iter())
                        .map(|(&g, &c)| g * c)
                        .collect(),
                    gb_raw.dims(),
                );
                vec![(*a, ga), (*b, gb)]
            }
            Op::Matmul(a, b) => {
                // dA = G·Bᵀ, dB = Aᵀ·G. Each side is computed only when its
                // parent requires a gradient: with a frozen weight matrix the
                // expensive Aᵀ·G weight-gradient GEMM is skipped entirely,
                // and with a constant activation (e.g. the input batch) the
                // G·Bᵀ product is. Both run on the packed microkernel —
                // `matmul_transa` gathers A column tiles in place of an
                // explicit transpose, bit-identical to the two-step form.
                let av = tape.value(*a);
                let bv = tape.value(*b);
                let mut out = Vec::with_capacity(2);
                if tape.requires_grad(*a) {
                    out.push((*a, grad.matmul_transb(bv)));
                }
                if tape.requires_grad(*b) {
                    out.push((*b, av.matmul_transa(grad)));
                }
                out
            }
            Op::Transpose(a) => vec![(*a, grad.transpose2())],
            Op::Reshape(a, in_dims) => vec![(*a, grad.reshape(in_dims))],
            Op::Gelu(a) => {
                let av = tape.value(*a);
                let ga = grad.zip_map(av, |g, x| g * scalar::gelu_derivative(x));
                vec![(*a, ga)]
            }
            Op::Relu(a) => {
                let av = tape.value(*a);
                let ga = grad.zip_map(av, |g, x| g * scalar::relu_derivative(x));
                vec![(*a, ga)]
            }
            Op::Hardswish(a) => {
                let av = tape.value(*a);
                let ga = grad.zip_map(av, |g, x| g * scalar::hardswish_derivative(x));
                vec![(*a, ga)]
            }
            Op::Sigmoid(a) => {
                // σ' expressed from the saved output: σ(1−σ).
                let ga = grad.zip_map(value, |g, s| g * s * (1.0 - s));
                vec![(*a, ga)]
            }
            Op::Ln(a) => {
                let av = tape.value(*a);
                let ga = grad.zip_map(av, |g, x| g / x.max(crate::tape::LN_CLAMP));
                vec![(*a, ga)]
            }
            Op::SoftmaxRows(a) => {
                let s = value;
                let cols = s.dim(1);
                let mut gx = grad.mul(s);
                for r in 0..s.dim(0) {
                    let dot: f32 = gx.row(r).iter().sum();
                    let srow = s.row(r).to_vec();
                    let grow = gx.row_mut(r);
                    for j in 0..cols {
                        grow[j] -= dot * srow[j];
                    }
                }
                vec![(*a, gx)]
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
            } => {
                let xv = tape.value(*x);
                let gv = tape.value(*gamma);
                let (rows, cols) = (xv.dim(0), xv.dim(1));
                let (means, vars) = xv.row_mean_var();
                // Skip the affine-parameter accumulations when gamma/beta
                // are frozen (the common case under frozen-backbone
                // training — gradients still flow through to `x`).
                let need_affine = tape.requires_grad(*gamma) || tape.requires_grad(*beta);
                let mut gx = Tensor::zeros(&[rows, cols]);
                let mut ggamma = vec![0.0f32; cols];
                let mut gbeta = vec![0.0f32; cols];
                for r in 0..rows {
                    let inv_std = 1.0 / (vars[r] + eps).sqrt();
                    let xrow = xv.row(r);
                    let grow = grad.row(r);
                    // x̂ and the two row means the dx formula needs.
                    let xhat: Vec<f32> = xrow.iter().map(|&v| (v - means[r]) * inv_std).collect();
                    let gg: Vec<f32> = grow
                        .iter()
                        .zip(gv.data().iter())
                        .map(|(&g, &gm)| g * gm)
                        .collect();
                    let mean_gg: f32 = gg.iter().sum::<f32>() / cols as f32;
                    let mean_gg_xhat: f32 = gg
                        .iter()
                        .zip(xhat.iter())
                        .map(|(&a, &b)| a * b)
                        .sum::<f32>()
                        / cols as f32;
                    let gxrow = gx.row_mut(r);
                    for j in 0..cols {
                        gxrow[j] = inv_std * (gg[j] - mean_gg - xhat[j] * mean_gg_xhat);
                    }
                    if need_affine {
                        for j in 0..cols {
                            ggamma[j] += grow[j] * xhat[j];
                            gbeta[j] += grow[j];
                        }
                    }
                }
                let mut out = vec![(*x, gx)];
                if need_affine {
                    out.push((*gamma, Tensor::from_vec(ggamma, &[cols])));
                    out.push((*beta, Tensor::from_vec(gbeta, &[cols])));
                }
                out
            }
            Op::MeanColsKeep(a) => {
                let rows = tape.value(*a).dim(0);
                let cols = grad.dim(1);
                let scaled = grad.scale(1.0 / rows as f32);
                let mut data = Vec::with_capacity(rows * cols);
                for _ in 0..rows {
                    data.extend_from_slice(scaled.data());
                }
                vec![(*a, Tensor::from_vec(data, &[rows, cols]))]
            }
            Op::MeanRowsKeep(a) => {
                let av = tape.value(*a);
                let (rows, cols) = (av.dim(0), av.dim(1));
                let g = Tensor::from_fn(&[rows, cols], |ix| grad.at(&[ix[0], 0]) / cols as f32);
                vec![(*a, g)]
            }
            Op::RepeatRows(a, n) => {
                let cols = grad.dim(1);
                let gsum = grad.mean_cols().scale(*n as f32);
                vec![(*a, gsum.reshape(&[1, cols]))]
            }
            Op::ConcatRows(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                let mut start = 0;
                for &p in parts {
                    let rows = tape.value(p).dim(0);
                    out.push((p, grad.slice_rows(start, start + rows)));
                    start += rows;
                }
                out
            }
            Op::ConcatCols(parts) => {
                let mut out = Vec::with_capacity(parts.len());
                let mut start = 0;
                for &p in parts {
                    let cols = tape.value(p).dim(1);
                    out.push((p, grad.slice_cols(start, start + cols)));
                    start += cols;
                }
                out
            }
            Op::SliceCols(a, start, end) => {
                let av = tape.value(*a);
                let mut ga = Tensor::zeros(&[av.dim(0), av.dim(1)]);
                for r in 0..av.dim(0) {
                    let grow = grad.row(r).to_vec();
                    ga.row_mut(r)[*start..*end].copy_from_slice(&grow);
                }
                vec![(*a, ga)]
            }
            Op::SliceRows(a, start, _end) => {
                let av = tape.value(*a);
                let cols = av.dim(1);
                let mut ga = Tensor::zeros(&[av.dim(0), cols]);
                for r in 0..grad.dim(0) {
                    let grow = grad.row(r).to_vec();
                    ga.row_mut(start + r).copy_from_slice(&grow);
                }
                vec![(*a, ga)]
            }
            Op::GatherRows(a, indices) => {
                let rows = tape.value(*a).dim(0);
                vec![(*a, Tensor::scatter_rows(grad, indices, rows))]
            }
            Op::MeanAll(a) => {
                let av = tape.value(*a);
                let g0 = grad.data()[0] / av.numel() as f32;
                vec![(*a, Tensor::full(av.dims(), g0))]
            }
            Op::SumAll(a) => {
                let av = tape.value(*a);
                vec![(*a, Tensor::full(av.dims(), grad.data()[0]))]
            }
            Op::AddConst(a, _) => vec![(*a, grad.clone())],
            Op::MulConst(a, c) => vec![(*a, grad.mul(c))],
            Op::CrossEntropy {
                logits,
                targets,
                probs,
                ..
            } => {
                let batch = targets.len() as f32;
                let g0 = grad.data()[0];
                let mut glogits = probs.scale(g0 / batch);
                for (r, &t) in targets.iter().enumerate() {
                    let v = glogits.at(&[r, t]);
                    glogits.set(&[r, t], v - g0 / batch);
                }
                vec![(*logits, glogits)]
            }
            Op::DistillKl {
                student,
                teacher_probs,
                temperature,
                student_probs,
            } => {
                let batch = teacher_probs.dim(0) as f32;
                let g0 = grad.data()[0];
                // d/ds [T²·KL(p‖softmax(s/T))] = T·(q − p)
                let gs = student_probs
                    .sub(teacher_probs)
                    .scale(g0 * *temperature / batch);
                vec![(*student, gs)]
            }
            Op::Mse { x, target } => {
                let xv = tape.value(*x);
                let g0 = grad.data()[0];
                let gx = xv.sub(target).scale(2.0 * g0 / xv.numel() as f32);
                vec![(*x, gx)]
            }
        }
    }
}
