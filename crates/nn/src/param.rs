//! Trainable parameters and the module trait.

use heatvit_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

/// A trainable tensor: value plus accumulated gradient.
///
/// Every `Param` carries a process-unique id so that optimizers can keep
/// per-parameter state (momentum, Adam moments) across steps, and so the
/// [`Tape`](crate::Tape) can route gradients back after `backward`.
///
/// # Examples
///
/// ```
/// use heatvit_nn::Param;
/// use heatvit_tensor::Tensor;
///
/// let mut p = Param::new("w", Tensor::zeros(&[2, 2]));
/// assert!(p.grad().is_none());
/// p.accumulate_grad(&Tensor::ones(&[2, 2]));
/// p.accumulate_grad(&Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad().unwrap().data(), &[2.0; 4]);
/// p.zero_grad();
/// assert!(p.grad().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct Param {
    id: u64,
    name: String,
    value: Tensor,
    grad: Option<Tensor>,
}

impl Param {
    /// Creates a parameter with a fresh unique id.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Self {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            name: name.into(),
            value,
            grad: None,
        }
    }

    /// The process-unique parameter id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the value (used by optimizers and weight loading).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// The accumulated gradient, if any backward pass has produced one.
    pub fn grad(&self) -> Option<&Tensor> {
        self.grad.as_ref()
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s shape differs from the parameter's.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        assert_eq!(
            g.dims(),
            self.value.dims(),
            "gradient shape must match parameter shape"
        );
        match &mut self.grad {
            Some(acc) => *acc = acc.add(g),
            None => self.grad = Some(g.clone()),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = None;
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A container of trainable parameters.
///
/// Implemented by every layer and model in the workspace; composite modules
/// concatenate their children's parameter lists. The two accessors exist so
/// both read-only inspection (parameter counting, weight export) and
/// optimizer updates are possible.
pub trait Module {
    /// Immutable views of all parameters, in a stable order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable views of all parameters, in the same order as [`Module::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Clears gradients on every parameter.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = Param::new("a", Tensor::zeros(&[1]));
        let b = Param::new("b", Tensor::zeros(&[1]));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clone_keeps_id() {
        // Cloning a Param (e.g. snapshotting a teacher model) keeps the id:
        // optimizer state continuity is the caller's concern.
        let a = Param::new("a", Tensor::zeros(&[1]));
        assert_eq!(a.clone().id(), a.id());
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn grad_shape_checked() {
        let mut p = Param::new("p", Tensor::zeros(&[2]));
        p.accumulate_grad(&Tensor::zeros(&[3]));
    }

    #[test]
    fn module_counts_parameters() {
        struct Two(Param, Param);
        impl Module for Two {
            fn params(&self) -> Vec<&Param> {
                vec![&self.0, &self.1]
            }
            fn params_mut(&mut self) -> Vec<&mut Param> {
                vec![&mut self.0, &mut self.1]
            }
        }
        let mut m = Two(
            Param::new("a", Tensor::zeros(&[2, 3])),
            Param::new("b", Tensor::zeros(&[3])),
        );
        assert_eq!(m.num_parameters(), 9);
        m.params_mut()[0].accumulate_grad(&Tensor::ones(&[2, 3]));
        m.zero_grad();
        assert!(m.params()[0].grad().is_none());
    }
}
