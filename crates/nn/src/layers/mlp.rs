//! Two-layer perceptron (the ViT FFN shape).

use crate::layers::{layer_norm_project_into, Activation, LayerNorm, Linear};
use crate::{Module, Param, Tape, Var};
use heatvit_tensor::{GemmScratch, Tensor};
use rand::Rng;

/// A two-layer MLP `x → act(x·W₁ + b₁)·W₂ + b₂`.
///
/// This is both the ViT feed-forward network (hidden = 4×dim) and the basic
/// building block of the token classifier's local/global feature extractors.
///
/// # Examples
///
/// ```
/// use heatvit_nn::layers::{Activation, Mlp};
/// use heatvit_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mlp = Mlp::new(16, 64, 16, Activation::Gelu, &mut rng);
/// let y = mlp.infer(&Tensor::ones(&[2, 16]));
/// assert_eq!(y.dims(), &[2, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    act: Activation,
}

impl Mlp {
    /// Creates an MLP with the given widths and activation.
    pub fn new(
        in_features: usize,
        hidden_features: usize,
        out_features: usize,
        act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            fc1: Linear::new(in_features, hidden_features, true, rng),
            fc2: Linear::new(hidden_features, out_features, true, rng),
            act,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.fc1.in_features()
    }

    /// Hidden width.
    pub fn hidden_features(&self) -> usize {
        self.fc1.out_features()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.fc2.out_features()
    }

    /// The configured activation.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// First linear layer.
    pub fn fc1(&self) -> &Linear {
        &self.fc1
    }

    /// Second linear layer.
    pub fn fc2(&self) -> &Linear {
        &self.fc2
    }

    /// Differentiable forward.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let h = self.fc1.forward(tape, x);
        let h = self.act.forward(tape, h);
        self.fc2.forward(tape, h)
    }

    /// Inference forward (no tape).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let h = self.act.infer(&self.fc1.infer(x));
        self.fc2.infer(&h)
    }

    /// [`Mlp::infer`] reusing a caller-provided hidden buffer and writing
    /// the result into `out` (both reshaped in place; values bit-identical
    /// to the allocating path).
    ///
    /// The `[N, hidden]` intermediate is the largest activation in a ViT
    /// block, so reusing it across a batch is the biggest single win of the
    /// engine's scratch workspace.
    pub fn infer_into(&self, x: &Tensor, hidden: &mut Tensor, out: &mut Tensor) {
        self.fc1.infer_into(x, hidden);
        self.act.apply_inplace(hidden);
        self.fc2.infer_into(hidden, out);
    }

    /// [`Mlp::infer_into`] staging packed weight panels in a caller-owned
    /// [`GemmScratch`]. Values are bit-identical to every other inference
    /// entry point.
    pub fn infer_with(
        &self,
        x: &Tensor,
        gs: &mut GemmScratch,
        hidden: &mut Tensor,
        out: &mut Tensor,
    ) {
        self.fc1.infer_with(x, gs, hidden);
        self.act.apply_inplace(hidden);
        self.fc2.infer_with(hidden, gs, out);
    }

    /// Computes `self.infer(ln.infer(x))` with the layer norm fused into the
    /// first projection: normalized row tiles stream straight into the packed
    /// GEMM microkernel, so the normalized `[N, dim]` activations never
    /// materialize. Bit-identical to the unfused two-step path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, ln.dim()]` or `ln.dim() != in_features`.
    pub fn infer_fused_ln_with(
        &self,
        ln: &LayerNorm,
        x: &Tensor,
        gs: &mut GemmScratch,
        hidden: &mut Tensor,
        out: &mut Tensor,
    ) {
        layer_norm_project_into(ln, &[&self.fc1], x, gs, &mut [hidden]);
        self.act.apply_inplace(hidden);
        self.fc2.infer_with(hidden, gs, out);
    }

    /// Multiply–accumulate count for `n` input rows.
    pub fn macs(&self, n: usize) -> u64 {
        self.fc1.macs(n) + self.fc2.macs(n)
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<&Param> {
        let mut v = self.fc1.params();
        v.extend(self.fc2.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.fc1.params_mut();
        v.extend(self.fc2.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(8, 32, 4, Activation::Gelu, &mut rng);
        assert_eq!(mlp.num_parameters(), 8 * 32 + 32 + 32 * 4 + 4);
        assert_eq!(mlp.infer(&Tensor::ones(&[5, 8])).dims(), &[5, 4]);
    }

    #[test]
    fn forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(6, 12, 6, Activation::Hardswish, &mut rng);
        let x = Tensor::rand_normal(&[3, 6], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = mlp.forward(&mut tape, xv);
        assert!(tape.value(y).allclose(&mlp.infer(&x), 1e-5));
    }

    #[test]
    fn macs_sum_both_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(10, 40, 10, Activation::Gelu, &mut rng);
        assert_eq!(mlp.macs(7), 7 * (10 * 40 + 40 * 10));
    }

    #[test]
    fn scratch_and_fused_ln_paths_are_bitwise_identical() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(12, 48, 12, Activation::Gelu, &mut rng);
        let ln = LayerNorm::new(12);
        let x = Tensor::rand_normal(&[9, 12], 0.0, 1.0, &mut rng);
        let normed = ln.infer(&x);
        let want = mlp.infer(&normed);

        let mut gs = GemmScratch::default();
        let (mut hidden, mut out) = (Tensor::default(), Tensor::default());
        mlp.infer_with(&normed, &mut gs, &mut hidden, &mut out);
        assert_eq!(out.data(), want.data());

        mlp.infer_fused_ln_with(&ln, &x, &mut gs, &mut hidden, &mut out);
        assert_eq!(out.data(), want.data());
    }

    #[test]
    fn gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(4, 8, 2, Activation::Relu, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng));
        let y = mlp.forward(&mut tape, x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        tape.write_grads(&grads, mlp.params_mut());
        for p in mlp.params() {
            assert!(p.grad().is_some(), "missing grad for {}", p.name());
        }
    }
}
