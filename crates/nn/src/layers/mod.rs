//! Neural-network layers: linear, layer normalization, activations, MLP.

mod activation;
mod linear;
mod mlp;
mod norm;

pub use activation::Activation;
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
