//! Neural-network layers: linear, layer normalization, activations, MLP.

mod activation;
mod fused;
mod linear;
mod mlp;
mod norm;

pub use activation::Activation;
pub use fused::{layer_norm_project_into, MAX_FUSED_PROJECTIONS};
pub use linear::Linear;
pub use mlp::Mlp;
pub use norm::LayerNorm;
