//! Activation functions as a pluggable layer.

use crate::{Tape, Var};
use heatvit_tensor::{scalar, Tensor};

/// The activation functions used across HeatViT.
///
/// The paper's selector ablation (Fig. 12) compares GELU against ReLU and
/// Hardswish inside the token classifier, so the activation is a first-class
/// configuration value rather than a hard-coded call.
///
/// # Examples
///
/// ```
/// use heatvit_nn::layers::Activation;
/// use heatvit_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[1, 3]);
/// let y = Activation::Relu.infer(&x);
/// assert_eq!(y.data(), &[0.0, 0.0, 1.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Exact GELU (ViT default).
    #[default]
    Gelu,
    /// Rectified linear unit.
    Relu,
    /// Hardswish (MobileNetV3).
    Hardswish,
    /// Logistic sigmoid.
    Sigmoid,
    /// Pass-through.
    Identity,
}

impl Activation {
    /// Differentiable forward.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Gelu => tape.gelu(x),
            Activation::Relu => tape.relu(x),
            Activation::Hardswish => tape.hardswish(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// Inference forward (no tape).
    pub fn infer(&self, x: &Tensor) -> Tensor {
        match self {
            Activation::Gelu => x.map(scalar::gelu),
            Activation::Relu => x.map(scalar::relu),
            Activation::Hardswish => x.map(scalar::hardswish),
            Activation::Sigmoid => x.map(scalar::sigmoid),
            Activation::Identity => x.clone(),
        }
    }

    /// Applies the activation elementwise in place (the allocation-free
    /// variant of [`Activation::infer`], bit-identical values).
    pub fn apply_inplace(&self, x: &mut Tensor) {
        if let Activation::Identity = self {
            return;
        }
        x.map_inplace(|v| self.apply(v));
    }

    /// Scalar application (used by the quantizer's lookup construction).
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Gelu => scalar::gelu(x),
            Activation::Relu => scalar::relu(x),
            Activation::Hardswish => scalar::hardswish(x),
            Activation::Sigmoid => scalar::sigmoid(x),
            Activation::Identity => x,
        }
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Gelu => "GELU",
            Activation::Relu => "ReLU",
            Activation::Hardswish => "Hardswish",
            Activation::Sigmoid => "Sigmoid",
            Activation::Identity => "Identity",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_matches_tape_forward() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[1, 5]);
        for act in [
            Activation::Gelu,
            Activation::Relu,
            Activation::Hardswish,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = act.forward(&mut tape, xv);
            assert!(
                tape.value(y).allclose(&act.infer(&x), 1e-6),
                "mismatch for {act}"
            );
        }
    }

    #[test]
    fn apply_matches_infer() {
        for act in [Activation::Gelu, Activation::Sigmoid, Activation::Hardswish] {
            let x = Tensor::from_vec(vec![0.3], &[1, 1]);
            assert!((act.apply(0.3) - act.infer(&x).data()[0]).abs() < 1e-7);
        }
    }

    #[test]
    fn default_is_gelu() {
        assert_eq!(Activation::default(), Activation::Gelu);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Gelu.to_string(), "GELU");
        assert_eq!(Activation::Hardswish.to_string(), "Hardswish");
    }
}
