//! Layer normalization.

use crate::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;

/// Layer normalization over the channel (last) dimension with a learnable
/// affine transform.
///
/// In the HeatViT accelerator this is the one component executed on the ARM
/// CPU rather than the FPGA fabric ("less time consuming but more complex to
/// implement", paper Section V); the simulator charges it accordingly.
///
/// # Examples
///
/// ```
/// use heatvit_nn::layers::LayerNorm;
/// use heatvit_tensor::Tensor;
///
/// let ln = LayerNorm::new(4);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
/// let y = ln.infer(&x);
/// // Unit-affine LayerNorm output has zero mean and unit variance per row.
/// assert!(y.mean_all().abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Default variance stabilizer, matching PyTorch's `LayerNorm`.
    pub const DEFAULT_EPS: f32 = 1e-5;

    /// Creates a layer with `gamma = 1`, `beta = 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(format!("layernorm[{dim}].gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("layernorm[{dim}].beta"), Tensor::zeros(&[dim])),
            eps: Self::DEFAULT_EPS,
            dim,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Differentiable forward.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        assert_eq!(tape.dims(x)[1], self.dim, "layernorm width mismatch");
        let g = tape.param(&self.gamma);
        let b = tape.param(&self.beta);
        tape.layer_norm(x, g, b, self.eps)
    }

    /// Inference forward (no tape).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.infer_into(x, &mut out);
        out
    }

    /// [`LayerNorm::infer`] writing into a caller-provided output tensor
    /// (reshaped in place, values bit-identical to the allocating path).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]`.
    pub fn infer_into(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.dim(1), self.dim, "layernorm width mismatch");
        let (rows, cols) = (x.dim(0), x.dim(1));
        let (means, vars) = x.row_mean_var();
        let g = self.gamma.value().data();
        let b = self.beta.value().data();
        out.reset_zeroed(&[rows, cols]);
        for r in 0..rows {
            let inv_std = 1.0 / (vars[r] + self.eps).sqrt();
            let xrow = x.row(r);
            let orow = out.row_mut(r);
            for j in 0..cols {
                orow[j] = (xrow[j] - means[r]) * inv_std * g[j] + b[j];
            }
        }
    }

    /// Streams the normalized rows of `x` through `consume` in tiles of up
    /// to `rows_per_tile` rows, without materializing the full `[N, dim]`
    /// output.
    ///
    /// `consume(r0, nr, tile)` receives the first row index, the number of
    /// rows in this tile, and `nr` contiguous normalized rows. `tile_buf` is
    /// the staging buffer (resized in place, reused across calls). The
    /// per-element arithmetic is exactly that of [`LayerNorm::infer_into`],
    /// so fused consumers see bit-identical values — this is the entry point
    /// of the fused layer-norm + projection paths, which feed each tile
    /// straight into the packed GEMM microkernel instead of round-tripping
    /// the normalized activations through a `[N, dim]` temporary.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]` or `rows_per_tile` is zero.
    pub fn infer_tiles<F>(
        &self,
        x: &Tensor,
        rows_per_tile: usize,
        tile_buf: &mut Vec<f32>,
        mut consume: F,
    ) where
        F: FnMut(usize, usize, &[f32]),
    {
        assert_eq!(x.dim(1), self.dim, "layernorm width mismatch");
        assert!(rows_per_tile > 0, "tile height must be positive");
        let (rows, cols) = (x.dim(0), x.dim(1));
        let (means, vars) = x.row_mean_var();
        let g = self.gamma.value().data();
        let b = self.beta.value().data();
        tile_buf.clear();
        tile_buf.resize(rows_per_tile * cols, 0.0);
        let mut r0 = 0;
        while r0 < rows {
            let nr = rows_per_tile.min(rows - r0);
            for r in 0..nr {
                let inv_std = 1.0 / (vars[r0 + r] + self.eps).sqrt();
                let xrow = x.row(r0 + r);
                let trow = &mut tile_buf[r * cols..(r + 1) * cols];
                for j in 0..cols {
                    trow[j] = (xrow[j] - means[r0 + r]) * inv_std * g[j] + b[j];
                }
            }
            consume(r0, nr, &tile_buf[..nr * cols]);
            r0 += nr;
        }
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows() {
        let ln = LayerNorm::new(8);
        let x = Tensor::from_fn(&[3, 8], |ix| (ix[0] * 8 + ix[1]) as f32);
        let y = ln.infer(&x);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn forward_matches_infer() {
        let ln = LayerNorm::new(5);
        let x = Tensor::from_fn(&[2, 5], |ix| ix[1] as f32 * 0.7 - 1.0);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = ln.forward(&mut tape, xv);
        assert!(tape.value(y).allclose(&ln.infer(&x), 1e-6));
    }

    #[test]
    fn constant_row_maps_to_beta() {
        let ln = LayerNorm::new(4);
        let x = Tensor::full(&[1, 4], 5.0);
        let y = ln.infer(&x);
        // Zero variance → x̂ = 0 → output = beta = 0.
        assert!(y.data().iter().all(|&v| v.abs() < 1e-2));
    }

    #[test]
    fn infer_tiles_is_bitwise_identical_to_infer_into() {
        let mut ln = LayerNorm::new(7);
        // Non-trivial affine so gamma/beta actually participate.
        for (j, v) in ln.params_mut()[0]
            .value_mut()
            .data_mut()
            .iter_mut()
            .enumerate()
        {
            *v = 0.5 + j as f32 * 0.25;
        }
        let x = Tensor::from_fn(&[9, 7], |ix| (ix[0] * 7 + ix[1]) as f32 * 0.3 - 5.0);
        let expect = ln.infer(&x);
        for tile_rows in [1, 2, 4, 9, 16] {
            let mut buf = Vec::new();
            let mut got = vec![0.0f32; 0];
            ln.infer_tiles(&x, tile_rows, &mut buf, |_r0, _nr, tile| {
                got.extend_from_slice(tile);
            });
            assert_eq!(got, expect.data(), "tile height {tile_rows}");
        }
    }

    #[test]
    fn has_two_parameter_tensors() {
        let ln = LayerNorm::new(16);
        assert_eq!(ln.params().len(), 2);
        assert_eq!(ln.num_parameters(), 32);
    }
}
