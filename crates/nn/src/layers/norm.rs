//! Layer normalization.

use crate::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;

/// Layer normalization over the channel (last) dimension with a learnable
/// affine transform.
///
/// In the HeatViT accelerator this is the one component executed on the ARM
/// CPU rather than the FPGA fabric ("less time consuming but more complex to
/// implement", paper Section V); the simulator charges it accordingly.
///
/// # Examples
///
/// ```
/// use heatvit_nn::layers::LayerNorm;
/// use heatvit_tensor::Tensor;
///
/// let ln = LayerNorm::new(4);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
/// let y = ln.infer(&x);
/// // Unit-affine LayerNorm output has zero mean and unit variance per row.
/// assert!(y.mean_all().abs() < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Default variance stabilizer, matching PyTorch's `LayerNorm`.
    pub const DEFAULT_EPS: f32 = 1e-5;

    /// Creates a layer with `gamma = 1`, `beta = 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(format!("layernorm[{dim}].gamma"), Tensor::ones(&[dim])),
            beta: Param::new(format!("layernorm[{dim}].beta"), Tensor::zeros(&[dim])),
            eps: Self::DEFAULT_EPS,
            dim,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Differentiable forward.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        assert_eq!(tape.dims(x)[1], self.dim, "layernorm width mismatch");
        let g = tape.param(&self.gamma);
        let b = tape.param(&self.beta);
        tape.layer_norm(x, g, b, self.eps)
    }

    /// Inference forward (no tape).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.infer_into(x, &mut out);
        out
    }

    /// [`LayerNorm::infer`] writing into a caller-provided output tensor
    /// (reshaped in place, values bit-identical to the allocating path).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, dim]`.
    pub fn infer_into(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.dim(1), self.dim, "layernorm width mismatch");
        let (rows, cols) = (x.dim(0), x.dim(1));
        let (means, vars) = x.row_mean_var();
        let g = self.gamma.value().data();
        let b = self.beta.value().data();
        out.reset_zeroed(&[rows, cols]);
        for r in 0..rows {
            let inv_std = 1.0 / (vars[r] + self.eps).sqrt();
            let xrow = x.row(r);
            let orow = out.row_mut(r);
            for j in 0..cols {
                orow[j] = (xrow[j] - means[r]) * inv_std * g[j] + b[j];
            }
        }
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows() {
        let ln = LayerNorm::new(8);
        let x = Tensor::from_fn(&[3, 8], |ix| (ix[0] * 8 + ix[1]) as f32);
        let y = ln.infer(&x);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn forward_matches_infer() {
        let ln = LayerNorm::new(5);
        let x = Tensor::from_fn(&[2, 5], |ix| ix[1] as f32 * 0.7 - 1.0);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = ln.forward(&mut tape, xv);
        assert!(tape.value(y).allclose(&ln.infer(&x), 1e-6));
    }

    #[test]
    fn constant_row_maps_to_beta() {
        let ln = LayerNorm::new(4);
        let x = Tensor::full(&[1, 4], 5.0);
        let y = ln.infer(&x);
        // Zero variance → x̂ = 0 → output = beta = 0.
        assert!(y.data().iter().all(|&v| v.abs() < 1e-2));
    }

    #[test]
    fn has_two_parameter_tensors() {
        let ln = LayerNorm::new(16);
        assert_eq!(ln.params().len(), 2);
        assert_eq!(ln.num_parameters(), 32);
    }
}
