//! Fused layer-norm + projection.
//!
//! A ViT block normalizes its input and immediately feeds the normalized
//! activations into one or more linear projections (Q/K/V, or the FFN's
//! first layer). The unfused path materializes the normalized `[N, dim]`
//! matrix, writes it to memory, then reads it straight back for the GEMM.
//! [`layer_norm_project_into`] instead streams [`crate::layers::LayerNorm`]
//! output through the packed GEMM microkernel one register tile at a time,
//! so normalized activations never round-trip through a temporary.
//!
//! Both the layer-norm arithmetic and the GEMM accumulation order are
//! exactly those of the unfused entry points, so results are bit-identical —
//! the batched-vs-single and parallel-vs-sequential parity guarantees of the
//! inference engine are preserved for free.

use crate::layers::{LayerNorm, Linear};
use heatvit_tensor::{pack_b_into, packed_len, GemmScratch, Tensor, MR};

/// Maximum number of projections a single fused call supports (Q, K, V and
/// one spare). The QKV triple is the widest real call site.
pub const MAX_FUSED_PROJECTIONS: usize = 4;

/// Computes `outs[i] = projections[i].infer(ln.infer(x))` for every
/// projection without materializing `ln.infer(x)`.
///
/// All projection weights are packed into `gs.pack` (at disjoint regions),
/// then normalized row tiles of height [`MR`] are streamed straight into the
/// packed microkernel once per projection. Values are bit-identical to the
/// unfused two-step path.
///
/// # Panics
///
/// Panics if `x` is not `[N, ln.dim()]`, if any projection's input width
/// differs from `ln.dim()`, if `projections.len() != outs.len()`, or if more
/// than [`MAX_FUSED_PROJECTIONS`] projections are passed.
pub fn layer_norm_project_into(
    ln: &LayerNorm,
    projections: &[&Linear],
    x: &Tensor,
    gs: &mut GemmScratch,
    outs: &mut [&mut Tensor],
) {
    assert_eq!(
        projections.len(),
        outs.len(),
        "one output tensor per projection"
    );
    assert!(
        projections.len() <= MAX_FUSED_PROJECTIONS,
        "at most {MAX_FUSED_PROJECTIONS} fused projections"
    );
    assert_eq!(x.dim(1), ln.dim(), "layernorm width mismatch");
    let (rows, k) = (x.dim(0), x.dim(1));

    // Pack every weight into one scratch buffer at per-layer offsets.
    let mut offsets = [0usize; MAX_FUSED_PROJECTIONS + 1];
    for (l, p) in projections.iter().enumerate() {
        assert_eq!(p.in_features(), k, "projection input width mismatch");
        offsets[l + 1] = offsets[l] + packed_len(k, p.out_features());
    }
    let total = offsets[projections.len()];
    let GemmScratch { pack, tile } = gs;
    pack.clear();
    pack.resize(total, 0.0);
    for (l, p) in projections.iter().enumerate() {
        pack_b_into(
            p.weight().value().data(),
            k,
            p.out_features(),
            &mut pack[offsets[l]..offsets[l + 1]],
        );
    }
    for (p, out) in projections.iter().zip(outs.iter_mut()) {
        out.reset_unspecified(&[rows, p.out_features()]);
    }

    ln.infer_tiles(x, MR, tile, |r0, nr, t| {
        for (l, p) in projections.iter().enumerate() {
            let n = p.out_features();
            let bias = p.bias().map(|b| b.value().data());
            let out_rows = &mut outs[l].data_mut()[r0 * n..(r0 + nr) * n];
            heatvit_tensor::gemm_packed_rows(
                t,
                nr,
                k,
                &pack[offsets[l]..offsets[l + 1]],
                n,
                bias,
                out_rows,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fused_is_bitwise_identical_to_unfused() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n_rows, dim) in [(1usize, 8usize), (5, 8), (9, 12), (197, 16)] {
            let mut ln = LayerNorm::new(dim);
            for (j, v) in ln.params_mut()[0]
                .value_mut()
                .data_mut()
                .iter_mut()
                .enumerate()
            {
                *v = 0.75 + j as f32 * 0.05;
            }
            let wq = Linear::new(dim, dim, true, &mut rng);
            let wk = Linear::new(dim, dim, true, &mut rng);
            let wv = Linear::new(dim, 2 * dim, false, &mut rng);
            let x = Tensor::rand_normal(&[n_rows, dim], 0.0, 1.0, &mut rng);

            let normed = ln.infer(&x);
            let want = [wq.infer(&normed), wk.infer(&normed), wv.infer(&normed)];

            let mut gs = GemmScratch::default();
            let (mut q, mut k, mut v) = (Tensor::default(), Tensor::default(), Tensor::default());
            layer_norm_project_into(
                &ln,
                &[&wq, &wk, &wv],
                &x,
                &mut gs,
                &mut [&mut q, &mut k, &mut v],
            );
            assert_eq!(q.dims(), want[0].dims());
            assert_eq!(q.data(), want[0].data(), "{n_rows}x{dim} q");
            assert_eq!(k.data(), want[1].data(), "{n_rows}x{dim} k");
            assert_eq!(v.data(), want[2].data(), "{n_rows}x{dim} v");
        }
    }

    #[test]
    fn single_projection_matches_linear_infer() {
        let mut rng = StdRng::seed_from_u64(11);
        let ln = LayerNorm::new(6);
        let fc = Linear::new(6, 24, true, &mut rng);
        let x = Tensor::rand_normal(&[4, 6], 0.0, 1.0, &mut rng);
        let mut gs = GemmScratch::default();
        let mut out = Tensor::default();
        layer_norm_project_into(&ln, &[&fc], &x, &mut gs, &mut [&mut out]);
        assert_eq!(out.data(), fc.infer(&ln.infer(&x)).data());
    }
}
