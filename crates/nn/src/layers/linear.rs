//! Fully-connected (linear) layer.

use crate::{Module, Param, Tape, Var};
use heatvit_tensor::{GemmScratch, Tensor};
use rand::Rng;

/// A fully-connected layer `y = x·W + b`.
///
/// Weights are stored `[in_features, out_features]` so the forward pass is a
/// single row-major GEMM — the exact shape the FPGA GEMM engine consumes.
/// HeatViT's token selector is built entirely from this layer (paper
/// Section IV: "we design our token selector with linear layers … to reuse
/// the GEMM hardware component").
///
/// # Examples
///
/// ```
/// use heatvit_nn::{layers::Linear, Tape, Module};
/// use heatvit_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let layer = Linear::new(8, 4, true, &mut rng);
/// assert_eq!(layer.num_parameters(), 8 * 4 + 4);
///
/// // Differentiable path:
/// let mut tape = Tape::new();
/// let x = tape.constant(Tensor::ones(&[3, 8]));
/// let y = layer.forward(&mut tape, x);
/// assert_eq!(tape.dims(y), &[3, 4]);
///
/// // Inference path (no tape):
/// let y2 = layer.infer(&Tensor::ones(&[3, 8]));
/// assert!(tape.value(y).allclose(&y2, 1e-6));
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let weight = Param::new(
            format!("linear[{in_features}x{out_features}].weight"),
            Tensor::xavier_uniform(in_features, out_features, rng),
        );
        let bias = bias.then(|| {
            Param::new(
                format!("linear[{in_features}x{out_features}].bias"),
                Tensor::zeros(&[out_features]),
            )
        });
        Self {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// Creates a layer from explicit tensors.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2 or `bias` length mismatches.
    pub fn from_tensors(weight: Tensor, bias: Option<Tensor>) -> Self {
        assert_eq!(weight.rank(), 2, "linear weight must be rank 2");
        let (in_features, out_features) = (weight.dim(0), weight.dim(1));
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[out_features], "bias must be [out_features]");
        }
        Self {
            weight: Param::new("linear.weight", weight),
            bias: bias.map(|b| Param::new("linear.bias", b)),
            in_features,
            out_features,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// The bias parameter, if present.
    pub fn bias(&self) -> Option<&Param> {
        self.bias.as_ref()
    }

    /// Differentiable forward: records onto `tape`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_features]`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        assert_eq!(
            tape.dims(x)[1],
            self.in_features,
            "linear input width mismatch"
        );
        let w = tape.param(&self.weight);
        let y = tape.matmul(x, w);
        match &self.bias {
            Some(b) => {
                let bv = tape.param(b);
                tape.add_row_broadcast(y, bv)
            }
            None => y,
        }
    }

    /// Inference forward (no tape, no gradient).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_features]`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dim(1), self.in_features, "linear input width mismatch");
        match &self.bias {
            Some(b) => x.matmul_bias(self.weight.value(), b.value()),
            None => x.matmul(self.weight.value()),
        }
    }

    /// [`Linear::infer`] writing into a caller-provided output tensor.
    ///
    /// `out` is reshaped in place (reusing its allocation) and overwritten
    /// with values bit-identical to `self.infer(x)` — the building block of
    /// the batched engine's allocation-free hot path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_features]`.
    pub fn infer_into(&self, x: &Tensor, out: &mut Tensor) {
        assert_eq!(x.dim(1), self.in_features, "linear input width mismatch");
        match &self.bias {
            Some(b) => x.matmul_bias_into(self.weight.value(), b.value(), out),
            None => x.matmul_into(self.weight.value(), out),
        }
    }

    /// [`Linear::infer_into`] staging the packed weight panels in a
    /// caller-owned [`GemmScratch`], so the hot path performs no per-call
    /// heap allocation once the workspace is warm. Values are bit-identical
    /// to every other inference entry point.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_features]`.
    pub fn infer_with(&self, x: &Tensor, gs: &mut GemmScratch, out: &mut Tensor) {
        assert_eq!(x.dim(1), self.in_features, "linear input width mismatch");
        match &self.bias {
            Some(b) => x.matmul_bias_with(self.weight.value(), b.value(), gs, out),
            None => x.matmul_with(self.weight.value(), gs, out),
        }
    }

    /// Multiply–accumulate count for an input of `n` rows (used by the
    /// complexity model and the FPGA scheduler).
    pub fn macs(&self, n: usize) -> u64 {
        n as u64 * self.in_features as u64 * self.out_features as u64
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(5, 3, true, &mut rng);
        let x = Tensor::rand_normal(&[4, 5], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let y = layer.forward(&mut tape, xv);
        assert!(tape.value(y).allclose(&layer.infer(&x), 1e-6));
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 4, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
        assert_eq!(layer.num_parameters(), 16);
    }

    #[test]
    fn gradients_flow_to_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3]));
        let y = layer.forward(&mut tape, x);
        let loss = tape.sum_all(y);
        let grads = tape.backward(loss);
        tape.write_grads(&grads, layer.params_mut());
        assert!(layer.weight().grad().is_some());
        assert!(layer.bias().unwrap().grad().is_some());
        // d(sum)/dW = xᵀ·1: every weight grad element equals #rows = 2.
        assert_eq!(layer.weight().grad().unwrap().data(), &[2.0; 6]);
        assert_eq!(layer.bias().unwrap().grad().unwrap().data(), &[2.0; 2]);
    }

    #[test]
    fn macs_formula() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new(192, 768, true, &mut rng);
        assert_eq!(layer.macs(197), 197 * 192 * 768);
    }

    #[test]
    fn from_tensors_roundtrip() {
        let w = Tensor::eye(3);
        let layer = Linear::from_tensors(w, Some(Tensor::zeros(&[3])));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        assert!(layer.infer(&x).allclose(&x, 0.0));
    }
}
