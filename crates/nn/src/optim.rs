//! Optimizers (SGD with momentum, AdamW) and learning-rate schedules.
//!
//! Optimizer state is keyed by [`Param::id`], so the same optimizer instance
//! can be reused across training phases even as the set of live parameters
//! changes — exactly what the block-to-stage pipeline needs when it inserts
//! new token selectors mid-training.

use crate::Param;
use heatvit_tensor::Tensor;
use std::collections::HashMap;

/// Shared interface of all optimizers.
pub trait Optimizer {
    /// Applies one update using each parameter's accumulated gradient, then
    /// clears the gradients. Parameters without a gradient are skipped.
    fn step(&mut self, params: Vec<&mut Param>);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled weight
/// decay.
///
/// # Examples
///
/// ```
/// use heatvit_nn::{optim::{Optimizer, Sgd}, Param};
/// use heatvit_tensor::Tensor;
///
/// let mut p = Param::new("w", Tensor::ones(&[1]));
/// p.accumulate_grad(&Tensor::ones(&[1]));
/// let mut opt = Sgd::new(0.5);
/// opt.step(vec![&mut p]);
/// assert_eq!(p.value().data(), &[0.5]);
/// assert!(p.grad().is_none()); // cleared by step
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0, 0.0)
    }

    /// SGD with momentum and decoupled weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: Vec<&mut Param>) {
        for p in params {
            let Some(grad) = p.grad().cloned() else {
                continue;
            };
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(grad.dims()));
                *v = v.scale(self.momentum).add(&grad);
                v.clone()
            } else {
                grad
            };
            let mut new = p.value().sub(&update.scale(self.lr));
            if self.weight_decay > 0.0 {
                new = new.sub(&p.value().scale(self.lr * self.weight_decay));
            }
            *p.value_mut() = new;
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdamW: Adam with decoupled weight decay (the DeiT training optimizer).
#[derive(Debug)]
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Per-parameter step counts (bias correction is per parameter so that
    /// parameters introduced mid-training start their own schedule).
    steps: HashMap<u64, u64>,
    first_moment: HashMap<u64, Tensor>,
    second_moment: HashMap<u64, Tensor>,
}

impl AdamW {
    /// AdamW with DeiT-style defaults (β₁=0.9, β₂=0.999, wd=0.05).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_config(lr, 0.9, 0.999, 1e-8, 0.05)
    }

    /// Fully-configured AdamW.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or either beta is outside `[0, 1)`.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            steps: HashMap::new(),
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: Vec<&mut Param>) {
        for p in params {
            let Some(grad) = p.grad().cloned() else {
                continue;
            };
            let t = self.steps.entry(p.id()).or_insert(0);
            *t += 1;
            let t = *t as i32;
            let m = self
                .first_moment
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(grad.dims()));
            *m = m.scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
            let m_hat = m.scale(1.0 / (1.0 - self.beta1.powi(t)));
            let v = self
                .second_moment
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(grad.dims()));
            *v = v
                .scale(self.beta2)
                .add(&grad.mul(&grad).scale(1.0 - self.beta2));
            let v_hat = v.scale(1.0 / (1.0 - self.beta2.powi(t)));
            let eps = self.eps;
            let update = m_hat.zip_map(&v_hat, |m, v| m / (v.sqrt() + eps));
            let mut new = p.value().sub(&update.scale(self.lr));
            if self.weight_decay > 0.0 {
                new = new.sub(&p.value().scale(self.lr * self.weight_decay));
            }
            *p.value_mut() = new;
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Cosine learning-rate schedule with linear warmup (the DeiT recipe).
///
/// Warmup is strictly increasing and anchored at both ends: step 0 runs at
/// `peak_lr / (warmup_steps + 1)` (never 0, so the first optimizer steps are
/// not wasted) and the peak is reached exactly once, at `step ==
/// warmup_steps`, where the cosine decay takes over. Past `total_steps` the
/// rate clamps to `min_lr` — it never decays below it.
///
/// # Examples
///
/// ```
/// use heatvit_nn::optim::CosineSchedule;
///
/// let sched = CosineSchedule::new(1.0, 0.1, 10, 100);
/// assert!(sched.lr_at(0) > 0.0);                    // never starts at 0
/// assert!(sched.lr_at(0) < sched.lr_at(9));         // warming up
/// assert!(sched.lr_at(9) < sched.lr_at(10));        // peak not hit early
/// assert!((sched.lr_at(10) - 1.0).abs() < 1e-6);    // peak after warmup
/// assert!((sched.lr_at(100) - 0.1).abs() < 1e-6);   // decayed to min
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    peak_lr: f32,
    min_lr: f32,
    warmup_steps: u64,
    total_steps: u64,
}

impl CosineSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `total_steps < warmup_steps` or `peak_lr < min_lr`.
    pub fn new(peak_lr: f32, min_lr: f32, warmup_steps: u64, total_steps: u64) -> Self {
        assert!(total_steps >= warmup_steps, "warmup exceeds total steps");
        assert!(peak_lr >= min_lr, "peak lr below min lr");
        Self {
            peak_lr,
            min_lr,
            warmup_steps,
            total_steps,
        }
    }

    /// Learning rate at `step` (clamped to the final value past the end).
    pub fn lr_at(&self, step: u64) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            // `(step + 1) / (warmup + 1)` keeps warmup strictly below the
            // peak: the old `/ warmup` form already ran at `peak_lr` on step
            // `warmup - 1`, duplicating the peak and cutting warmup short.
            return self.peak_lr * (step + 1) as f32 / (self.warmup_steps + 1) as f32;
        }
        let progress = (step - self.warmup_steps) as f32
            / (self.total_steps - self.warmup_steps).max(1) as f32;
        let progress = progress.min(1.0);
        self.min_lr
            + 0.5 * (self.peak_lr - self.min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
    }

    /// Applies the scheduled rate for `step` to an optimizer.
    pub fn apply(&self, opt: &mut dyn Optimizer, step: u64) {
        opt.set_learning_rate(self.lr_at(step));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param() -> Param {
        // Minimize f(w) = ||w - 3||² starting from w = 0.
        Param::new("w", Tensor::zeros(&[4]))
    }

    fn grad_of(p: &Param) -> Tensor {
        p.value().map(|w| 2.0 * (w - 3.0))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = quadratic_param();
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = grad_of(&p);
            p.accumulate_grad(&g);
            opt.step(vec![&mut p]);
        }
        assert!(p.value().data().iter().all(|&w| (w - 3.0).abs() < 1e-3));
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = quadratic_param();
            let mut opt = Sgd::with_momentum(0.02, momentum, 0.0);
            for _ in 0..40 {
                let g = grad_of(&p);
                p.accumulate_grad(&g);
                opt.step(vec![&mut p]);
            }
            (p.value().data()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adamw_converges_on_quadratic() {
        let mut p = quadratic_param();
        let mut opt = AdamW::with_config(0.3, 0.9, 0.999, 1e-8, 0.0);
        for _ in 0..300 {
            let g = grad_of(&p);
            p.accumulate_grad(&g);
            opt.step(vec![&mut p]);
        }
        assert!(
            p.value().data().iter().all(|&w| (w - 3.0).abs() < 1e-2),
            "got {:?}",
            p.value()
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new("w", Tensor::ones(&[1]));
        // Zero gradient but nonzero decay: step is skipped without a grad,
        // so provide a zero grad explicitly.
        p.accumulate_grad(&Tensor::zeros(&[1]));
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        opt.step(vec![&mut p]);
        assert!(p.value().data()[0] < 1.0);
    }

    #[test]
    fn step_skips_params_without_grad() {
        let mut p = Param::new("w", Tensor::ones(&[1]));
        let mut opt = Sgd::new(0.1);
        opt.step(vec![&mut p]);
        assert_eq!(p.value().data(), &[1.0]);
    }

    #[test]
    fn cosine_schedule_is_monotone_after_warmup() {
        let sched = CosineSchedule::new(1.0, 0.0, 5, 50);
        let mut last = f32::INFINITY;
        for step in 5..=50 {
            let lr = sched.lr_at(step);
            assert!(lr <= last + 1e-6);
            last = lr;
        }
    }

    #[test]
    fn cosine_schedule_pins_step0_warmup_end_and_final_step() {
        let (peak, min, warmup, total) = (0.8f32, 0.05f32, 10u64, 100u64);
        let sched = CosineSchedule::new(peak, min, warmup, total);
        // Step 0: one warmup increment above zero — the trainer must never
        // silently start at lr = 0.
        let lr0 = sched.lr_at(0);
        assert!(lr0 > 0.0);
        assert!((lr0 - peak / (warmup + 1) as f32).abs() < 1e-7);
        // Warmup stays strictly below the peak until the handoff step...
        for step in 0..warmup {
            assert!(sched.lr_at(step) < peak);
            assert!(sched.lr_at(step) < sched.lr_at(step + 1));
        }
        // ...and the peak is hit exactly at `warmup_steps`.
        assert_eq!(sched.lr_at(warmup), peak);
        // The final step decays to the floor, and the schedule clamps there
        // rather than overshooting below it.
        assert!((sched.lr_at(total) - min).abs() < 1e-6);
        assert!((sched.lr_at(total + 1_000) - min).abs() < 1e-6);
        for step in 0..=total + 10 {
            assert!(sched.lr_at(step) >= min - 1e-6);
            assert!(sched.lr_at(step) <= peak + 1e-6);
        }
    }

    #[test]
    fn cosine_schedule_without_warmup_starts_at_peak() {
        let sched = CosineSchedule::new(1.0, 0.1, 0, 40);
        assert_eq!(sched.lr_at(0), 1.0);
        assert!((sched.lr_at(40) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn cosine_schedule_applies_to_optimizer() {
        let sched = CosineSchedule::new(1.0, 0.0, 4, 20);
        let mut opt = Sgd::new(0.5);
        sched.apply(&mut opt, 4);
        assert_eq!(opt.learning_rate(), 1.0);
        sched.apply(&mut opt, 20);
        assert!(opt.learning_rate().abs() < 1e-6);
    }
}
