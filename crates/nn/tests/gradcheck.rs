//! Finite-difference gradient checks for every differentiable operation.
//!
//! Each check builds the same scalar-valued computation twice: once through
//! the tape's backward pass (analytic gradient) and once via central
//! differences on perturbed inputs (numeric gradient). Agreement across the
//! whole op set is the strongest single piece of evidence that the training
//! results downstream (token-selector training, block-to-stage pipeline) are
//! trustworthy.

use heatvit_nn::{Tape, Var};
use heatvit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks `d loss / d inputs` for `f` against central differences.
///
/// `f` must build a scalar (`[1]`) output from the leaf vars it is given.
fn gradcheck(name: &str, inputs: &[Tensor], f: impl Fn(&mut Tape, &[Var]) -> Var) {
    let eval = |tensors: &[Tensor]| -> f32 {
        let mut tape = Tape::new();
        let vars: Vec<Var> = tensors.iter().map(|t| tape.leaf(t.clone())).collect();
        let out = f(&mut tape, &vars);
        assert_eq!(tape.value(out).numel(), 1, "{name}: output must be scalar");
        tape.value(out).data()[0]
    };

    // Analytic gradients.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let out = f(&mut tape, &vars);
    let grads = tape.backward(out);

    const H: f32 = 1e-2;
    const TOL: f32 = 3e-2;
    for (vi, input) in inputs.iter().enumerate() {
        let analytic = grads
            .get(vars[vi])
            .unwrap_or_else(|| panic!("{name}: missing grad for input {vi}"))
            .clone();
        for e in 0..input.numel() {
            let mut plus = inputs.to_vec();
            plus[vi].data_mut()[e] += H;
            let mut minus = inputs.to_vec();
            minus[vi].data_mut()[e] -= H;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * H);
            let a = analytic.data()[e];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < TOL,
                "{name}: input {vi} elem {e}: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(42)
}

#[test]
fn gc_add_sub_mul() {
    let mut r = rng();
    let a = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut r);
    let b = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut r);
    gradcheck("add", &[a.clone(), b.clone()], |t, v| {
        let s = t.add(v[0], v[1]);
        t.sum_all(s)
    });
    gradcheck("sub", &[a.clone(), b.clone()], |t, v| {
        let s = t.sub(v[0], v[1]);
        t.mean_all(s)
    });
    gradcheck("mul", &[a, b], |t, v| {
        let s = t.mul(v[0], v[1]);
        t.sum_all(s)
    });
}

#[test]
fn gc_scale_and_offsets() {
    let mut r = rng();
    let a = Tensor::rand_normal(&[3, 2], 0.0, 1.0, &mut r);
    gradcheck("scale", std::slice::from_ref(&a), |t, v| {
        let s = t.scale(v[0], -1.7);
        t.sum_all(s)
    });
    gradcheck("add_scalar", std::slice::from_ref(&a), |t, v| {
        let s = t.add_scalar(v[0], 0.3);
        t.mean_all(s)
    });
    gradcheck("add_const", std::slice::from_ref(&a), |t, v| {
        let s = t.add_const(v[0], Tensor::full(&[3, 2], 0.5));
        t.sum_all(s)
    });
    gradcheck("mul_const", &[a], |t, v| {
        let c = Tensor::from_fn(&[3, 2], |ix| ix[1] as f32 - 0.5);
        let s = t.mul_const(v[0], c);
        t.sum_all(s)
    });
}

#[test]
fn gc_broadcasts() {
    let mut r = rng();
    let x = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut r);
    let bias = Tensor::rand_normal(&[4], 0.0, 1.0, &mut r);
    gradcheck("add_row_broadcast", &[x.clone(), bias], |t, v| {
        let s = t.add_row_broadcast(v[0], v[1]);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    let m = Tensor::rand_uniform(&[3], 0.5, 1.5, &mut r);
    gradcheck("mul_col_broadcast", &[x.clone(), m.clone()], |t, v| {
        let s = t.mul_col_broadcast(v[0], v[1]);
        let sq = t.mul(s, s);
        t.mean_all(sq)
    });
    gradcheck("div_col_broadcast", &[x, m], |t, v| {
        let s = t.div_col_broadcast(v[0], v[1]);
        t.sum_all(s)
    });
}

#[test]
fn gc_matmul_family() {
    let mut r = rng();
    let a = Tensor::rand_normal(&[3, 4], 0.0, 0.7, &mut r);
    let b = Tensor::rand_normal(&[4, 2], 0.0, 0.7, &mut r);
    gradcheck("matmul", &[a.clone(), b], |t, v| {
        let s = t.matmul(v[0], v[1]);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    gradcheck("transpose", std::slice::from_ref(&a), |t, v| {
        let s = t.transpose(v[0]);
        let w = t.constant(Tensor::from_fn(&[3, 2], |ix| (ix[0] + ix[1]) as f32 * 0.2));
        let p = t.matmul(s, w);
        t.sum_all(p)
    });
    gradcheck("reshape", &[a], |t, v| {
        let s = t.reshape(v[0], &[2, 6]);
        let sq = t.mul(s, s);
        t.mean_all(sq)
    });
}

#[test]
fn gc_nonlinearities() {
    let mut r = rng();
    // Keep away from ReLU/Hardswish kinks for clean finite differences.
    let a = Tensor::rand_uniform(&[2, 5], 0.2, 2.0, &mut r);
    let b = Tensor::rand_uniform(&[2, 5], -2.0, -0.2, &mut r);
    type UnaryOp = fn(&mut Tape, Var) -> Var;
    let cases: [(&str, UnaryOp); 4] = [
        ("gelu", |t, v| t.gelu(v)),
        ("relu", |t, v| t.relu(v)),
        ("hardswish", |t, v| t.hardswish(v)),
        ("sigmoid", |t, v| t.sigmoid(v)),
    ];
    for (name, mk) in cases {
        gradcheck(name, std::slice::from_ref(&a), |t, v| {
            let s = mk(t, v[0]);
            t.sum_all(s)
        });
        gradcheck(name, std::slice::from_ref(&b), |t, v| {
            let s = mk(t, v[0]);
            t.sum_all(s)
        });
    }
}

#[test]
fn gc_softmax_rows() {
    let mut r = rng();
    let a = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut r);
    gradcheck("softmax_rows", &[a], |t, v| {
        let s = t.softmax_rows(v[0]);
        // A non-symmetric functional of the softmax output.
        let w = t.constant(Tensor::from_fn(&[3, 4], |ix| (ix[1] * ix[1]) as f32 * 0.3));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
}

#[test]
fn gc_layer_norm() {
    let mut r = rng();
    let x = Tensor::rand_normal(&[3, 6], 0.5, 1.5, &mut r);
    let gamma = Tensor::rand_uniform(&[6], 0.5, 1.5, &mut r);
    let beta = Tensor::rand_normal(&[6], 0.0, 0.5, &mut r);
    gradcheck("layer_norm", &[x, gamma, beta], |t, v| {
        let s = t.layer_norm(v[0], v[1], v[2], 1e-5);
        let w = t.constant(Tensor::from_fn(&[3, 6], |ix| {
            0.1 * (ix[0] as f32 + 1.0) * (ix[1] as f32 - 2.0)
        }));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
}

#[test]
fn gc_reductions_and_structure() {
    let mut r = rng();
    let a = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut r);
    gradcheck("mean_cols_keep", std::slice::from_ref(&a), |t, v| {
        let s = t.mean_cols_keep(v[0]);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    gradcheck("mean_rows_keep", std::slice::from_ref(&a), |t, v| {
        let s = t.mean_rows_keep(v[0]);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    let row = Tensor::rand_normal(&[1, 3], 0.0, 1.0, &mut r);
    gradcheck("repeat_rows", &[row], |t, v| {
        let s = t.repeat_rows(v[0], 5);
        let w = t.constant(Tensor::from_fn(&[5, 3], |ix| (ix[0] + ix[1]) as f32 * 0.1));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
    gradcheck("concat_rows", &[a.clone(), a.clone()], |t, v| {
        let s = t.concat_rows(&[v[0], v[1]]);
        let sq = t.mul(s, s);
        t.mean_all(sq)
    });
    gradcheck("concat_cols", &[a.clone(), a.clone()], |t, v| {
        let s = t.concat_cols(&[v[0], v[1]]);
        let w = t.constant(Tensor::from_fn(&[4, 6], |ix| ix[1] as f32 * 0.1));
        let p = t.mul(s, w);
        t.sum_all(p)
    });
    gradcheck("slice_cols", std::slice::from_ref(&a), |t, v| {
        let s = t.slice_cols(v[0], 1, 3);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    gradcheck("slice_rows", std::slice::from_ref(&a), |t, v| {
        let s = t.slice_rows(v[0], 1, 4);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    gradcheck("gather_rows", &[a], |t, v| {
        let s = t.gather_rows(v[0], &[2, 0, 2]);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
}

#[test]
fn gc_losses() {
    let mut r = rng();
    let logits = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut r);
    gradcheck("cross_entropy", std::slice::from_ref(&logits), |t, v| {
        t.cross_entropy(v[0], &[0, 2, 1, 0])
    });
    let teacher = Tensor::rand_uniform(&[4, 3], 0.1, 1.0, &mut r).softmax_rows();
    gradcheck("distill_kl", std::slice::from_ref(&logits), |t, v| {
        t.distill_kl(v[0], teacher.clone(), 2.0)
    });
    let target = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut r);
    gradcheck("mse", &[logits], |t, v| t.mse(v[0], target.clone()));
}

#[test]
fn gc_composite_attention_like_graph() {
    // A miniature single-head attention: softmax(QKᵀ/√d)·V built from the
    // primitive ops, differentiated through all three projections at once.
    let mut r = rng();
    let x = Tensor::rand_normal(&[4, 6], 0.0, 0.5, &mut r);
    let wq = Tensor::rand_normal(&[6, 6], 0.0, 0.3, &mut r);
    let wk = Tensor::rand_normal(&[6, 6], 0.0, 0.3, &mut r);
    let wv = Tensor::rand_normal(&[6, 6], 0.0, 0.3, &mut r);
    gradcheck("attention", &[x, wq, wk, wv], |t, v| {
        let q = t.matmul(v[0], v[1]);
        let k = t.matmul(v[0], v[2]);
        let val = t.matmul(v[0], v[3]);
        let kt = t.transpose(k);
        let scores = t.matmul(q, kt);
        let scaled = t.scale(scores, 1.0 / (6.0f32).sqrt());
        let attn = t.softmax_rows(scaled);
        let out = t.matmul(attn, val);
        let sq = t.mul(out, out);
        t.sum_all(sq)
    });
}

#[test]
fn gc_selector_like_graph() {
    // The token-classifier scoring pattern: per-head scores combined by a
    // sigmoid attention branch with normalization (paper Eqs. 5–8).
    let mut r = rng();
    let scores_h1 = Tensor::rand_normal(&[5, 2], 0.0, 1.0, &mut r);
    let scores_h2 = Tensor::rand_normal(&[5, 2], 0.0, 1.0, &mut r);
    let head_logits = Tensor::rand_normal(&[5, 2], 0.0, 1.0, &mut r);
    gradcheck(
        "selector_combine",
        &[scores_h1, scores_h2, head_logits],
        |t, v| {
            let s1 = t.softmax_rows(v[0]);
            let s2 = t.softmax_rows(v[1]);
            let a = t.sigmoid(v[2]); // [5, 2] head importances
            let a1 = t.slice_cols(v[2], 0, 1);
            let a1 = t.sigmoid(a1);
            let a1col = t.reshape(a1, &[5]);
            let a2 = t.slice_cols(v[2], 1, 2);
            let a2 = t.sigmoid(a2);
            let a2col = t.reshape(a2, &[5]);
            let w1 = t.mul_col_broadcast(s1, a1col);
            let w2 = t.mul_col_broadcast(s2, a2col);
            let num = t.add(w1, w2);
            let asum = t.mean_rows_keep(a); // [5,1] proportional to a1+a2
            let asum = t.reshape(asum, &[5]);
            let combined = t.div_col_broadcast(num, asum);
            let sq = t.mul(combined, combined);
            t.mean_all(sq)
        },
    );
}

#[test]
fn gc_ln() {
    let mut r = rng();
    let a = Tensor::rand_uniform(&[3, 3], 0.2, 3.0, &mut r);
    gradcheck("ln", &[a], |t, v| {
        let s = t.ln(v[0]);
        t.sum_all(s)
    });
}
