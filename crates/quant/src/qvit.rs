//! The int8 Vision Transformer: every projection through [`QLinear`], every
//! attention product through the integer GEMM, every nonlinearity through
//! the paper's polynomial approximations (Section V, Eqs. 11–14).
//!
//! [`QuantizedViT`] is built *from* a float [`VisionTransformer`] — weights
//! are max-abs quantized once at construction — and mirrors the I-BERT-style
//! integer pipeline HeatViT inherits: `i8×i8→i32` GEMMs rescaled to float,
//! float layer norms and residuals (the components HeatViT leaves on the ARM
//! CPU), [`gelu_approx`](crate::approx::gelu_approx) in the MLP and
//! [`softmax_approx_rows`](crate::approx::softmax_approx_rows) in attention.
//!
//! Activation quantization is **dynamic** (per-tensor max-abs) out of the
//! box and **static** after [`QuantizedViT::calibrate`] records per-layer
//! ranges from a held-out batch — the deployment mode, where no float
//! reduction runs on the accelerator's datapath.
//!
//! MAC accounting is int8-aware: alongside the raw MAC count the model
//! reports *packed-DSP-equivalent* MACs, raw divided by
//! [`DSP_PACKING_FACTOR`] (~1.9×), because the FPGA packs two int8 MACs
//! into one DSP slice (paper Section V-C) — the number the `heatvit-fpga`
//! cycle model charges.

use crate::approx::{gelu_approx_inplace, softmax_approx_rows_inplace};
use crate::qgemm::{qmatmul_transb_with, qmatmul_with, QLinear};
use crate::qtensor::{QTensor, QuantParams};
use crate::scratch::QuantScratch;
use heatvit_nn::layers::LayerNorm;
use heatvit_tensor::Tensor;
use heatvit_vit::flops::BlockComplexity;
use heatvit_vit::{image_to_patches, EncoderBlock, ViTConfig, VisionTransformer};

/// Effective int8 speedup from DSP packing: the accelerator fits two int8
/// MACs per DSP slice, for a measured ~1.9× throughput gain over fp16/fp32
/// MACs (paper Section V-C). The `heatvit-fpga` cycle model consumes the
/// same factor.
pub const DSP_PACKING_FACTOR: f64 = 1.9;

/// Converts a raw MAC count into packed-DSP-equivalent MACs — the cost an
/// int8 datapath is actually charged.
pub fn packed_macs(raw: u64) -> u64 {
    (raw as f64 / DSP_PACKING_FACTOR).round() as u64
}

/// One adaptive pruning stage of the quantized model.
///
/// In front of `block`, patch tokens whose mean class-token attention (from
/// the previous block's *approximated* softmax) falls below
/// `attn_frac × (row mean)` are pruned and consolidated into a package
/// token. The keep count is input-dependent — the quantized counterpart of
/// the selector-driven adaptive pruning, using the attention scores the int8
/// pipeline already produces instead of a float classifier.
#[derive(Debug, Clone, Copy)]
pub struct QuantPruneStage {
    /// Block index the stage precedes (must be ≥ 1: the rule consumes the
    /// previous block's attention maps).
    pub block: usize,
    /// Pruning threshold as a fraction of the mean class-token attention,
    /// in `(0, 1]`. Smaller values prune fewer tokens.
    pub attn_frac: f32,
}

/// Inference result of a [`QuantizedViT`].
#[derive(Debug, Clone)]
pub struct QuantInference {
    /// Classification logits `[1, classes]`.
    pub logits: Tensor,
    /// Token count entering each block (class/package included).
    pub tokens_per_block: Vec<usize>,
    /// Raw MAC count at the actual per-block token counts.
    pub raw_macs: u64,
    /// Packed-DSP-equivalent MACs (`raw_macs / `[`DSP_PACKING_FACTOR`]).
    pub macs: u64,
}

/// Running max-abs observer for one activation-quantization site.
#[derive(Debug, Clone, Copy, Default)]
struct AbsMax(f32);

impl AbsMax {
    fn observe(&mut self, t: &Tensor) {
        for &v in t.data() {
            self.0 = self.0.max(v.abs());
        }
    }

    fn params(self) -> QuantParams {
        QuantParams::from_abs_max(self.0)
    }
}

/// Calibration accumulators for one block's seven activation sites.
#[derive(Debug, Clone, Copy, Default)]
struct BlockCalib {
    qkv_in: AbsMax,
    q: AbsMax,
    k: AbsMax,
    v: AbsMax,
    proj_in: AbsMax,
    fc1_in: AbsMax,
    fc2_in: AbsMax,
}

/// Whole-model calibration accumulators.
#[derive(Debug, Clone)]
struct ModelCalib {
    patch_in: AbsMax,
    head_in: AbsMax,
    blocks: Vec<BlockCalib>,
}

impl ModelCalib {
    fn new(depth: usize) -> Self {
        Self {
            patch_in: AbsMax::default(),
            head_in: AbsMax::default(),
            blocks: vec![BlockCalib::default(); depth],
        }
    }
}

/// Static activation scales for the per-head attention operands, recorded
/// over the full `[N, D]` projection tensors during calibration.
#[derive(Debug, Clone, Copy)]
struct AttnActParams {
    q: QuantParams,
    k: QuantParams,
    v: QuantParams,
}

/// One encoder block on the integer pipeline.
#[derive(Debug, Clone)]
struct QuantizedBlock {
    ln1: LayerNorm,
    ln2: LayerNorm,
    wq: QLinear,
    wk: QLinear,
    wv: QLinear,
    proj: QLinear,
    fc1: QLinear,
    fc2: QLinear,
    num_heads: usize,
    head_dim: usize,
    attn_acts: Option<AttnActParams>,
}

impl QuantizedBlock {
    fn from_block(block: &EncoderBlock) -> Self {
        let attn = block.attention();
        Self {
            ln1: block.ln1().clone(),
            ln2: block.ln2().clone(),
            wq: QLinear::from_linear(attn.wq()),
            wk: QLinear::from_linear(attn.wk()),
            wv: QLinear::from_linear(attn.wv()),
            proj: QLinear::from_linear(attn.proj()),
            fc1: QLinear::from_linear(block.ffn().fc1()),
            fc2: QLinear::from_linear(block.ffn().fc2()),
            num_heads: attn.num_heads(),
            head_dim: attn.head_dim(),
            attn_acts: None,
        }
    }

    /// One block forward on the integer pipeline. Leaves the block's mean
    /// class-token attention (per patch token, averaged over heads) in
    /// `scratch.cls_attn` for the adaptive pruning stages.
    fn infer_with(
        &self,
        x: &Tensor,
        delta1: f32,
        delta2: f32,
        scratch: &mut QuantScratch,
        mut calib: Option<&mut BlockCalib>,
    ) -> Tensor {
        let n = x.dim(0);
        let dim = self.num_heads * self.head_dim;
        // With calibrated activation scales (and no observer attached) the
        // layer norm fuses with quantization: normalized tiles are quantized
        // as they are produced, one int8 staging pass serves all three Q/K/V
        // GEMMs, and the normalized float activations never materialize.
        // Bit-identical to the unfused path — the per-element layer-norm and
        // quantize arithmetic is unchanged, only the staging differs.
        let qkv_static = (calib.is_none())
            .then(|| self.wq.activation_params())
            .flatten();
        if let Some(params) = qkv_static {
            debug_assert_eq!(Some(params), self.wk.activation_params());
            debug_assert_eq!(Some(params), self.wv.activation_params());
            let fill = scratch.qa.start_fill(&[n, dim], params);
            self.ln1
                .infer_tiles(x, 8, &mut scratch.ln_tile, |_r0, _nr, t| {
                    fill.extend(t.iter().map(|&v| params.quantize(v)));
                });
            self.wq
                .infer_quantized_into(&scratch.qa, &mut scratch.pack, &mut scratch.q);
            self.wk
                .infer_quantized_into(&scratch.qa, &mut scratch.pack, &mut scratch.k);
            self.wv
                .infer_quantized_into(&scratch.qa, &mut scratch.pack, &mut scratch.v);
        } else {
            self.ln1.infer_into(x, &mut scratch.normed);
            if let Some(c) = calib.as_deref_mut() {
                c.qkv_in.observe(&scratch.normed);
            }
            self.wq.infer_with(
                &scratch.normed,
                &mut scratch.qa,
                &mut scratch.pack,
                &mut scratch.q,
            );
            self.wk.infer_with(
                &scratch.normed,
                &mut scratch.qa,
                &mut scratch.pack,
                &mut scratch.k,
            );
            self.wv.infer_with(
                &scratch.normed,
                &mut scratch.qa,
                &mut scratch.pack,
                &mut scratch.v,
            );
        }
        if let Some(c) = calib.as_deref_mut() {
            c.q.observe(&scratch.q);
            c.k.observe(&scratch.k);
            c.v.observe(&scratch.v);
        }
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // The approximated softmax output lives in [0, δ₂] by construction,
        // so its quantization scale is static even in dynamic mode.
        let attn_params = QuantParams::from_abs_max(delta2);
        scratch.heads.reset_unspecified(&[n, dim]);
        scratch.cls_attn.clear();
        scratch.cls_attn.resize(n.saturating_sub(1), 0.0);
        for h in 0..self.num_heads {
            let (lo, hi) = (h * self.head_dim, (h + 1) * self.head_dim);
            scratch.q.slice_cols_into(lo, hi, &mut scratch.qh);
            scratch.k.slice_cols_into(lo, hi, &mut scratch.kh);
            scratch.v.slice_cols_into(lo, hi, &mut scratch.vh);
            let (qp, kp, vp) = match &self.attn_acts {
                Some(a) => (a.q, a.k, a.v),
                None => (
                    QuantParams::observe(&scratch.qh),
                    QuantParams::observe(&scratch.kh),
                    QuantParams::observe(&scratch.vh),
                ),
            };
            // Scores: int8 Q·Kᵀ, rescaled, approximated softmax in place.
            QTensor::quantize_with_into(&scratch.qh, qp, &mut scratch.qa);
            QTensor::quantize_with_into(&scratch.kh, kp, &mut scratch.qb);
            qmatmul_transb_with(
                &scratch.qa,
                &scratch.qb,
                &mut scratch.pack,
                &mut scratch.scores,
            );
            for s in scratch.scores.data_mut() {
                *s *= scale;
            }
            softmax_approx_rows_inplace(&mut scratch.scores, delta2);
            for (j, a) in scratch.cls_attn.iter_mut().enumerate() {
                *a += scratch.scores.at(&[0, j + 1]);
            }
            // Context: int8 attn·V, written into this head's column band.
            QTensor::quantize_with_into(&scratch.scores, attn_params, &mut scratch.qa);
            QTensor::quantize_with_into(&scratch.vh, vp, &mut scratch.qb);
            qmatmul_with(
                &scratch.qa,
                &scratch.qb,
                &mut scratch.pack,
                &mut scratch.head_out,
            );
            let (head_out, heads) = (&scratch.head_out, &mut scratch.heads);
            let width = self.head_dim;
            for r in 0..n {
                heads.data_mut()[r * dim + lo..r * dim + hi]
                    .copy_from_slice(&head_out.data()[r * width..(r + 1) * width]);
            }
        }
        for a in scratch.cls_attn.iter_mut() {
            *a /= self.num_heads as f32;
        }
        if let Some(c) = calib.as_deref_mut() {
            c.proj_in.observe(&scratch.heads);
        }
        self.proj.infer_with(
            &scratch.heads,
            &mut scratch.qa,
            &mut scratch.pack,
            &mut scratch.attn_out,
        );
        let x1 = scratch.attn_out.add(x);
        // Same fusion for the pre-FFN norm feeding fc1.
        let fc1_static = (calib.is_none())
            .then(|| self.fc1.activation_params())
            .flatten();
        if let Some(params) = fc1_static {
            let fill = scratch
                .qa
                .start_fill(&[n, self.fc1.weight().dim(0)], params);
            self.ln2
                .infer_tiles(&x1, 8, &mut scratch.ln_tile, |_r0, _nr, t| {
                    fill.extend(t.iter().map(|&v| params.quantize(v)));
                });
            self.fc1
                .infer_quantized_into(&scratch.qa, &mut scratch.pack, &mut scratch.ffn_hidden);
        } else {
            self.ln2.infer_into(&x1, &mut scratch.normed);
            if let Some(c) = calib.as_deref_mut() {
                c.fc1_in.observe(&scratch.normed);
            }
            self.fc1.infer_with(
                &scratch.normed,
                &mut scratch.qa,
                &mut scratch.pack,
                &mut scratch.ffn_hidden,
            );
        }
        gelu_approx_inplace(&mut scratch.ffn_hidden, delta1);
        if let Some(c) = calib {
            c.fc2_in.observe(&scratch.ffn_hidden);
        }
        self.fc2.infer_with(
            &scratch.ffn_hidden,
            &mut scratch.qa,
            &mut scratch.pack,
            &mut scratch.ffn_out,
        );
        scratch.ffn_out.add(&x1)
    }

    fn apply_calibration(&mut self, c: &BlockCalib) {
        self.wq.set_activation_params(c.qkv_in.params());
        self.wk.set_activation_params(c.qkv_in.params());
        self.wv.set_activation_params(c.qkv_in.params());
        self.proj.set_activation_params(c.proj_in.params());
        self.fc1.set_activation_params(c.fc1_in.params());
        self.fc2.set_activation_params(c.fc2_in.params());
        self.attn_acts = Some(AttnActParams {
            q: c.q.params(),
            k: c.k.params(),
            v: c.v.params(),
        });
    }
}

/// The int8 patch embedding: quantized projection, float class token and
/// position embeddings (parameters, added once — no datapath GEMM).
#[derive(Debug, Clone)]
struct QPatchEmbed {
    proj: QLinear,
    cls_token: Tensor,
    pos_embed: Tensor,
    patch_size: usize,
}

/// An int8 implementation of the ViT family: [`QLinear`] projections,
/// integer attention products, approximated GELU/softmax, optional adaptive
/// token pruning, and packed-DSP MAC accounting.
///
/// # Examples
///
/// ```
/// use heatvit_quant::QuantizedViT;
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let float_model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
/// let qmodel = QuantizedViT::from_float(&float_model);
/// let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
/// let out = qmodel.infer(&image);
/// assert_eq!(out.logits.dims(), &[1, 4]);
/// // Packed-DSP accounting charges ~1/1.9 of the raw int8 MACs.
/// assert!(out.macs < out.raw_macs);
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedViT {
    config: ViTConfig,
    patch: QPatchEmbed,
    blocks: Vec<QuantizedBlock>,
    norm: LayerNorm,
    head: QLinear,
    delta1: f32,
    delta2: f32,
    stages: Vec<QuantPruneStage>,
    /// Nominal keep ratio per stage (fraction of original patch tokens
    /// expected to survive), for cost prediction only — empty means "treat
    /// every stage as keeping everything" (conservative). Same length as
    /// `stages` once declared.
    nominal_keep: Vec<f32>,
    calibrated: bool,
}

// Serving worker pools own models and move them across threads; a future
// non-`Send`/`Sync` field must fail to build here rather than at the spawn
// site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QuantizedViT>();
};

impl QuantizedViT {
    /// Quantizes a float model's weights (max-abs, symmetric int8) into a
    /// dense int8 model with dynamic activation quantization.
    ///
    /// The regularization factors default to `δ₁ = δ₂ = 1`: the paper's
    /// `δ < 1` shrinks quantization error during quantization-aware
    /// fine-tuning, but applied post-hoc to weights that never trained with
    /// it, it would only skew the function away from the float reference.
    /// Use [`QuantizedViT::set_deltas`] to study the regularized kernels.
    pub fn from_float(model: &VisionTransformer) -> Self {
        let embed = model.patch_embed();
        Self {
            config: model.config().clone(),
            patch: QPatchEmbed {
                proj: QLinear::from_linear(embed.projection()),
                cls_token: embed.cls_token().value().clone(),
                pos_embed: embed.pos_embed().value().clone(),
                patch_size: embed.patch_size(),
            },
            blocks: model
                .blocks()
                .iter()
                .map(QuantizedBlock::from_block)
                .collect(),
            norm: model.norm().clone(),
            head: QLinear::from_linear(model.head()),
            delta1: 1.0,
            delta2: 1.0,
            stages: Vec::new(),
            nominal_keep: Vec::new(),
            calibrated: false,
        }
    }

    /// Installs adaptive pruning stages, turning this into the
    /// `int8-adaptive` variant.
    ///
    /// # Panics
    ///
    /// Panics if stages are out of order, start before block 1, exceed the
    /// depth, or have thresholds outside `(0, 1]`.
    pub fn with_prune_stages(mut self, stages: Vec<QuantPruneStage>) -> Self {
        let mut last = 0;
        for s in &stages {
            assert!(s.block >= 1, "stage needs the previous block's attention");
            assert!(s.block < self.config.depth, "stage block out of range");
            assert!(s.block > last || last == 0, "stages must be in block order");
            assert!(
                s.attn_frac > 0.0 && s.attn_frac <= 1.0,
                "attention threshold fraction must be in (0, 1]"
            );
            last = s.block;
        }
        self.stages = stages;
        self.nominal_keep.clear();
        self
    }

    /// The backbone architecture configuration.
    pub fn config(&self) -> &ViTConfig {
        &self.config
    }

    /// [`QuantizedViT::variant_name`] of a model with no pruning stages.
    pub const VARIANT_DENSE: &'static str = "int8-dense";
    /// [`QuantizedViT::variant_name`] of a model with pruning stages.
    pub const VARIANT_ADAPTIVE: &'static str = "int8-adaptive";

    /// [`Self::VARIANT_DENSE`] or [`Self::VARIANT_ADAPTIVE`] depending on
    /// whether pruning stages are installed.
    pub fn variant_name(&self) -> &'static str {
        if self.stages.is_empty() {
            Self::VARIANT_DENSE
        } else {
            Self::VARIANT_ADAPTIVE
        }
    }

    /// The installed pruning stages (empty for the dense variant).
    pub fn prune_stages(&self) -> &[QuantPruneStage] {
        &self.stages
    }

    /// Declares the nominal keep ratio of each pruning stage (fraction of
    /// the *original* patch tokens expected to survive from that stage on),
    /// for cost prediction only. The attention-threshold stages still
    /// decide per image — this records what the thresholds were tuned for.
    ///
    /// # Panics
    ///
    /// Panics if `keeps` is not one ratio per installed stage or any ratio
    /// is outside `(0, 1]`.
    pub fn set_nominal_keep(&mut self, keeps: &[f32]) {
        assert_eq!(
            keeps.len(),
            self.stages.len(),
            "need one nominal keep ratio per pruning stage"
        );
        assert!(
            keeps.iter().all(|&k| k > 0.0 && k <= 1.0),
            "keep ratios must be in (0, 1]"
        );
        self.nominal_keep = keeps.to_vec();
    }

    /// Expected token count entering each block under the declared nominal
    /// stage keep ratios: kept patches + class token + package token once
    /// pruning has begun (the int8 pruning stages always consolidate pruned
    /// tokens into a package). Without a
    /// [`QuantizedViT::set_nominal_keep`] declaration every stage is
    /// treated as keeping all tokens — a conservative over-estimate.
    pub fn expected_tokens_per_block(&self) -> Vec<usize> {
        let n = self.config.num_patches();
        let mut keep = 1.0f32;
        let mut out = Vec::with_capacity(self.config.depth);
        let mut stage_iter = self.stages.iter().zip(
            self.nominal_keep
                .iter()
                .copied()
                .chain(std::iter::repeat(1.0)),
        );
        let mut next = stage_iter.next();
        for bi in 0..self.config.depth {
            if let Some((stage, k)) = next {
                if stage.block == bi {
                    keep = k;
                    next = stage_iter.next();
                }
            }
            let kept = ((keep * n as f32).ceil() as usize).clamp(1, n);
            out.push(kept + 1 + usize::from(keep < 1.0));
        }
        out
    }

    /// Packed-DSP-equivalent MAC count at an arbitrary per-block token
    /// schedule — exactly the accounting [`QuantizedViT::infer`] reports
    /// for an inference whose actual counts equal `tokens_per_block`.
    pub fn packed_macs_for(&self, tokens_per_block: &[usize]) -> u64 {
        packed_macs(self.raw_macs_for(tokens_per_block))
    }

    /// Overrides the regularization factors `δ₁` (GELU) and `δ₂` (softmax).
    pub fn set_deltas(&mut self, delta1: f32, delta2: f32) {
        self.delta1 = delta1;
        self.delta2 = delta2;
    }

    /// `true` once [`QuantizedViT::calibrate`] has recorded static
    /// activation scales.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Records static activation [`QuantParams`] for every quantization site
    /// from a held-out batch: each site's max-abs is accumulated across the
    /// whole batch, then frozen into per-layer scales. Until this runs (or
    /// after [`QuantizedViT::clear_calibration`]) every site falls back to
    /// dynamic per-tensor max-abs.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty.
    pub fn calibrate(&mut self, images: &[Tensor]) {
        assert!(!images.is_empty(), "calibration needs at least one image");
        let mut calib = ModelCalib::new(self.config.depth);
        let mut scratch = QuantScratch::default();
        for image in images {
            self.forward_internal(image, &mut scratch, Some(&mut calib));
        }
        self.patch
            .proj
            .set_activation_params(calib.patch_in.params());
        self.head.set_activation_params(calib.head_in.params());
        for (block, c) in self.blocks.iter_mut().zip(calib.blocks.iter()) {
            block.apply_calibration(c);
        }
        self.calibrated = true;
    }

    /// Drops all static activation scales, returning to dynamic max-abs.
    pub fn clear_calibration(&mut self) {
        self.patch.proj.clear_activation_params();
        self.head.clear_activation_params();
        for block in &mut self.blocks {
            block.wq.clear_activation_params();
            block.wk.clear_activation_params();
            block.wv.clear_activation_params();
            block.proj.clear_activation_params();
            block.fc1.clear_activation_params();
            block.fc2.clear_activation_params();
            block.attn_acts = None;
        }
        self.calibrated = false;
    }

    /// Classifies one image through the integer pipeline.
    pub fn infer(&self, image: &Tensor) -> QuantInference {
        self.infer_with(image, &mut QuantScratch::default())
    }

    /// [`QuantizedViT::infer`] reusing a caller-provided scratch workspace.
    ///
    /// Bit-identical to the allocating path: activations, int8 staging
    /// buffers, and repacking buffers all live in `scratch`, so a warmed-up
    /// workspace keeps the integer hot path free of per-image allocation for
    /// them — the same discipline as the float engine.
    pub fn infer_with(&self, image: &Tensor, scratch: &mut QuantScratch) -> QuantInference {
        self.forward_internal(image, scratch, None)
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).logits.argmax_rows()[0]
    }

    /// Raw MAC count with the full token count in every block — the
    /// float-equivalent dense baseline int8 speedups are measured against
    /// (deliberately *not* packed, so `dense / packed` exposes the ~1.9×
    /// DSP-packing gain).
    pub fn dense_macs(&self) -> u64 {
        self.raw_macs_for(&vec![self.config.num_tokens(); self.config.depth])
    }

    fn raw_macs_for(&self, tokens_per_block: &[usize]) -> u64 {
        let cfg = &self.config;
        let patch = (cfg.num_patches() * cfg.patch_dim() * cfg.embed_dim) as u64;
        let head = (cfg.embed_dim * cfg.num_classes) as u64;
        patch
            + head
            + tokens_per_block
                .iter()
                .map(|&n| BlockComplexity::closed_form(cfg, n))
                .sum::<u64>()
    }

    fn forward_internal(
        &self,
        image: &Tensor,
        scratch: &mut QuantScratch,
        mut calib: Option<&mut ModelCalib>,
    ) -> QuantInference {
        let patches = image_to_patches(image, self.patch.patch_size);
        if let Some(m) = calib.as_deref_mut() {
            m.patch_in.observe(&patches);
        }
        let embedded = self.patch.proj.infer(&patches);
        let mut tokens =
            Tensor::concat_rows(&[&self.patch.cls_token, &embedded]).add(&self.patch.pos_embed);
        let mut tokens_per_block = Vec::with_capacity(self.config.depth);
        let mut stage_iter = self.stages.iter().peekable();
        for (bi, block) in self.blocks.iter().enumerate() {
            if let Some(stage) = stage_iter.peek() {
                if stage.block == bi {
                    self.prune_stage(&mut tokens, stage.attn_frac, scratch);
                    stage_iter.next();
                }
            }
            tokens_per_block.push(tokens.dim(0));
            let block_calib = calib.as_deref_mut().map(|m| &mut m.blocks[bi]);
            tokens = block.infer_with(&tokens, self.delta1, self.delta2, scratch, block_calib);
        }
        tokens.slice_rows_into(0, 1, &mut scratch.cls);
        self.norm.infer_into(&scratch.cls, &mut scratch.normed);
        if let Some(m) = calib {
            m.head_in.observe(&scratch.normed);
        }
        let logits = self.head.infer(&scratch.normed);
        let raw_macs = self.raw_macs_for(&tokens_per_block);
        QuantInference {
            logits,
            tokens_per_block,
            raw_macs,
            macs: packed_macs(raw_macs),
        }
    }

    /// Prunes patch tokens whose mean class-token attention (left in
    /// `scratch.cls_attn` by the previous block) falls below
    /// `frac × mean attention`, consolidating them into one
    /// attention-weighted package token (the Eq. 10 flow on int8 attention).
    fn prune_stage(&self, tokens: &mut Tensor, frac: f32, scratch: &mut QuantScratch) {
        let n = tokens.dim(0);
        let n_patches = n - 1;
        debug_assert_eq!(scratch.cls_attn.len(), n_patches);
        let mean = scratch.cls_attn.iter().sum::<f32>() / n_patches.max(1) as f32;
        let thresh = frac * mean;
        scratch.kept.clear();
        scratch.pruned.clear();
        for (i, &a) in scratch.cls_attn.iter().enumerate() {
            if a >= thresh {
                scratch.kept.push(i);
            } else {
                scratch.pruned.push(i);
            }
        }
        if scratch.pruned.is_empty() {
            return;
        }
        if scratch.kept.is_empty() {
            // Never prune everything: keep the single most-attended token.
            let best = scratch
                .pruned
                .iter()
                .copied()
                .max_by(|&a, &b| scratch.cls_attn[a].total_cmp(&scratch.cls_attn[b]))
                .expect("at least one patch token");
            scratch.kept.push(best);
            scratch.pruned.retain(|&i| i != best);
        }
        tokens.slice_rows_into(1, n, &mut scratch.patches);
        tokens.slice_rows_into(0, 1, &mut scratch.cls);
        scratch
            .patches
            .gather_rows_into(&scratch.kept, &mut scratch.kept_rows);
        // Attention-weighted package token over the pruned rows — the same
        // Eq. 10 consolidation as `heatvit_selector::packager::package_tokens`
        // (weights and zero-sum fallback must stay in sync with it); it
        // cannot be called from here because `heatvit-selector` depends on
        // this crate for the engine's shared scratch.
        let d = tokens.dim(1);
        let mut package = vec![0.0f32; d];
        let wsum: f32 = scratch.pruned.iter().map(|&i| scratch.cls_attn[i]).sum();
        for &i in &scratch.pruned {
            let w = if wsum > 1e-12 {
                scratch.cls_attn[i] / wsum
            } else {
                1.0 / scratch.pruned.len() as f32
            };
            for (p, &x) in package.iter_mut().zip(scratch.patches.row(i)) {
                *p += w * x;
            }
        }
        let package = Tensor::from_vec(package, &[1, d]);
        Tensor::concat_rows_into(
            &[&scratch.cls, &scratch.kept_rows, &package],
            &mut scratch.repacked,
        );
        std::mem::swap(tokens, &mut scratch.repacked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn float_and_quant(seed: u64) -> (VisionTransformer, QuantizedViT, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = VisionTransformer::new(ViTConfig::micro(8), &mut rng);
        let qmodel = QuantizedViT::from_float(&model);
        (model, qmodel, rng)
    }

    fn image(rng: &mut StdRng) -> Tensor {
        Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, rng)
    }

    #[test]
    fn dense_int8_tracks_float_logits() {
        let (model, qmodel, mut rng) = float_and_quant(0);
        let img = image(&mut rng);
        let exact = model.infer(&img);
        let quant = qmodel.infer(&img);
        let rel = quant.logits.sub(&exact).norm() / exact.norm().max(1e-9);
        assert!(rel < 0.25, "relative logit error {rel}");
        assert_eq!(quant.tokens_per_block, vec![17; 6]);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let (_, qmodel, mut rng) = float_and_quant(1);
        let imgs: Vec<Tensor> = (0..3).map(|_| image(&mut rng)).collect();
        let mut scratch = QuantScratch::default();
        for img in &imgs {
            let warm = qmodel.infer_with(img, &mut scratch);
            let fresh = qmodel.infer(img);
            assert_eq!(warm.logits.data(), fresh.logits.data());
        }
    }

    #[test]
    fn calibration_freezes_static_scales() {
        let (_, mut qmodel, mut rng) = float_and_quant(2);
        assert!(!qmodel.is_calibrated());
        let batch: Vec<Tensor> = (0..4).map(|_| image(&mut rng)).collect();
        qmodel.calibrate(&batch);
        assert!(qmodel.is_calibrated());
        // Calibrated inference is deterministic and still classifies.
        let img = image(&mut rng);
        let a = qmodel.infer(&img);
        let b = qmodel.infer(&img);
        assert_eq!(a.logits.data(), b.logits.data());
        qmodel.clear_calibration();
        assert!(!qmodel.is_calibrated());
    }

    #[test]
    fn calibrated_and_dynamic_modes_agree_closely() {
        let (model, mut qmodel, mut rng) = float_and_quant(3);
        let batch: Vec<Tensor> = (0..4).map(|_| image(&mut rng)).collect();
        let img = image(&mut rng);
        let exact = model.infer(&img);
        let dynamic = qmodel.infer(&img);
        qmodel.calibrate(&batch);
        let calibrated = qmodel.infer(&img);
        for out in [&dynamic, &calibrated] {
            let rel = out.logits.sub(&exact).norm() / exact.norm().max(1e-9);
            assert!(rel < 0.3, "relative logit error {rel}");
        }
    }

    #[test]
    fn adaptive_stages_shrink_tokens_and_macs() {
        let (_, qmodel, mut rng) = float_and_quant(4);
        let dense_packed = packed_macs(qmodel.dense_macs());
        let qmodel = qmodel.with_prune_stages(vec![
            QuantPruneStage {
                block: 2,
                attn_frac: 0.9,
            },
            QuantPruneStage {
                block: 4,
                attn_frac: 0.9,
            },
        ]);
        assert_eq!(qmodel.variant_name(), "int8-adaptive");
        let img = image(&mut rng);
        let out = qmodel.infer(&img);
        assert_eq!(out.tokens_per_block.len(), 6);
        assert_eq!(out.tokens_per_block[0], 17);
        // With package token the count after a stage is ≤ 17 + 1; it must
        // never grow across stages.
        assert!(out.tokens_per_block[2] <= 18);
        assert!(out.tokens_per_block[4] <= out.tokens_per_block[2] + 1);
        if out.tokens_per_block[2] < 17 {
            assert!(out.macs < dense_packed);
        }
        assert!(out.logits.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fused_static_ln_quantize_is_bitwise_identical_to_two_step() {
        let (_, mut qmodel, mut rng) = float_and_quant(9);
        let batch: Vec<Tensor> = (0..2).map(|_| image(&mut rng)).collect();
        qmodel.calibrate(&batch);
        let block = &qmodel.blocks[0];
        let dim = qmodel.config.embed_dim;
        let x = Tensor::rand_normal(&[9, dim], 0.0, 1.0, &mut rng);

        // Unfused reference: materialize LN output, quantize it whole.
        let normed = block.ln1.infer(&x);
        let params = block.wq.activation_params().expect("calibrated");
        let qx = QTensor::quantize_with(&normed, params);
        let mut want = Tensor::default();
        block
            .wq
            .infer_quantized_into(&qx, &mut Vec::new(), &mut want);

        // Fused path: run the block and inspect the staged Q projection
        // (scratch.q is written once, straight off the fused quantize).
        let mut scratch = QuantScratch::default();
        block.infer_with(&x, 1.0, 1.0, &mut scratch, None);
        assert_eq!(scratch.q.data(), want.data());
    }

    #[test]
    fn packed_macs_apply_the_dsp_factor() {
        let (_, qmodel, mut rng) = float_and_quant(5);
        let out = qmodel.infer(&image(&mut rng));
        let expect = (out.raw_macs as f64 / DSP_PACKING_FACTOR).round() as u64;
        assert_eq!(out.macs, expect);
        // Dense int8 raw MACs equal the float dense baseline, so the packed
        // speedup is exactly the DSP factor.
        assert_eq!(out.raw_macs, qmodel.dense_macs());
        let speedup = qmodel.dense_macs() as f64 / out.macs as f64;
        assert!((speedup - DSP_PACKING_FACTOR).abs() < 1e-3);
    }

    #[test]
    fn raw_macs_match_the_float_models_accounting() {
        let (model, qmodel, _) = float_and_quant(6);
        assert_eq!(qmodel.dense_macs(), model.macs());
    }

    #[test]
    #[should_panic(expected = "previous block's attention")]
    fn stage_before_block_one_is_rejected() {
        let (_, qmodel, _) = float_and_quant(7);
        qmodel.with_prune_stages(vec![QuantPruneStage {
            block: 0,
            attn_frac: 0.5,
        }]);
    }

    #[test]
    fn delta_regularizers_shrink_activations() {
        let (_, mut qmodel, mut rng) = float_and_quant(8);
        let img = image(&mut rng);
        let plain = qmodel.infer(&img);
        qmodel.set_deltas(0.5, 0.5);
        let reg = qmodel.infer(&img);
        // δ < 1 is a different function — outputs must change but stay
        // finite (the Section V-E regularization study entry point).
        assert!(plain.logits.max_abs_diff(&reg.logits) > 0.0);
        assert!(reg.logits.data().iter().all(|v| v.is_finite()));
    }
}
