//! Reusable buffers for the int8 inference path.
//!
//! [`QuantScratch`] is the integer-pipeline counterpart of `heatvit-vit`'s
//! `InferScratch`: it owns every intermediate the quantized blocks touch —
//! float activation buffers, int8 staging buffers for activation
//! quantization, and the token-repacking buffers of the adaptive pruning
//! stages — so a batched engine allocates them once per batch instead of
//! once per image. Like the float scratch it is deliberately cheap to
//! construct, and the scratch and non-scratch paths execute identical
//! arithmetic (bit-identical results).

use crate::qtensor::QTensor;
use heatvit_tensor::Tensor;

/// Workspace for the [`crate::QuantizedViT`] hot path.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    /// Layer-norm output, reused for both pre-MSA and pre-FFN norms.
    pub(crate) normed: Tensor,
    /// Full-width query projection `[N, D]`.
    pub(crate) q: Tensor,
    /// Full-width key projection `[N, D]`.
    pub(crate) k: Tensor,
    /// Full-width value projection `[N, D]`.
    pub(crate) v: Tensor,
    /// Per-head float slice of `q` `[N, D/h]`.
    pub(crate) qh: Tensor,
    /// Per-head float slice of `k` `[N, D/h]`.
    pub(crate) kh: Tensor,
    /// Per-head float slice of `v` `[N, D/h]`.
    pub(crate) vh: Tensor,
    /// Attention scores / probabilities `[N, N]` (softmaxed in place).
    pub(crate) scores: Tensor,
    /// One head's context output `[N, D/h]`.
    pub(crate) head_out: Tensor,
    /// Concatenated per-head outputs `[N, D]`.
    pub(crate) heads: Tensor,
    /// Attention output projection `[N, D]`.
    pub(crate) attn_out: Tensor,
    /// FFN hidden activation `[N, hidden]` — the largest buffer.
    pub(crate) ffn_hidden: Tensor,
    /// FFN output `[N, D]`.
    pub(crate) ffn_out: Tensor,
    /// Int8 staging buffer for the left GEMM operand.
    pub(crate) qa: QTensor,
    /// Int8 staging buffer for the right GEMM operand.
    pub(crate) qb: QTensor,
    /// Class-token row `[1, D]` (pruning stages and the classifier head).
    pub(crate) cls: Tensor,
    /// Patch-token rows `[N-1, D]` (pruning stages).
    pub(crate) patches: Tensor,
    /// Gathered informative rows `[K, D]`.
    pub(crate) kept_rows: Tensor,
    /// The repacked token matrix handed to the next block.
    pub(crate) repacked: Tensor,
    /// Indices of kept patch tokens.
    pub(crate) kept: Vec<usize>,
    /// Indices of pruned patch tokens.
    pub(crate) pruned: Vec<usize>,
    /// Mean class-token attention per patch token from the previous block.
    pub(crate) cls_attn: Vec<f32>,
    /// Packed int8 weight panels for the integer GEMM microkernel.
    pub(crate) pack: Vec<i8>,
    /// Staging buffer for fused layer-norm + quantize tiles.
    pub(crate) ln_tile: Vec<f32>,
}

// Each engine worker thread owns one scratch (inside its `PruneScratch`); a
// future non-`Send` field must fail to build here, not at the distant
// thread-spawn site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<QuantScratch>();
};
