//! # heatvit-quant
//!
//! The 8-bit integer arithmetic path of the
//! [HeatViT](https://arxiv.org/abs/2211.08110) reproduction (paper
//! Section V):
//!
//! * [`QuantParams`] / [`QTensor`] — symmetric int8 fixed-point
//!   quantization with max-abs calibration, plus [`fake_quantize`] for
//!   accuracy studies without integer kernels;
//! * [`qmatmul`] / [`qmatmul_transb`] / [`QLinear`] — `i8 × i8 → i32` GEMM
//!   with float rescaling (plus allocation-free `_into` forms), the
//!   arithmetic the FPGA's DSP-packed GEMM engine performs;
//! * [`approx`] — polynomial replacements for `erf`/GELU (Eqs. 11–12),
//!   shift-based softmax exponentiation (Eqs. 13–14), and the PLAN sigmoid,
//!   all with the paper's `δ < 1` regularization factors;
//! * [`QuantizedViT`] — the whole backbone on the integer pipeline:
//!   [`QLinear`] projections, int8 attention products, approximated
//!   GELU/softmax, static-scale [`QuantizedViT::calibrate`] with dynamic
//!   max-abs fallback, optional adaptive token pruning, and
//!   packed-DSP-equivalent MAC accounting ([`DSP_PACKING_FACTOR`]);
//! * [`error`] — the Section V-E quantization-error-contraction analysis
//!   (Eqs. 15–17, Fig. 10): machinery to verify that the regularized
//!   nonlinearities keep error amplification below one.
//!
//! ## Example
//!
//! ```
//! use heatvit_quant::{qmatmul, QTensor};
//! use heatvit_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let q = qmatmul(&QTensor::quantize(&a), &QTensor::quantize(&b));
//! // Int8 roundtrip through an identity GEMM stays within one scale step.
//! assert!(q.max_abs_diff(&a) <= QTensor::quantize(&a).params().scale);
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod error;
mod qgemm;
mod qtensor;
mod qvit;
mod scratch;

pub use qgemm::{
    qmatmul, qmatmul_into, qmatmul_transb, qmatmul_transb_into, qmatmul_transb_with, qmatmul_with,
    qpack_b, qpack_b_t, qpacked_len, QLinear, QMR, QNR,
};
pub use qtensor::{fake_quantize, QTensor, QuantParams};
pub use qvit::{packed_macs, QuantInference, QuantPruneStage, QuantizedViT, DSP_PACKING_FACTOR};
pub use scratch::QuantScratch;
