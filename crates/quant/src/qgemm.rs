//! Integer GEMM: the arithmetic the FPGA's 8-bit GEMM engine performs.
//!
//! Products are `i8 × i8` accumulated in `i32` (DSP-friendly), then rescaled
//! back to float by the product of the operand scales. The paper's claimed
//! ~1.9× speedup from 8-bit quantization comes precisely from packing two
//! such MACs per DSP slice; the cycle model in `heatvit-fpga` charges it
//! that way.

use crate::qtensor::QTensor;
use heatvit_tensor::Tensor;

/// Integer matrix product `a · b` with float rescaling.
///
/// `a` is `[M, K]`, `b` is `[K, N]`; the result is the dequantized `[M, N]`
/// float matrix `(Σ qa·qb) · scale_a · scale_b`.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or inner dimensions differ.
pub fn qmatmul(a: &QTensor, b: &QTensor) -> Tensor {
    assert_eq!(a.dims().len(), 2, "qmatmul lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "qmatmul rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "qmatmul inner dimensions must agree");
    let mut acc = vec![0i32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut acc[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = &bd[p * n..(p + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow.iter()) {
                *c += av * bv as i32;
            }
        }
    }
    let rescale = a.params().scale * b.params().scale;
    Tensor::from_vec(
        acc.into_iter().map(|v| v as f32 * rescale).collect(),
        &[m, n],
    )
}

/// Quantized linear layer: int8 weight, float bias, dynamic or static
/// activation quantization.
#[derive(Debug, Clone)]
pub struct QLinear {
    weight: QTensor,
    bias: Option<Vec<f32>>,
    /// Pre-calibrated activation scale; `None` = dynamic (per-call max-abs).
    activation: Option<crate::QuantParams>,
}

impl QLinear {
    /// Quantizes a float linear layer's weight (max-abs, symmetric).
    pub fn from_linear(layer: &heatvit_nn::layers::Linear) -> Self {
        Self {
            weight: QTensor::quantize(layer.weight().value()),
            bias: layer.bias().map(|b| b.value().data().to_vec()),
            activation: None,
        }
    }

    /// Sets a static activation scale recorded during calibration.
    pub fn set_activation_params(&mut self, params: crate::QuantParams) {
        self.activation = Some(params);
    }

    /// The quantized weight.
    pub fn weight(&self) -> &QTensor {
        &self.weight
    }

    /// Runs `x·W + b` through the integer pipeline: quantize activations,
    /// int8 GEMM, rescale, add float bias.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[N, in_features]`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dim(1), self.weight.dim(0), "input width mismatch");
        let qx = match self.activation {
            Some(params) => QTensor::quantize_with(x, params),
            None => QTensor::quantize(x),
        };
        let mut out = qmatmul(&qx, &self.weight);
        if let Some(bias) = &self.bias {
            let n = out.dim(1);
            for row in out.data_mut().chunks_mut(n) {
                for (o, &b) in row.iter_mut().zip(bias.iter()) {
                    *o += b;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_nn::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qmatmul_tracks_float_gemm() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::rand_normal(&[8, 16], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[16, 8], 0.0, 1.0, &mut rng);
        let exact = a.matmul(&b);
        let quant = qmatmul(&QTensor::quantize(&a), &QTensor::quantize(&b));
        // Relative Frobenius error of an int8 GEMM on unit-scale data.
        let rel = quant.sub(&exact).norm() / exact.norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn qmatmul_is_exact_for_representable_values() {
        // Integers within ±127 at scale 1 are exactly representable.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let qa = QTensor::quantize_with(&a, crate::QuantParams { scale: 1.0 });
        let qb = QTensor::quantize_with(&b, crate::QuantParams { scale: 1.0 });
        assert!(qmatmul(&qa, &qb).allclose(&a.matmul(&b), 0.0));
    }

    #[test]
    fn qlinear_matches_float_layer_closely() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(24, 12, true, &mut rng);
        let qlayer = QLinear::from_linear(&layer);
        let x = Tensor::rand_normal(&[5, 24], 0.0, 1.0, &mut rng);
        let exact = layer.infer(&x);
        let quant = qlayer.infer(&x);
        let rel = quant.sub(&exact).norm() / exact.norm();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn static_activation_scale_is_used() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 4, false, &mut rng);
        let mut qlayer = QLinear::from_linear(&layer);
        // A deliberately coarse activation scale must visibly degrade.
        qlayer.set_activation_params(crate::QuantParams::from_abs_max(100.0));
        let x = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let coarse = qlayer.infer(&x);
        let mut fine = QLinear::from_linear(&layer);
        fine.set_activation_params(crate::QuantParams::from_abs_max(3.0));
        let fine_out = fine.infer(&x);
        let exact = layer.infer(&x);
        assert!(
            coarse.sub(&exact).norm() > fine_out.sub(&exact).norm(),
            "coarse calibration should hurt more"
        );
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn qmatmul_checks_shapes() {
        let a = QTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QTensor::quantize(&Tensor::zeros(&[4, 2]));
        qmatmul(&a, &b);
    }
}
