//! Integer GEMM: the arithmetic the FPGA's 8-bit GEMM engine performs.
//!
//! Products are `i8 × i8` accumulated in `i32` (DSP-friendly), then rescaled
//! back to float by the product of the operand scales. The paper's claimed
//! ~1.9× speedup from 8-bit quantization comes precisely from packing two
//! such MACs per DSP slice; the cycle model in `heatvit-fpga` charges it
//! that way.

use crate::qtensor::QTensor;
use heatvit_tensor::Tensor;

/// Output-column tile width of the int8 GEMM kernels: a stack-resident `i32`
/// accumulator strip, mirroring the accelerator's fixed-size output BRAM
/// tile (paper Fig. 8a) and keeping the `_into` paths allocation-free.
const ACC_TILE: usize = 64;

/// Integer matrix product `a · b` with float rescaling.
///
/// `a` is `[M, K]`, `b` is `[K, N]`; the result is the dequantized `[M, N]`
/// float matrix `(Σ qa·qb) · scale_a · scale_b`.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or inner dimensions differ.
pub fn qmatmul(a: &QTensor, b: &QTensor) -> Tensor {
    let mut out = Tensor::default();
    qmatmul_into(a, b, &mut out);
    out
}

/// [`qmatmul`] writing into a caller-provided output tensor (reshaped in
/// place, values bit-identical to the allocating path). Accumulation stays
/// in `i32` within a fixed stack tile, so the hot path performs no heap
/// allocation once `out` is warm.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or inner dimensions differ.
pub fn qmatmul_into(a: &QTensor, b: &QTensor, out: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "qmatmul lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "qmatmul rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "qmatmul inner dimensions must agree");
    let rescale = a.params().scale * b.params().scale;
    let ad = a.data();
    let bd = b.data();
    out.reset_unspecified(&[m, n]);
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jn = ACC_TILE.min(n - j0);
            let mut acc = [0i32; ACC_TILE];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0 {
                    continue;
                }
                let av = av as i32;
                let brow = &bd[p * n + j0..p * n + j0 + jn];
                for (c, &bv) in acc[..jn].iter_mut().zip(brow.iter()) {
                    *c += av * bv as i32;
                }
            }
            for (o, &c) in orow[j0..j0 + jn].iter_mut().zip(acc[..jn].iter()) {
                *o = c as f32 * rescale;
            }
            j0 += jn;
        }
    }
}

/// Integer matrix product `a · bᵀ` with float rescaling.
///
/// `a` is `[M, K]`, `b` is `[N, K]`; the result is the dequantized `[M, N]`
/// matrix. This is the attention-score shape `Q·Kᵀ`: both operands are
/// row-major with contiguous `K`-length rows, so each output element is one
/// contiguous int8 dot product — exactly how the FPGA GEMM engine consumes
/// the transposed key tile.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or their row widths differ.
pub fn qmatmul_transb(a: &QTensor, b: &QTensor) -> Tensor {
    let mut out = Tensor::default();
    qmatmul_transb_into(a, b, &mut out);
    out
}

/// [`qmatmul_transb`] writing into a caller-provided output tensor
/// (reshaped in place, values bit-identical to the allocating path).
///
/// # Panics
///
/// Panics if the operands are not rank 2 or their row widths differ.
pub fn qmatmul_transb_into(a: &QTensor, b: &QTensor, out: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "qmatmul_transb lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "qmatmul_transb rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "qmatmul_transb inner dimensions must agree");
    let rescale = a.params().scale * b.params().scale;
    let ad = a.data();
    let bd = b.data();
    out.reset_unspecified(&[m, n]);
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in arow.iter().zip(brow.iter()) {
                acc += av as i32 * bv as i32;
            }
            *o = acc as f32 * rescale;
        }
    }
}

/// Quantized linear layer: int8 weight, float bias, dynamic or static
/// activation quantization.
#[derive(Debug, Clone)]
pub struct QLinear {
    weight: QTensor,
    bias: Option<Vec<f32>>,
    /// Pre-calibrated activation scale; `None` = dynamic (per-call max-abs).
    activation: Option<crate::QuantParams>,
}

impl QLinear {
    /// Quantizes a float linear layer's weight (max-abs, symmetric).
    pub fn from_linear(layer: &heatvit_nn::layers::Linear) -> Self {
        Self {
            weight: QTensor::quantize(layer.weight().value()),
            bias: layer.bias().map(|b| b.value().data().to_vec()),
            activation: None,
        }
    }

    /// Sets a static activation scale recorded during calibration.
    pub fn set_activation_params(&mut self, params: crate::QuantParams) {
        self.activation = Some(params);
    }

    /// Drops the static activation scale, returning to dynamic max-abs.
    pub fn clear_activation_params(&mut self) {
        self.activation = None;
    }

    /// The quantized weight.
    pub fn weight(&self) -> &QTensor {
        &self.weight
    }

    /// The static activation parameters, if calibrated.
    pub fn activation_params(&self) -> Option<crate::QuantParams> {
        self.activation
    }

    /// Validates the input shape with a clear message *before* the integer
    /// pipeline runs. Shared by [`QLinear::infer`] and
    /// [`QLinear::infer_into`]: without the rank check a rank-3 input used
    /// to die with a confusing index panic deep inside `qmatmul`.
    fn check_input(&self, x: &Tensor) {
        assert_eq!(
            x.rank(),
            2,
            "QLinear input must be rank 2 [N, in_features], got rank {}",
            x.rank()
        );
        assert_eq!(x.dim(1), self.weight.dim(0), "input width mismatch");
    }

    /// Resolves the activation quantization parameters for one input:
    /// the calibrated static scale if set, dynamic max-abs otherwise.
    fn input_params(&self, x: &Tensor) -> crate::QuantParams {
        self.activation
            .unwrap_or_else(|| crate::QuantParams::observe(x))
    }

    /// Runs `x·W + b` through the integer pipeline: quantize activations,
    /// int8 GEMM, rescale, add float bias.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 `[N, in_features]`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.check_input(x);
        let qx = QTensor::quantize_with(x, self.input_params(x));
        let mut out = qmatmul(&qx, &self.weight);
        self.add_bias(&mut out);
        out
    }

    /// [`QLinear::infer`] staging the quantized activations in `qbuf` and
    /// writing the result into `out` (both reused across calls; values
    /// bit-identical to the allocating path). This is the int8 counterpart
    /// of the float layers' `infer_into` discipline: once the buffers are
    /// warm the integer pipeline performs no per-call heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 `[N, in_features]`.
    pub fn infer_into(&self, x: &Tensor, qbuf: &mut QTensor, out: &mut Tensor) {
        self.check_input(x);
        QTensor::quantize_with_into(x, self.input_params(x), qbuf);
        qmatmul_into(qbuf, &self.weight, out);
        self.add_bias(out);
    }

    fn add_bias(&self, out: &mut Tensor) {
        if let Some(bias) = &self.bias {
            let n = out.dim(1);
            for row in out.data_mut().chunks_mut(n) {
                for (o, &b) in row.iter_mut().zip(bias.iter()) {
                    *o += b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_nn::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qmatmul_tracks_float_gemm() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::rand_normal(&[8, 16], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[16, 8], 0.0, 1.0, &mut rng);
        let exact = a.matmul(&b);
        let quant = qmatmul(&QTensor::quantize(&a), &QTensor::quantize(&b));
        // Relative Frobenius error of an int8 GEMM on unit-scale data.
        let rel = quant.sub(&exact).norm() / exact.norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn qmatmul_is_exact_for_representable_values() {
        // Integers within ±127 at scale 1 are exactly representable.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let qa = QTensor::quantize_with(&a, crate::QuantParams { scale: 1.0 });
        let qb = QTensor::quantize_with(&b, crate::QuantParams { scale: 1.0 });
        assert!(qmatmul(&qa, &qb).allclose(&a.matmul(&b), 0.0));
    }

    #[test]
    fn qlinear_matches_float_layer_closely() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(24, 12, true, &mut rng);
        let qlayer = QLinear::from_linear(&layer);
        let x = Tensor::rand_normal(&[5, 24], 0.0, 1.0, &mut rng);
        let exact = layer.infer(&x);
        let quant = qlayer.infer(&x);
        let rel = quant.sub(&exact).norm() / exact.norm();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn static_activation_scale_is_used() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 4, false, &mut rng);
        let mut qlayer = QLinear::from_linear(&layer);
        // A deliberately coarse activation scale must visibly degrade.
        qlayer.set_activation_params(crate::QuantParams::from_abs_max(100.0));
        let x = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let coarse = qlayer.infer(&x);
        let mut fine = QLinear::from_linear(&layer);
        fine.set_activation_params(crate::QuantParams::from_abs_max(3.0));
        let fine_out = fine.infer(&x);
        let exact = layer.infer(&x);
        assert!(
            coarse.sub(&exact).norm() > fine_out.sub(&exact).norm(),
            "coarse calibration should hurt more"
        );
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn qmatmul_checks_shapes() {
        let a = QTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QTensor::quantize(&Tensor::zeros(&[4, 2]));
        qmatmul(&a, &b);
    }

    #[test]
    fn qmatmul_transb_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        // Width > ACC_TILE to exercise the tiled path on the plain kernel.
        let a = Tensor::rand_normal(&[5, 80], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[7, 80], 0.0, 1.0, &mut rng);
        let qa = QTensor::quantize(&a);
        let qb = QTensor::quantize(&b);
        let qbt = QTensor::quantize_with(&b.transpose2(), qb.params());
        let direct = qmatmul_transb(&qa, &qb);
        let via_transpose = qmatmul(&qa, &qbt);
        assert!(direct.allclose(&via_transpose, 0.0));
        assert_eq!(direct.dims(), &[5, 7]);
    }

    #[test]
    fn qmatmul_into_variants_match_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::rand_normal(&[9, 100], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[100, 70], 0.0, 1.0, &mut rng);
        let (qa, qb) = (QTensor::quantize(&a), QTensor::quantize(&b));
        // Stale differently-shaped buffers must be reshaped and overwritten.
        let mut out = Tensor::full(&[2, 2], 9.0);
        qmatmul_into(&qa, &qb, &mut out);
        assert!(out.allclose(&qmatmul(&qa, &qb), 0.0));
        let c = Tensor::rand_normal(&[11, 100], 0.0, 1.0, &mut rng);
        let qc = QTensor::quantize(&c);
        qmatmul_transb_into(&qa, &qc, &mut out);
        assert!(out.allclose(&qmatmul_transb(&qa, &qc), 0.0));
    }

    #[test]
    fn qlinear_infer_into_matches_infer() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(16, 8, true, &mut rng);
        let qlayer = QLinear::from_linear(&layer);
        let x = Tensor::rand_normal(&[6, 16], 0.0, 1.0, &mut rng);
        let mut qbuf = QTensor::default();
        let mut out = Tensor::default();
        qlayer.infer_into(&x, &mut qbuf, &mut out);
        assert!(out.allclose(&qlayer.infer(&x), 0.0));
    }

    #[test]
    #[should_panic(expected = "rank 2")]
    fn qlinear_infer_rejects_rank3_input_up_front() {
        // Regression: a rank-3 input used to reach qmatmul and die with a
        // confusing index panic; the rank is now asserted at the boundary.
        let mut rng = StdRng::seed_from_u64(6);
        let qlayer = QLinear::from_linear(&Linear::new(4, 4, true, &mut rng));
        qlayer.infer(&Tensor::zeros(&[2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "rank 2")]
    fn qlinear_infer_into_shares_the_rank_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let qlayer = QLinear::from_linear(&Linear::new(4, 4, true, &mut rng));
        qlayer.infer_into(
            &Tensor::zeros(&[2, 3, 4]),
            &mut QTensor::default(),
            &mut Tensor::default(),
        );
    }
}
