//! Integer GEMM: the arithmetic the FPGA's 8-bit GEMM engine performs.
//!
//! Products are `i8 × i8` accumulated in `i32` (DSP-friendly), then rescaled
//! back to float by the product of the operand scales. The paper's claimed
//! ~1.9× speedup from 8-bit quantization comes precisely from packing two
//! such MACs per DSP slice; the cycle model in `heatvit-fpga` charges it
//! that way.
//!
//! Like the float path in `heatvit-tensor`, the int8 kernels are cache
//! blocked: `B` is packed into zero-padded [`QNR`]-wide column panels and a
//! [`QMR`]`×`[`QNR`] widened-`i32` accumulator tile is driven by
//! `chunks_exact` inner loops with no per-element branching. `A·B` and
//! `A·Bᵀ` share the microkernel after packing. Integer accumulation is
//! exact, so any blocking order produces bit-identical results — the int8
//! path keeps every historical equality guarantee for free.

use crate::qtensor::QTensor;
use heatvit_tensor::Tensor;

/// Rows per int8 microkernel tile (register blocking over `m`).
pub const QMR: usize = 4;

/// Columns per packed int8 panel: the width of the widened `i32`
/// accumulator tile, mirroring the accelerator's fixed-size output BRAM
/// tile (paper Fig. 8a).
pub const QNR: usize = 16;

/// Number of `i8` slots [`qpack_b`] needs for a `k×n` operand.
pub fn qpacked_len(k: usize, n: usize) -> usize {
    n.div_ceil(QNR) * k * QNR
}

/// Packs a row-major `k×n` int8 matrix into [`QNR`]-wide column panels
/// (zero-padded), the integer twin of `heatvit_tensor::pack_b`.
pub fn qpack_b(b: &[i8], k: usize, n: usize, pack: &mut Vec<i8>) {
    debug_assert_eq!(b.len(), k * n);
    pack.clear();
    pack.resize(qpacked_len(k, n), 0);
    if k == 0 || n == 0 {
        return;
    }
    for (pi, panel) in pack.chunks_exact_mut(k * QNR).enumerate() {
        let j0 = pi * QNR;
        let jn = QNR.min(n - j0);
        for (dst, src) in panel.chunks_exact_mut(QNR).zip(b[j0..].chunks(n)) {
            dst[..jn].copy_from_slice(&src[..jn]);
        }
    }
}

/// Packs the transpose of a row-major `n×k` int8 matrix (`bt` stores `Bᵀ`)
/// into the same panel layout as [`qpack_b`].
pub fn qpack_b_t(bt: &[i8], n: usize, k: usize, pack: &mut Vec<i8>) {
    debug_assert_eq!(bt.len(), n * k);
    pack.clear();
    pack.resize(qpacked_len(k, n), 0);
    if k == 0 || n == 0 {
        return;
    }
    for (pi, panel) in pack.chunks_exact_mut(k * QNR).enumerate() {
        let j0 = pi * QNR;
        let jn = QNR.min(n - j0);
        for (c, src_row) in bt[j0 * k..(j0 + jn) * k].chunks_exact(k).enumerate() {
            for (dst, &v) in panel.chunks_exact_mut(QNR).zip(src_row.iter()) {
                dst[c] = v;
            }
        }
    }
}

/// Full [`QMR`]-row int8 microkernel over one packed panel: widened `i32`
/// accumulators stay in registers; each loaded panel row is reused [`QMR`]
/// times.
#[inline(always)]
fn qmicro_full(a: [&[i8]; QMR], panel: &[i8], acc: &mut [[i32; QNR]; QMR]) {
    let [a0, a1, a2, a3] = a;
    let [c0, c1, c2, c3] = acc;
    for ((((bp, &v0), &v1), &v2), &v3) in panel
        .chunks_exact(QNR)
        .zip(a0.iter())
        .zip(a1.iter())
        .zip(a2.iter())
        .zip(a3.iter())
    {
        let (v0, v1, v2, v3) = (v0 as i32, v1 as i32, v2 as i32, v3 as i32);
        for j in 0..QNR {
            let bv = bp[j] as i32;
            c0[j] += v0 * bv;
            c1[j] += v1 * bv;
            c2[j] += v2 * bv;
            c3[j] += v3 * bv;
        }
    }
}

/// Remainder-row int8 microkernel for the final tile when `m % QMR != 0`.
#[inline(always)]
fn qmicro_tail(a_rows: &[i8], mr: usize, k: usize, panel: &[i8], acc: &mut [[i32; QNR]; QMR]) {
    for (arow, accr) in a_rows.chunks_exact(k).take(mr).zip(acc.iter_mut()) {
        for (&av, bp) in arow.iter().zip(panel.chunks_exact(QNR)) {
            let av = av as i32;
            for (c, &bv) in accr.iter_mut().zip(bp.iter()) {
                *c += av * bv as i32;
            }
        }
    }
}

/// Blocked int8 GEMM over a pre-packed `B`: dequantizes the widened `i32`
/// accumulator tile straight into the float output (`c = (A·B)·rescale`,
/// rows fully overwritten).
fn qgemm_packed(a: &[i8], m: usize, k: usize, pack: &[i8], n: usize, rescale: f32, c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    for (a_rows, out_rows) in a.chunks(QMR * k).zip(c.chunks_mut(QMR * n)) {
        let mr = a_rows.len() / k;
        let mut j0 = 0;
        for panel in pack.chunks_exact(k * QNR) {
            let jn = QNR.min(n - j0);
            let mut acc = [[0i32; QNR]; QMR];
            if mr == QMR {
                let rows = [
                    &a_rows[..k],
                    &a_rows[k..2 * k],
                    &a_rows[2 * k..3 * k],
                    &a_rows[3 * k..4 * k],
                ];
                qmicro_full(rows, panel, &mut acc);
            } else {
                qmicro_tail(a_rows, mr, k, panel, &mut acc);
            }
            for (r, accr) in acc.iter().enumerate().take(mr) {
                let orow = &mut out_rows[r * n + j0..r * n + j0 + jn];
                for (o, &v) in orow.iter_mut().zip(accr.iter()) {
                    *o = v as f32 * rescale;
                }
            }
            j0 += QNR;
        }
    }
}

/// Integer matrix product `a · b` with float rescaling.
///
/// `a` is `[M, K]`, `b` is `[K, N]`; the result is the dequantized `[M, N]`
/// float matrix `(Σ qa·qb) · scale_a · scale_b`.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or inner dimensions differ.
pub fn qmatmul(a: &QTensor, b: &QTensor) -> Tensor {
    let mut out = Tensor::default();
    qmatmul_into(a, b, &mut out);
    out
}

/// [`qmatmul`] writing into a caller-provided output tensor (reshaped in
/// place, values bit-identical to the allocating path).
///
/// # Panics
///
/// Panics if the operands are not rank 2 or inner dimensions differ.
pub fn qmatmul_into(a: &QTensor, b: &QTensor, out: &mut Tensor) {
    qmatmul_with(a, b, &mut Vec::new(), out);
}

/// [`qmatmul_into`] staging the packed operand in a caller-owned buffer, so
/// repeated products perform no heap allocation once the workspace is warm.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or inner dimensions differ.
pub fn qmatmul_with(a: &QTensor, b: &QTensor, pack: &mut Vec<i8>, out: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "qmatmul lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "qmatmul rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "qmatmul inner dimensions must agree");
    let rescale = a.params().scale * b.params().scale;
    out.reset_unspecified(&[m, n]);
    qpack_b(b.data(), k, n, pack);
    qgemm_packed(a.data(), m, k, pack, n, rescale, out.data_mut());
}

/// Integer matrix product `a · bᵀ` with float rescaling.
///
/// `a` is `[M, K]`, `b` is `[N, K]`; the result is the dequantized `[M, N]`
/// matrix. This is the attention-score shape `Q·Kᵀ`: the transposed operand
/// is packed straight from its row-major layout, after which the blocked
/// microkernel is identical to the plain product — exactly how the FPGA GEMM
/// engine consumes the transposed key tile.
///
/// # Panics
///
/// Panics if the operands are not rank 2 or their row widths differ.
pub fn qmatmul_transb(a: &QTensor, b: &QTensor) -> Tensor {
    let mut out = Tensor::default();
    qmatmul_transb_into(a, b, &mut out);
    out
}

/// [`qmatmul_transb`] writing into a caller-provided output tensor
/// (reshaped in place, values bit-identical to the allocating path).
///
/// # Panics
///
/// Panics if the operands are not rank 2 or their row widths differ.
pub fn qmatmul_transb_into(a: &QTensor, b: &QTensor, out: &mut Tensor) {
    qmatmul_transb_with(a, b, &mut Vec::new(), out);
}

/// [`qmatmul_transb_into`] staging the packed operand in a caller-owned
/// buffer (no allocation once warm).
///
/// # Panics
///
/// Panics if the operands are not rank 2 or their row widths differ.
pub fn qmatmul_transb_with(a: &QTensor, b: &QTensor, pack: &mut Vec<i8>, out: &mut Tensor) {
    assert_eq!(a.dims().len(), 2, "qmatmul_transb lhs must be rank 2");
    assert_eq!(b.dims().len(), 2, "qmatmul_transb rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "qmatmul_transb inner dimensions must agree");
    let rescale = a.params().scale * b.params().scale;
    out.reset_unspecified(&[m, n]);
    qpack_b_t(b.data(), n, k, pack);
    qgemm_packed(a.data(), m, k, pack, n, rescale, out.data_mut());
}

/// Quantized linear layer: int8 weight, float bias, dynamic or static
/// activation quantization.
#[derive(Debug, Clone)]
pub struct QLinear {
    weight: QTensor,
    bias: Option<Vec<f32>>,
    /// Pre-calibrated activation scale; `None` = dynamic (per-call max-abs).
    activation: Option<crate::QuantParams>,
}

impl QLinear {
    /// Quantizes a float linear layer's weight (max-abs, symmetric).
    pub fn from_linear(layer: &heatvit_nn::layers::Linear) -> Self {
        Self {
            weight: QTensor::quantize(layer.weight().value()),
            bias: layer.bias().map(|b| b.value().data().to_vec()),
            activation: None,
        }
    }

    /// Sets a static activation scale recorded during calibration.
    pub fn set_activation_params(&mut self, params: crate::QuantParams) {
        self.activation = Some(params);
    }

    /// Drops the static activation scale, returning to dynamic max-abs.
    pub fn clear_activation_params(&mut self) {
        self.activation = None;
    }

    /// The quantized weight.
    pub fn weight(&self) -> &QTensor {
        &self.weight
    }

    /// The static activation parameters, if calibrated.
    pub fn activation_params(&self) -> Option<crate::QuantParams> {
        self.activation
    }

    /// Validates the input shape with a clear message *before* the integer
    /// pipeline runs. Shared by [`QLinear::infer`] and
    /// [`QLinear::infer_into`]: without the rank check a rank-3 input used
    /// to die with a confusing index panic deep inside `qmatmul`.
    fn check_input(&self, x: &Tensor) {
        assert_eq!(
            x.rank(),
            2,
            "QLinear input must be rank 2 [N, in_features], got rank {}",
            x.rank()
        );
        assert_eq!(x.dim(1), self.weight.dim(0), "input width mismatch");
    }

    /// Resolves the activation quantization parameters for one input:
    /// the calibrated static scale if set, dynamic max-abs otherwise.
    fn input_params(&self, x: &Tensor) -> crate::QuantParams {
        self.activation
            .unwrap_or_else(|| crate::QuantParams::observe(x))
    }

    /// Runs `x·W + b` through the integer pipeline: quantize activations,
    /// int8 GEMM, rescale, add float bias.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 `[N, in_features]`.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.check_input(x);
        let qx = QTensor::quantize_with(x, self.input_params(x));
        let mut out = qmatmul(&qx, &self.weight);
        self.add_bias(&mut out);
        out
    }

    /// [`QLinear::infer`] staging the quantized activations in `qbuf` and
    /// writing the result into `out` (both reused across calls; values
    /// bit-identical to the allocating path). This is the int8 counterpart
    /// of the float layers' `infer_into` discipline: once the buffers are
    /// warm the integer pipeline performs no per-call heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 `[N, in_features]`.
    pub fn infer_into(&self, x: &Tensor, qbuf: &mut QTensor, out: &mut Tensor) {
        self.infer_with(x, qbuf, &mut Vec::new(), out);
    }

    /// [`QLinear::infer_into`] additionally staging the packed weight panels
    /// in a caller-owned buffer — the fully allocation-free entry point used
    /// by the quantized blocks.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank-2 `[N, in_features]`.
    pub fn infer_with(&self, x: &Tensor, qbuf: &mut QTensor, pack: &mut Vec<i8>, out: &mut Tensor) {
        self.check_input(x);
        QTensor::quantize_with_into(x, self.input_params(x), qbuf);
        qmatmul_with(qbuf, &self.weight, pack, out);
        self.add_bias(out);
    }

    /// Runs the integer GEMM on activations the caller has already
    /// quantized (e.g. by the fused layer-norm + quantize path, or a single
    /// quantization pass shared by the Q/K/V projections).
    ///
    /// The caller is responsible for having quantized `qx` with this
    /// layer's activation parameters; the kernel simply trusts `qx.params()`.
    ///
    /// # Panics
    ///
    /// Panics if `qx` is not rank-2 `[N, in_features]`.
    pub fn infer_quantized_into(&self, qx: &QTensor, pack: &mut Vec<i8>, out: &mut Tensor) {
        qmatmul_with(qx, &self.weight, pack, out);
        self.add_bias(out);
    }

    fn add_bias(&self, out: &mut Tensor) {
        if let Some(bias) = &self.bias {
            let n = out.dim(1);
            for row in out.data_mut().chunks_mut(n) {
                for (o, &b) in row.iter_mut().zip(bias.iter()) {
                    *o += b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_nn::layers::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn qmatmul_tracks_float_gemm() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::rand_normal(&[8, 16], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[16, 8], 0.0, 1.0, &mut rng);
        let exact = a.matmul(&b);
        let quant = qmatmul(&QTensor::quantize(&a), &QTensor::quantize(&b));
        // Relative Frobenius error of an int8 GEMM on unit-scale data.
        let rel = quant.sub(&exact).norm() / exact.norm();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn qmatmul_is_exact_for_representable_values() {
        // Integers within ±127 at scale 1 are exactly representable.
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let qa = QTensor::quantize_with(&a, crate::QuantParams { scale: 1.0 });
        let qb = QTensor::quantize_with(&b, crate::QuantParams { scale: 1.0 });
        assert!(qmatmul(&qa, &qb).allclose(&a.matmul(&b), 0.0));
    }

    #[test]
    fn qmatmul_matches_integer_reference_on_edge_geometry() {
        // Remainder tiles (m/k/n off the QMR/QNR grid), single rows/columns
        // and empty shapes must all agree exactly with a naive i32 triple
        // loop — integer accumulation leaves no tolerance to hide behind.
        let mut rng = StdRng::seed_from_u64(20);
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 5, QNR + 1),
            (QMR + 1, QNR - 1, 1),
            (2 * QMR + 3, 33, 2 * QNR + 5),
            (0, 4, 4),
            (4, 0, 4),
            (4, 4, 0),
        ] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let (qa, qb) = (QTensor::quantize(&a), QTensor::quantize(&b));
            let out = qmatmul(&qa, &qb);
            let rescale = qa.params().scale * qb.params().scale;
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0i32;
                    for p in 0..k {
                        acc += qa.data()[i * k + p] as i32 * qb.data()[p * n + j] as i32;
                    }
                    let expect = acc as f32 * rescale;
                    assert_eq!(
                        out.at(&[i, j]),
                        expect,
                        "mismatch at ({i},{j}) of {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn qmatmul_repeated_runs_are_bitwise_deterministic() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::rand_normal(&[19, 37], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[37, 23], 0.0, 1.0, &mut rng);
        let (qa, qb) = (QTensor::quantize(&a), QTensor::quantize(&b));
        let first = qmatmul(&qa, &qb);
        let mut pack = Vec::new();
        for _ in 0..5 {
            let mut out = Tensor::default();
            qmatmul_with(&qa, &qb, &mut pack, &mut out);
            assert_eq!(out.data(), first.data());
        }
    }

    #[test]
    fn qlinear_matches_float_layer_closely() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(24, 12, true, &mut rng);
        let qlayer = QLinear::from_linear(&layer);
        let x = Tensor::rand_normal(&[5, 24], 0.0, 1.0, &mut rng);
        let exact = layer.infer(&x);
        let quant = qlayer.infer(&x);
        let rel = quant.sub(&exact).norm() / exact.norm();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn static_activation_scale_is_used() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 4, false, &mut rng);
        let mut qlayer = QLinear::from_linear(&layer);
        // A deliberately coarse activation scale must visibly degrade.
        qlayer.set_activation_params(crate::QuantParams::from_abs_max(100.0));
        let x = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let coarse = qlayer.infer(&x);
        let mut fine = QLinear::from_linear(&layer);
        fine.set_activation_params(crate::QuantParams::from_abs_max(3.0));
        let fine_out = fine.infer(&x);
        let exact = layer.infer(&x);
        assert!(
            coarse.sub(&exact).norm() > fine_out.sub(&exact).norm(),
            "coarse calibration should hurt more"
        );
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn qmatmul_checks_shapes() {
        let a = QTensor::quantize(&Tensor::zeros(&[2, 3]));
        let b = QTensor::quantize(&Tensor::zeros(&[4, 2]));
        qmatmul(&a, &b);
    }

    #[test]
    fn qmatmul_transb_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        // Width past several packed panels to exercise the tiled path.
        let a = Tensor::rand_normal(&[5, 80], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[7, 80], 0.0, 1.0, &mut rng);
        let qa = QTensor::quantize(&a);
        let qb = QTensor::quantize(&b);
        let qbt = QTensor::quantize_with(&b.transpose2(), qb.params());
        let direct = qmatmul_transb(&qa, &qb);
        let via_transpose = qmatmul(&qa, &qbt);
        assert!(direct.allclose(&via_transpose, 0.0));
        assert_eq!(direct.dims(), &[5, 7]);
    }

    #[test]
    fn qmatmul_into_variants_match_allocating_paths() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::rand_normal(&[9, 100], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[100, 70], 0.0, 1.0, &mut rng);
        let (qa, qb) = (QTensor::quantize(&a), QTensor::quantize(&b));
        // Stale differently-shaped buffers must be reshaped and overwritten.
        let mut out = Tensor::full(&[2, 2], 9.0);
        qmatmul_into(&qa, &qb, &mut out);
        assert!(out.allclose(&qmatmul(&qa, &qb), 0.0));
        let c = Tensor::rand_normal(&[11, 100], 0.0, 1.0, &mut rng);
        let qc = QTensor::quantize(&c);
        qmatmul_transb_into(&qa, &qc, &mut out);
        assert!(out.allclose(&qmatmul_transb(&qa, &qc), 0.0));
    }

    #[test]
    fn qlinear_infer_into_matches_infer() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(16, 8, true, &mut rng);
        let qlayer = QLinear::from_linear(&layer);
        let x = Tensor::rand_normal(&[6, 16], 0.0, 1.0, &mut rng);
        let mut qbuf = QTensor::default();
        let mut out = Tensor::default();
        qlayer.infer_into(&x, &mut qbuf, &mut out);
        assert!(out.allclose(&qlayer.infer(&x), 0.0));
        // The fully scratch-threaded path and the pre-quantized entry point
        // agree bitwise as well.
        let mut pack = Vec::new();
        let mut out2 = Tensor::default();
        qlayer.infer_with(&x, &mut qbuf, &mut pack, &mut out2);
        assert!(out2.allclose(&out, 0.0));
        qlayer.infer_quantized_into(&qbuf, &mut pack, &mut out2);
        assert!(out2.allclose(&out, 0.0));
    }

    #[test]
    #[should_panic(expected = "rank 2")]
    fn qlinear_infer_rejects_rank3_input_up_front() {
        // Regression: a rank-3 input used to reach qmatmul and die with a
        // confusing index panic; the rank is now asserted at the boundary.
        let mut rng = StdRng::seed_from_u64(6);
        let qlayer = QLinear::from_linear(&Linear::new(4, 4, true, &mut rng));
        qlayer.infer(&Tensor::zeros(&[2, 3, 4]));
    }

    #[test]
    #[should_panic(expected = "rank 2")]
    fn qlinear_infer_into_shares_the_rank_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let qlayer = QLinear::from_linear(&Linear::new(4, 4, true, &mut rng));
        qlayer.infer_into(
            &Tensor::zeros(&[2, 3, 4]),
            &mut QTensor::default(),
            &mut Tensor::default(),
        );
    }
}
