//! Quantized tensors and quantization parameters.

use heatvit_tensor::Tensor;

/// Quantization parameters mapping `f32 ↔ int8`.
///
/// HeatViT uses symmetric 8-bit fixed-point quantization for weights and
/// activations (paper Section V), so the zero point is 0 and the mapping is
/// `q = clamp(round(x / scale), -127, 127)`.
///
/// # Examples
///
/// ```
/// use heatvit_quant::QuantParams;
///
/// let qp = QuantParams::from_abs_max(2.54);
/// assert!((qp.scale - 0.02).abs() < 1e-6);
/// assert_eq!(qp.quantize(1.0), 50);
/// assert!((qp.dequantize(50) - 1.0).abs() < qp.scale);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real value represented by one integer step.
    pub scale: f32,
}

impl QuantParams {
    /// The symmetric int8 quantization range limit.
    pub const QMAX: i32 = 127;

    /// Parameters covering the range `[-abs_max, abs_max]`.
    ///
    /// A degenerate `abs_max` of zero maps to a tiny positive scale so the
    /// quantizer stays well-defined for all-zero tensors.
    pub fn from_abs_max(abs_max: f32) -> Self {
        let abs_max = abs_max.abs().max(1e-8);
        Self {
            scale: abs_max / Self::QMAX as f32,
        }
    }

    /// Parameters calibrated from a tensor's max-abs value.
    pub fn observe(t: &Tensor) -> Self {
        let abs_max = t.data().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        Self::from_abs_max(abs_max)
    }

    /// Quantizes one value.
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        q.clamp(-(Self::QMAX as f32), Self::QMAX as f32) as i8
    }

    /// Dequantizes one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// An int8 tensor with its quantization parameters.
#[derive(Debug, Clone)]
pub struct QTensor {
    data: Vec<i8>,
    dims: Vec<usize>,
    params: QuantParams,
}

impl Default for QTensor {
    /// An empty staging buffer (shape `[0]`, unit scale) for use with
    /// [`QTensor::quantize_with_into`].
    fn default() -> Self {
        Self {
            data: Vec::new(),
            dims: vec![0],
            params: QuantParams { scale: 1.0 },
        }
    }
}

impl QTensor {
    /// Quantizes a float tensor with max-abs calibration.
    pub fn quantize(t: &Tensor) -> Self {
        Self::quantize_with(t, QuantParams::observe(t))
    }

    /// Quantizes a float tensor with the given parameters.
    pub fn quantize_with(t: &Tensor, params: QuantParams) -> Self {
        Self {
            data: t.data().iter().map(|&v| params.quantize(v)).collect(),
            dims: t.dims().to_vec(),
            params,
        }
    }

    /// [`QTensor::quantize_with`] writing into a caller-provided buffer.
    ///
    /// `out`'s integer storage is reused (no allocation once warm) and its
    /// shape/parameters are overwritten — the int8 analogue of the float
    /// `_into` ops backing the engine's allocation-free hot path. Values are
    /// identical to the allocating path.
    pub fn quantize_with_into(t: &Tensor, params: QuantParams, out: &mut QTensor) {
        out.data.clear();
        out.data
            .extend(t.data().iter().map(|&v| params.quantize(v)));
        out.dims.clear();
        out.dims.extend_from_slice(t.dims());
        out.params = params;
    }

    /// Begins an incremental refill: installs `dims` and `params`, clears
    /// the integer storage (keeping its allocation), and hands the caller
    /// the backing buffer to push quantized values into — the entry point of
    /// the fused layer-norm + quantize path, which appends one normalized
    /// tile at a time instead of quantizing a materialized float tensor.
    ///
    /// The caller must push exactly `dims.iter().product()` values (each
    /// computed with `params.quantize`) before using the tensor; the kernels
    /// debug-assert the length.
    pub fn start_fill(&mut self, dims: &[usize], params: QuantParams) -> &mut Vec<i8> {
        self.dims.clear();
        self.dims.extend_from_slice(dims);
        self.params = params;
        self.data.clear();
        &mut self.data
    }

    /// The integer data (row-major).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The quantization parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Reconstructs the float tensor (with quantization error).
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            self.data
                .iter()
                .map(|&q| self.params.dequantize(q))
                .collect(),
            &self.dims,
        )
    }

    /// Worst-case elementwise reconstruction error of this tensor.
    pub fn max_quant_error(&self, original: &Tensor) -> f32 {
        self.dequantize().max_abs_diff(original)
    }
}

/// Round-trips a tensor through int8 ("fake quantization") — the standard
/// way to measure accuracy impact without integer kernels.
pub fn fake_quantize(t: &Tensor) -> Tensor {
    QTensor::quantize(t).dequantize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Tensor::rand_normal(&[32, 32], 0.0, 1.0, &mut rng);
        let q = QTensor::quantize(&t);
        // Everything inside the calibrated range errs by ≤ scale/2.
        assert!(q.max_quant_error(&t) <= q.params().scale * 0.5 + 1e-7);
    }

    #[test]
    fn quantize_saturates_outliers() {
        let qp = QuantParams::from_abs_max(1.0);
        assert_eq!(qp.quantize(5.0), 127);
        assert_eq!(qp.quantize(-5.0), -127);
    }

    #[test]
    fn zero_tensor_is_stable() {
        let t = Tensor::zeros(&[4, 4]);
        let q = QTensor::quantize(&t);
        assert!(q.dequantize().allclose(&t, 0.0));
    }

    #[test]
    fn symmetric_range_is_symmetric() {
        let qp = QuantParams::from_abs_max(2.0);
        assert_eq!(qp.quantize(2.0), -qp.quantize(-2.0));
    }

    #[test]
    fn fake_quantize_preserves_shape_and_signal() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::rand_normal(&[8, 8], 0.0, 2.0, &mut rng);
        let f = fake_quantize(&t);
        assert_eq!(f.dims(), t.dims());
        // SQNR should be high: int8 on a well-scaled signal ≈ 30+ dB.
        let noise = f.sub(&t).norm();
        let signal = t.norm();
        assert!(signal / noise.max(1e-9) > 30.0, "sqnr too low");
    }

    #[test]
    fn quantize_with_into_reuses_buffer_and_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::rand_normal(&[6, 6], 0.0, 1.0, &mut rng);
        let params = QuantParams::observe(&t);
        let mut buf = QTensor::default();
        QTensor::quantize_with_into(&t, params, &mut buf);
        let fresh = QTensor::quantize_with(&t, params);
        assert_eq!(buf.data(), fresh.data());
        assert_eq!(buf.dims(), fresh.dims());
        // Refilling with a smaller tensor reshapes without reallocating.
        let cap = buf.data.capacity();
        let small = Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng);
        QTensor::quantize_with_into(&small, params, &mut buf);
        assert_eq!(buf.dims(), &[2, 3]);
        assert_eq!(buf.data.capacity(), cap);
    }

    #[test]
    fn start_fill_tiled_quantize_matches_whole_tensor() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::rand_normal(&[9, 5], 0.0, 1.0, &mut rng);
        let params = QuantParams::observe(&t);
        let whole = QTensor::quantize_with(&t, params);
        let mut buf = QTensor::default();
        let fill = buf.start_fill(t.dims(), params);
        for chunk in t.data().chunks(2 * 5) {
            fill.extend(chunk.iter().map(|&v| params.quantize(v)));
        }
        assert_eq!(buf.data(), whole.data());
        assert_eq!(buf.dims(), whole.dims());
        assert_eq!(buf.params(), whole.params());
    }

    #[test]
    fn observe_matches_from_abs_max() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        let a = QuantParams::observe(&t);
        let b = QuantParams::from_abs_max(3.0);
        assert_eq!(a, b);
    }
}
