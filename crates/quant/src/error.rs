//! Quantization-error regularization analysis (paper Section V-E).
//!
//! The paper argues that scaling the approximated GELU and Softmax by
//! `δ < 1` *contracts* quantization noise: a perturbation `Δe` on the input
//! propagates to the output through the derivative, and both approximated
//! functions keep that derivative's aggregate magnitude below one
//! (Eqs. 15–17, Fig. 10). This module provides the machinery to verify the
//! claim empirically and to regenerate Fig. 10.

use crate::approx::{gelu_approx_derivative, softmax_approx_rows};
use heatvit_tensor::{scalar, Tensor};

/// One point of the Fig. 10 curve: derivative of original vs. approximated
/// GELU at `x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivativePoint {
    /// Input location.
    pub x: f32,
    /// `d GELU(x) / dx` (original).
    pub original: f32,
    /// `d GELU_aprx(x) / dx` with the given δ₁.
    pub approximated: f32,
}

/// Samples the Fig. 10 derivative curves over `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo >= hi` or `points < 2`.
pub fn gelu_derivative_curve(lo: f32, hi: f32, points: usize, delta1: f32) -> Vec<DerivativePoint> {
    assert!(lo < hi, "empty sample range");
    assert!(points >= 2, "need at least two samples");
    (0..points)
        .map(|i| {
            let x = lo + (hi - lo) * i as f32 / (points - 1) as f32;
            DerivativePoint {
                x,
                original: scalar::gelu_derivative(x),
                approximated: gelu_approx_derivative(x, delta1),
            }
        })
        .collect()
}

/// Empirical error-amplification factor of a scalar function: perturbs `x`
/// by `±Δe` and reports `|f(x+Δe) − f(x)| / Δe` maximized over the sampled
/// range — a direct check of Eq. 15.
pub fn max_error_amplification(f: impl Fn(f32) -> f32, lo: f32, hi: f32, delta_e: f32) -> f32 {
    let mut worst = 0.0f32;
    let steps = 400;
    for i in 0..=steps {
        let x = lo + (hi - lo) * i as f32 / steps as f32;
        let amp = (f(x + delta_e) - f(x)).abs() / delta_e;
        worst = worst.max(amp);
    }
    worst
}

/// The Eq. 17 bound: for Softmax with regularization δ₂, a perturbation of
/// input `x₀` changes the outputs by at most `2·δ₂·A₀·(1−A₀)·|Δe| < |Δe|`.
/// Returns the worst observed total output change divided by `|Δe|` over
/// random rows — must stay below 1.
pub fn softmax_error_amplification(rows: usize, cols: usize, delta2: f32, seed: u64) -> f32 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let delta_e = 1e-2f32;
    let mut worst = 0.0f32;
    for _ in 0..rows {
        let x = Tensor::rand_normal(&[1, cols], 0.0, 2.0, &mut rng);
        let base = softmax_approx_rows(&x, delta2);
        let mut bumped = x.clone();
        bumped.data_mut()[0] += delta_e;
        let after = softmax_approx_rows(&bumped, delta2);
        let total_change: f32 = base
            .data()
            .iter()
            .zip(after.data().iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        worst = worst.max(total_change / delta_e);
    }
    worst
}

/// End-to-end check: quantization noise through GELU. Injects uniform noise
/// of magnitude `noise` on a tensor, passes both through `f`, and returns
/// `(mean input error, mean output error)` — regularized functions must not
/// amplify.
pub fn noise_propagation(
    f: impl Fn(f32) -> f32,
    input: &Tensor,
    noise: f32,
    seed: u64,
) -> (f32, f32) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy = input.map(|v| v + rng.gen_range(-noise..noise));
    let in_err = noisy.sub(input).map(f32::abs).mean_all();
    let out_clean = input.map(&f);
    let out_noisy = noisy.map(&f);
    let out_err = out_noisy.sub(&out_clean).map(f32::abs).mean_all();
    (in_err, out_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{gelu_approx, DEFAULT_DELTA1};

    #[test]
    fn fig10_regularized_derivative_stays_below_one() {
        let curve = gelu_derivative_curve(-4.0, 4.0, 200, DEFAULT_DELTA1);
        for p in &curve {
            assert!(
                p.approximated.abs() < 1.0,
                "x={}: approx derivative {}",
                p.x,
                p.approximated
            );
        }
        // The original GELU derivative *does* exceed 1 for x ≳ 1 — that is
        // the whole point of the figure.
        assert!(curve.iter().any(|p| p.original > 1.0));
    }

    #[test]
    fn amplification_matches_eq15() {
        let amp = max_error_amplification(|x| gelu_approx(x, DEFAULT_DELTA1), -4.0, 4.0, 1e-2);
        assert!(amp < 1.0, "regularized GELU amplifies noise: {amp}");
        let amp_orig = max_error_amplification(scalar::gelu, -4.0, 4.0, 1e-2);
        assert!(amp_orig > 1.0, "original GELU should exceed 1: {amp_orig}");
    }

    #[test]
    fn softmax_amplification_below_one_with_delta() {
        let amp = softmax_error_amplification(50, 8, 0.5, 0);
        assert!(amp < 1.0, "regularized softmax amplifies: {amp}");
        // δ₂ = 1 halves the margin: 2·A(1−A) ≤ 0.5 still < 1, so even the
        // unregularized form contracts — δ₂ just enlarges the margin
        // (Eq. 17 notes 2A₀(1−A₀) is *always* < 1).
        let amp1 = softmax_error_amplification(50, 8, 1.0, 0);
        assert!(amp > 0.0 && amp < amp1);
    }

    #[test]
    fn noise_through_regularized_gelu_contracts() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::rand_normal(&[64, 64], 0.0, 1.5, &mut rng);
        let (in_err, out_err) = noise_propagation(|v| gelu_approx(v, DEFAULT_DELTA1), &x, 0.05, 2);
        assert!(
            out_err < in_err,
            "quantization noise grew: {in_err} -> {out_err}"
        );
    }

    #[test]
    fn curve_is_deterministic_and_ordered() {
        let a = gelu_derivative_curve(-2.0, 2.0, 50, 0.5);
        let b = gelu_derivative_curve(-2.0, 2.0, 50, 0.5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].x < w[1].x));
    }
}
