//! Polynomial approximations of ViT nonlinear functions (paper Section V-D).
//!
//! The Vitis HLS math library implements `exp`/`erf` with deep pipelines that
//! burn hundreds of LUT/FF and several DSPs (paper Table III). HeatViT
//! replaces them with short polynomials — second-order for `erf` (Eq. 11,
//! after I-BERT) and for the softmax exponent (Eq. 14 plus a shift), and a
//! piecewise-linear sigmoid (PLAN) — and *deliberately scales the outputs by
//! regularization factors* `δ₁, δ₂ < 1` so downstream quantization error
//! shrinks (Section V-E).

use heatvit_tensor::Tensor;

/// Coefficient `a` of the erf polynomial (Eq. 11).
pub const ERF_A: f32 = -0.2888;
/// Coefficient `b` of the erf polynomial (Eq. 11).
pub const ERF_B: f32 = -1.769;
/// Default regularization factor δ₁ for GELU (paper uses 0.5).
pub const DEFAULT_DELTA1: f32 = 0.5;
/// Default regularization factor δ₂ for Softmax (paper uses 0.5).
pub const DEFAULT_DELTA2: f32 = 0.5;

/// Second-order polynomial approximation of `erf` (paper Eq. 11):
///
/// `L_erf(x) = sign(x) · δ₁ · [a·(clip(|x|, max=−b) + b)² + 1]`
///
/// With `δ₁ = 1` this is the I-BERT approximation; HeatViT sets `δ₁ < 1`
/// to regularize quantization error.
pub fn erf_approx(x: f32, delta1: f32) -> f32 {
    let clipped = x.abs().min(-ERF_B);
    let val = ERF_A * (clipped + ERF_B) * (clipped + ERF_B) + 1.0;
    x.signum() * delta1 * val
}

/// Approximated GELU (paper Eq. 12):
/// `GELU_aprx(x) = x/2 · (1 + L_erf(x/√2))`.
pub fn gelu_approx(x: f32, delta1: f32) -> f32 {
    0.5 * x * (1.0 + erf_approx(x / std::f32::consts::SQRT_2, delta1))
}

/// Derivative of the approximated GELU (used by Fig. 10 and the Eq. 15
/// error argument). Derived analytically from Eqs. 11–12.
pub fn gelu_approx_derivative(x: f32, delta1: f32) -> f32 {
    let s = x / std::f32::consts::SQRT_2;
    let l = erf_approx(s, delta1);
    // d/dx [x/2·(1 + L(x/√2))] = (1 + L)/2 + x/2 · L'(x/√2) / √2
    let lprime = if s.abs() >= -ERF_B {
        0.0
    } else {
        // Inside the clip: L(s) = sign(s)·δ·[a(|s|+b)²+1]
        // dL/ds = δ·a·2(|s|+b)·sign(s)·d|s|/ds = 2δ·a·(|s|+b)
        2.0 * delta1 * ERF_A * (s.abs() + ERF_B)
    };
    0.5 * (1.0 + l) + 0.5 * x * lprime / std::f32::consts::SQRT_2
}

/// Polynomial approximation of `exp(p)` on `p ∈ (−ln2, 0]` (paper Eq. 14).
pub fn exp_poly(p: f32) -> f32 {
    0.3585 * (p + 1.353) * (p + 1.353) + 0.344
}

/// Largest shift count applied by [`exp_shift`]. Beyond 126 bits the true
/// `exp(x̃)` sits below `f32::MIN_POSITIVE` anyway, and `2^z` would overflow
/// to infinity at `z = 128` — so the result is flushed to exactly `0.0`.
pub const EXP_SHIFT_MAX: f32 = 126.0;

/// Inputs this far below the row max are flushed to exactly `0.0` by
/// [`softmax_approx_rows`] without evaluating [`exp_shift`]. The cutoff is
/// `ln(f32::MIN_POSITIVE) ≈ −87.3`: anything below contributes nothing to a
/// row sum that is always ≥ `exp̃(0) ≈ 1`, and masked attention scores
/// (`heatvit-vit`'s `MASK_PENALTY = −1e4`) land far past it.
pub const SOFTMAX_FLUSH: f32 = -87.0;

/// Shift-based approximation of `exp(x̃)` for `x̃ ≤ 0` (paper Section V-D):
/// decompose `x̃ = −ln2·z + p`, compute `exp(p)` with [`exp_poly`] and apply
/// the power of two as a right shift.
///
/// The hardware kernel is only defined on `x̃ ≤ 0` (softmax feeds it
/// `x − x_max`). Out-of-domain inputs are handled instead of producing
/// garbage: positive inputs clamp to the domain edge `exp̃(0)`, and inputs so
/// negative that the shift leaves the `f32` exponent range
/// ([`EXP_SHIFT_MAX`] bits) flush to exactly `0.0` rather than sending `2^z`
/// through `powi` overflow.
pub fn exp_shift(x_tilde: f32) -> f32 {
    let x = x_tilde.min(0.0);
    let z = (-x / std::f32::consts::LN_2).floor();
    if z > EXP_SHIFT_MAX {
        return 0.0;
    }
    let p = x + z * std::f32::consts::LN_2;
    // exp(p) >> z
    exp_poly(p) / (2.0f32).powi(z as i32)
}

/// Approximated softmax over each row (paper Eq. 13):
/// `Softmax_aprx(xᵢ) = δ₂ · exp̃(xᵢ − x_max) / Σⱼ exp̃(xⱼ − x_max)`.
///
/// Entries more than [`SOFTMAX_FLUSH`] below their row max — in particular
/// attention scores masked with a large negative constant — are flushed to
/// exactly `0.0` before normalization, so masked columns receive zero weight
/// and the row sum stays finite (the max entry always contributes
/// `exp̃(0) ≈ 1`, so no `0/0` is possible).
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn softmax_approx_rows(x: &Tensor, delta2: f32) -> Tensor {
    let mut out = x.clone();
    softmax_approx_rows_inplace(&mut out, delta2);
    out
}

/// [`softmax_approx_rows`] overwriting `x` in place — the allocation-free
/// form used by the quantized engine's scratch workspace (values identical
/// to the allocating path).
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn softmax_approx_rows_inplace(x: &mut Tensor, delta2: f32) {
    assert_eq!(x.rank(), 2, "softmax_approx_rows requires rank 2");
    let cols = x.dim(1);
    for row in x.data_mut().chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            let shifted = *v - max;
            *v = if shifted <= SOFTMAX_FLUSH {
                0.0
            } else {
                exp_shift(shifted)
            };
            sum += *v;
        }
        for v in row.iter_mut() {
            *v = delta2 * *v / sum;
        }
    }
}

/// Piecewise-linear sigmoid (PLAN, Tsmots et al. — paper reference \[46\]).
pub fn sigmoid_plan(x: f32) -> f32 {
    let a = x.abs();
    let y = if a >= 5.0 {
        1.0
    } else if a >= 2.375 {
        0.03125 * a + 0.84375
    } else if a >= 1.0 {
        0.125 * a + 0.625
    } else {
        0.25 * a + 0.5
    };
    if x >= 0.0 {
        y
    } else {
        1.0 - y
    }
}

/// Applies the approximated GELU elementwise.
pub fn gelu_approx_tensor(x: &Tensor, delta1: f32) -> Tensor {
    x.map(|v| gelu_approx(v, delta1))
}

/// [`gelu_approx_tensor`] overwriting `x` in place — the allocation-free
/// form used by the quantized engine's scratch workspace.
pub fn gelu_approx_inplace(x: &mut Tensor, delta1: f32) {
    x.map_inplace(|v| gelu_approx(v, delta1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_tensor::scalar;

    #[test]
    fn erf_approx_tracks_exact_erf_at_delta_one() {
        // I-BERT reports ~2e-2 max error for this polynomial.
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            let err = (erf_approx(x, 1.0) - scalar::erf(x)).abs();
            assert!(err < 0.11, "x={x}: err={err}");
        }
    }

    #[test]
    fn gelu_approx_tracks_exact_gelu_at_delta_one() {
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            let err = (gelu_approx(x, 1.0) - scalar::gelu(x)).abs();
            assert!(err < 0.06, "x={x}: err={err}");
        }
    }

    #[test]
    fn delta1_shrinks_the_output() {
        for i in 1..=30 {
            let x = i as f32 * 0.1;
            assert!(gelu_approx(x, 0.5) <= gelu_approx(x, 1.0) + 1e-7);
        }
    }

    #[test]
    fn exp_poly_matches_exp_on_segment() {
        // Eq. 14's quoted accuracy on (−ln2, 0].
        let mut p = -std::f32::consts::LN_2 + 1e-3;
        while p <= 0.0 {
            let err = (exp_poly(p) - p.exp()).abs();
            assert!(err < 0.02, "p={p}: err={err}");
            p += 0.01;
        }
    }

    #[test]
    fn exp_shift_matches_exp_for_negative_inputs() {
        let mut x = -20.0f32;
        while x <= 0.0 {
            let approx = exp_shift(x);
            let exact = x.exp();
            let err = (approx - exact).abs();
            // Relative-ish bound: the poly error is scaled down by the shift.
            assert!(err < 0.02 * exact.max(1e-3), "x={x}: {approx} vs {exact}");
            x += 0.173;
        }
    }

    #[test]
    fn exp_shift_clamps_positive_inputs_to_domain_edge() {
        // Regression: outside the debug-asserted domain the old kernel
        // evaluated exp_poly off its segment and *amplified* by 2^|z| in
        // release builds. Positive inputs now clamp to exp̃(0).
        let edge = exp_shift(0.0);
        assert!((edge - 1.0).abs() < 0.01, "exp̃(0) = {edge}");
        for x in [1e-6f32, 0.3, 5.0, 1e4, f32::MAX] {
            assert_eq!(exp_shift(x), edge, "x={x} must clamp to exp̃(0)");
        }
    }

    #[test]
    fn exp_shift_flushes_deeply_negative_inputs_to_zero() {
        // Regression: a deeply negative input used to push 2^z through powi
        // overflow. Beyond the f32 shift range the result is exactly 0.0.
        // The flush begins once z = ⌊−x/ln2⌋ exceeds 126, i.e. x < −127·ln2.
        for x in [-89.0f32, -200.0, -1e4, -1e10, f32::MIN] {
            let y = exp_shift(x);
            assert_eq!(y, 0.0, "x={x} gave {y}");
        }
        // Just inside the range the value is still a positive subnormal-ish
        // number, and the kernel stays monotone across the cutoff.
        let inside = exp_shift(-80.0);
        assert!(inside > 0.0 && inside < 1e-30, "exp̃(-80) = {inside}");
        assert!(exp_shift(-88.0) >= exp_shift(-89.0));
    }

    #[test]
    fn softmax_approx_rows_sum_to_delta2() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = softmax_approx_rows(&x, 0.5);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 0.5).abs() < 1e-3, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_approx_preserves_ranking() {
        let x = Tensor::from_vec(vec![0.2, 2.0, -1.0, 0.9], &[1, 4]);
        let exact = x.softmax_rows();
        let approx = softmax_approx_rows(&x, 1.0);
        let rank = |t: &Tensor| {
            let mut idx: Vec<usize> = (0..4).collect();
            idx.sort_by(|&a, &b| t.at(&[0, a]).total_cmp(&t.at(&[0, b])));
            idx
        };
        assert_eq!(rank(&exact), rank(&approx));
    }

    #[test]
    fn softmax_flushes_masked_entries_to_exact_zero() {
        // Regression: attention masks scores additively with −1e4
        // (heatvit-vit's MASK_PENALTY); that used to drive exp_shift through
        // powi overflow and could NaN the row. Masked entries must come out
        // exactly 0.0 and the row must still normalize to δ₂.
        const MASK_PENALTY: f32 = -1e4; // mirrors crates/vit/src/attention.rs
        let x = Tensor::from_vec(
            vec![0.4, 1.0 + MASK_PENALTY, -0.2, 0.1 + MASK_PENALTY],
            &[1, 4],
        );
        for delta2 in [1.0f32, 0.5] {
            let s = softmax_approx_rows(&x, delta2);
            assert_eq!(s.at(&[0, 1]), 0.0);
            assert_eq!(s.at(&[0, 3]), 0.0);
            assert!(s.data().iter().all(|v| v.is_finite()));
            let sum: f32 = s.row(0).iter().sum();
            assert!((sum - delta2).abs() < 1e-3, "row sums to {sum}");
            assert!(s.at(&[0, 0]) > s.at(&[0, 2]), "ranking preserved");
        }
        // A fully-masked row (every score = MASK_PENALTY) degrades to
        // uniform rather than NaN: max subtraction brings it back to 0.
        let all_masked = Tensor::full(&[1, 3], MASK_PENALTY);
        let s = softmax_approx_rows(&all_masked, 1.0);
        for v in s.row(0) {
            assert!((v - 1.0 / 3.0).abs() < 1e-3, "got {v}");
        }
    }

    #[test]
    fn softmax_inplace_and_gelu_inplace_match_allocating_paths() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0, -0.4, 1.1], &[2, 3]);
        let mut s = x.clone();
        softmax_approx_rows_inplace(&mut s, 0.5);
        assert!(s.allclose(&softmax_approx_rows(&x, 0.5), 0.0));
        let mut g = x.clone();
        gelu_approx_inplace(&mut g, 0.5);
        assert!(g.allclose(&gelu_approx_tensor(&x, 0.5), 0.0));
    }

    #[test]
    fn sigmoid_plan_tracks_sigmoid() {
        // PLAN's published max error is ~0.0189.
        for i in -80..=80 {
            let x = i as f32 * 0.1;
            let err = (sigmoid_plan(x) - scalar::sigmoid(x)).abs();
            assert!(err < 0.02, "x={x}: err={err}");
        }
    }

    #[test]
    fn sigmoid_plan_is_monotone_and_bounded() {
        let mut last = -1.0f32;
        for i in -100..=100 {
            let y = sigmoid_plan(i as f32 * 0.07);
            assert!(y >= last - 1e-6, "non-monotone at {i}");
            assert!((0.0..=1.0).contains(&y));
            last = y;
        }
    }

    #[test]
    fn gelu_approx_derivative_matches_numeric() {
        for delta in [0.5f32, 1.0] {
            for i in -35..=35 {
                // Offset to dodge x = 0, where L_erf's sign(x) factor makes
                // the approximation non-differentiable (cf. the hardswish
                // test in heatvit-tensor, which avoids its kinks the same
                // way).
                let x = i as f32 * 0.11 + 0.005;
                let h = 1e-3;
                let numeric = (gelu_approx(x + h, delta) - gelu_approx(x - h, delta)) / (2.0 * h);
                let analytic = gelu_approx_derivative(x, delta);
                assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "x={x} δ={delta}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn regularized_gelu_derivative_is_below_one() {
        // The Fig. 10 / Eq. 15 claim: with δ₁ = 0.5 the approximated GELU's
        // derivative magnitude stays below 1, so quantization error shrinks.
        for i in -400..=400 {
            let x = i as f32 * 0.01;
            let d = gelu_approx_derivative(x, DEFAULT_DELTA1).abs();
            assert!(d < 1.0, "x={x}: |dA/dx| = {d}");
        }
    }
}
