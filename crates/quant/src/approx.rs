//! Polynomial approximations of ViT nonlinear functions (paper Section V-D).
//!
//! The Vitis HLS math library implements `exp`/`erf` with deep pipelines that
//! burn hundreds of LUT/FF and several DSPs (paper Table III). HeatViT
//! replaces them with short polynomials — second-order for `erf` (Eq. 11,
//! after I-BERT) and for the softmax exponent (Eq. 14 plus a shift), and a
//! piecewise-linear sigmoid (PLAN) — and *deliberately scales the outputs by
//! regularization factors* `δ₁, δ₂ < 1` so downstream quantization error
//! shrinks (Section V-E).

use heatvit_tensor::Tensor;

/// Coefficient `a` of the erf polynomial (Eq. 11).
pub const ERF_A: f32 = -0.2888;
/// Coefficient `b` of the erf polynomial (Eq. 11).
pub const ERF_B: f32 = -1.769;
/// Default regularization factor δ₁ for GELU (paper uses 0.5).
pub const DEFAULT_DELTA1: f32 = 0.5;
/// Default regularization factor δ₂ for Softmax (paper uses 0.5).
pub const DEFAULT_DELTA2: f32 = 0.5;

/// Second-order polynomial approximation of `erf` (paper Eq. 11):
///
/// `L_erf(x) = sign(x) · δ₁ · [a·(clip(|x|, max=−b) + b)² + 1]`
///
/// With `δ₁ = 1` this is the I-BERT approximation; HeatViT sets `δ₁ < 1`
/// to regularize quantization error.
pub fn erf_approx(x: f32, delta1: f32) -> f32 {
    let clipped = x.abs().min(-ERF_B);
    let val = ERF_A * (clipped + ERF_B) * (clipped + ERF_B) + 1.0;
    x.signum() * delta1 * val
}

/// Approximated GELU (paper Eq. 12):
/// `GELU_aprx(x) = x/2 · (1 + L_erf(x/√2))`.
pub fn gelu_approx(x: f32, delta1: f32) -> f32 {
    0.5 * x * (1.0 + erf_approx(x / std::f32::consts::SQRT_2, delta1))
}

/// Derivative of the approximated GELU (used by Fig. 10 and the Eq. 15
/// error argument). Derived analytically from Eqs. 11–12.
pub fn gelu_approx_derivative(x: f32, delta1: f32) -> f32 {
    let s = x / std::f32::consts::SQRT_2;
    let l = erf_approx(s, delta1);
    // d/dx [x/2·(1 + L(x/√2))] = (1 + L)/2 + x/2 · L'(x/√2) / √2
    let lprime = if s.abs() >= -ERF_B {
        0.0
    } else {
        // Inside the clip: L(s) = sign(s)·δ·[a(|s|+b)²+1]
        // dL/ds = δ·a·2(|s|+b)·sign(s)·d|s|/ds = 2δ·a·(|s|+b)
        2.0 * delta1 * ERF_A * (s.abs() + ERF_B)
    };
    0.5 * (1.0 + l) + 0.5 * x * lprime / std::f32::consts::SQRT_2
}

/// Polynomial approximation of `exp(p)` on `p ∈ (−ln2, 0]` (paper Eq. 14).
pub fn exp_poly(p: f32) -> f32 {
    0.3585 * (p + 1.353) * (p + 1.353) + 0.344
}

/// Shift-based approximation of `exp(x̃)` for `x̃ ≤ 0` (paper Section V-D):
/// decompose `x̃ = −ln2·z + p`, compute `exp(p)` with [`exp_poly`] and apply
/// the power of two as a right shift.
pub fn exp_shift(x_tilde: f32) -> f32 {
    debug_assert!(x_tilde <= 1e-6, "exp_shift expects non-positive input");
    let z = (-x_tilde / std::f32::consts::LN_2).floor();
    let p = x_tilde + z * std::f32::consts::LN_2;
    // exp(p) >> z
    exp_poly(p) / (2.0f32).powi(z as i32)
}

/// Approximated softmax over each row (paper Eq. 13):
/// `Softmax_aprx(xᵢ) = δ₂ · exp̃(xᵢ − x_max) / Σⱼ exp̃(xⱼ − x_max)`.
///
/// # Panics
///
/// Panics if `x` is not rank 2.
pub fn softmax_approx_rows(x: &Tensor, delta2: f32) -> Tensor {
    assert_eq!(x.rank(), 2, "softmax_approx_rows requires rank 2");
    let mut out = x.clone();
    let cols = x.dim(1);
    for row in out.data_mut().chunks_mut(cols) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = exp_shift(*v - max);
            sum += *v;
        }
        for v in row.iter_mut() {
            *v = delta2 * *v / sum;
        }
    }
    out
}

/// Piecewise-linear sigmoid (PLAN, Tsmots et al. — paper reference [46]).
pub fn sigmoid_plan(x: f32) -> f32 {
    let a = x.abs();
    let y = if a >= 5.0 {
        1.0
    } else if a >= 2.375 {
        0.03125 * a + 0.84375
    } else if a >= 1.0 {
        0.125 * a + 0.625
    } else {
        0.25 * a + 0.5
    };
    if x >= 0.0 {
        y
    } else {
        1.0 - y
    }
}

/// Applies the approximated GELU elementwise.
pub fn gelu_approx_tensor(x: &Tensor, delta1: f32) -> Tensor {
    x.map(|v| gelu_approx(v, delta1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_tensor::scalar;

    #[test]
    fn erf_approx_tracks_exact_erf_at_delta_one() {
        // I-BERT reports ~2e-2 max error for this polynomial.
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            let err = (erf_approx(x, 1.0) - scalar::erf(x)).abs();
            assert!(err < 0.11, "x={x}: err={err}");
        }
    }

    #[test]
    fn gelu_approx_tracks_exact_gelu_at_delta_one() {
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            let err = (gelu_approx(x, 1.0) - scalar::gelu(x)).abs();
            assert!(err < 0.06, "x={x}: err={err}");
        }
    }

    #[test]
    fn delta1_shrinks_the_output() {
        for i in 1..=30 {
            let x = i as f32 * 0.1;
            assert!(gelu_approx(x, 0.5) <= gelu_approx(x, 1.0) + 1e-7);
        }
    }

    #[test]
    fn exp_poly_matches_exp_on_segment() {
        // Eq. 14's quoted accuracy on (−ln2, 0].
        let mut p = -std::f32::consts::LN_2 + 1e-3;
        while p <= 0.0 {
            let err = (exp_poly(p) - p.exp()).abs();
            assert!(err < 0.02, "p={p}: err={err}");
            p += 0.01;
        }
    }

    #[test]
    fn exp_shift_matches_exp_for_negative_inputs() {
        let mut x = -20.0f32;
        while x <= 0.0 {
            let approx = exp_shift(x);
            let exact = x.exp();
            let err = (approx - exact).abs();
            // Relative-ish bound: the poly error is scaled down by the shift.
            assert!(err < 0.02 * exact.max(1e-3), "x={x}: {approx} vs {exact}");
            x += 0.173;
        }
    }

    #[test]
    fn softmax_approx_rows_sum_to_delta2() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]);
        let s = softmax_approx_rows(&x, 0.5);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 0.5).abs() < 1e-3, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_approx_preserves_ranking() {
        let x = Tensor::from_vec(vec![0.2, 2.0, -1.0, 0.9], &[1, 4]);
        let exact = x.softmax_rows();
        let approx = softmax_approx_rows(&x, 1.0);
        let rank = |t: &Tensor| {
            let mut idx: Vec<usize> = (0..4).collect();
            idx.sort_by(|&a, &b| t.at(&[0, a]).total_cmp(&t.at(&[0, b])));
            idx
        };
        assert_eq!(rank(&exact), rank(&approx));
    }

    #[test]
    fn sigmoid_plan_tracks_sigmoid() {
        // PLAN's published max error is ~0.0189.
        for i in -80..=80 {
            let x = i as f32 * 0.1;
            let err = (sigmoid_plan(x) - scalar::sigmoid(x)).abs();
            assert!(err < 0.02, "x={x}: err={err}");
        }
    }

    #[test]
    fn sigmoid_plan_is_monotone_and_bounded() {
        let mut last = -1.0f32;
        for i in -100..=100 {
            let y = sigmoid_plan(i as f32 * 0.07);
            assert!(y >= last - 1e-6, "non-monotone at {i}");
            assert!((0.0..=1.0).contains(&y));
            last = y;
        }
    }

    #[test]
    fn gelu_approx_derivative_matches_numeric() {
        for delta in [0.5f32, 1.0] {
            for i in -35..=35 {
                // Offset to dodge x = 0, where L_erf's sign(x) factor makes
                // the approximation non-differentiable (cf. the hardswish
                // test in heatvit-tensor, which avoids its kinks the same
                // way).
                let x = i as f32 * 0.11 + 0.005;
                let h = 1e-3;
                let numeric = (gelu_approx(x + h, delta) - gelu_approx(x - h, delta)) / (2.0 * h);
                let analytic = gelu_approx_derivative(x, delta);
                assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "x={x} δ={delta}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn regularized_gelu_derivative_is_below_one() {
        // The Fig. 10 / Eq. 15 claim: with δ₁ = 0.5 the approximated GELU's
        // derivative magnitude stays below 1, so quantization error shrinks.
        for i in -400..=400 {
            let x = i as f32 * 0.01;
            let d = gelu_approx_derivative(x, DEFAULT_DELTA1).abs();
            assert!(d < 1.0, "x={x}: |dA/dx| = {d}");
        }
    }
}
