//! Minimal hand-rolled JSON emission plus the [`Emitter`] the bench
//! binaries share.
//!
//! The workspace deliberately carries no serialization dependency, and the
//! bench reports are flat: a handful of metadata fields plus arrays of
//! per-backend objects. This module provides just enough — an ordered
//! [`JsonObject`] builder, an [`array()`] joiner, and the [`Emitter`] that
//! standardizes the `--json <path>` protocol (leading `"bench"` key, file
//! write, `wrote <path>` confirmation) — to emit `BENCH_run_all.json` /
//! `BENCH_serve.json` without pulling in serde. Numbers are written with
//! at most four decimals (trailing zeros trimmed) so committed reports
//! stay readable in diffs; non-finite floats become `null` rather than
//! invalid JSON.
//!
//! This module started life in `heatvit-bench`; it lives here so the
//! telemetry exposition ([`crate::expo`]) and the bench binaries share one
//! JSON dialect (`heatvit-bench` re-exports it as `bench::json`).

use crate::registry::Snapshot;

/// The `--json <path>` report destination from the process arguments, if
/// requested. Shared by `run_all` and `serve_demo` so both binaries parse
/// the flag identically; panics if `--json` is present without a path.
pub fn path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--json requires a path argument"));
            return Some(std::path::PathBuf::from(path));
        }
    }
    None
}

/// An ordered JSON object under construction. Keys are emitted in
/// insertion order; the builder does not deduplicate keys (callers pass
/// literals, so duplicates would be a bug at the call site).
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a floating-point field (at most four decimals, `null` if
    /// non-finite).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push(format!("{}: {}", escape(key), fmt_f64(value)));
        self
    }

    /// Adds an integer field (emitted exactly, no decimal point).
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push(format!("{}: {value}", escape(key)));
        self
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("{}: {}", escape(key), escape(value)));
        self
    }

    /// Adds a pre-rendered JSON value (a nested object or array) verbatim.
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.fields.push(format!("{}: {value}", escape(key)));
        self
    }

    /// Renders the object as a single-line JSON value.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

/// Joins pre-rendered JSON values into an array, one element per line so
/// committed reports diff by row.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().map(|i| format!("  {i}")).collect();
    if body.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n]", body.join(",\n"))
    }
}

/// A JSON string literal: quoted, with `"`, `\`, and control characters
/// escaped. Bench labels are ASCII, but escaping keeps the output valid
/// JSON for any input.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// At most four decimals, trailing zeros (and a bare trailing dot)
/// trimmed; non-finite values become `null`.
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v:.4}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() || trimmed == "-" || trimmed == "-0" {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

/// The one JSON report pipeline both bench binaries run through: a
/// [`JsonObject`] whose first field is always `"bench": <name>`, a
/// [`Emitter::metrics`] hook that embeds a telemetry [`Snapshot`], and a
/// [`Emitter::write_if_requested`] terminal that honors the shared
/// `--json <path>` protocol (write the report plus trailing newline, print
/// `wrote <path>`).
#[derive(Debug)]
pub struct Emitter {
    object: JsonObject,
}

impl Emitter {
    /// Starts a report for the bench named `bench` (the leading key every
    /// committed `BENCH_*.json` carries).
    pub fn new(bench: &str) -> Self {
        Self {
            object: JsonObject::new().str("bench", bench),
        }
    }

    /// Adds a floating-point field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.object = self.object.num(key, value);
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.object = self.object.int(key, value);
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.object = self.object.str(key, value);
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn raw(mut self, key: &str, value: String) -> Self {
        self.object = self.object.raw(key, value);
        self
    }

    /// Embeds a telemetry snapshot under `key` (the scalar rendering from
    /// [`crate::expo::render_json`]).
    pub fn metrics(mut self, key: &str, snapshot: &Snapshot) -> Self {
        self.object = self.object.raw(key, crate::expo::render_json(snapshot));
        self
    }

    /// Renders the report as a single JSON line (no trailing newline).
    pub fn build(self) -> String {
        self.object.build()
    }

    /// Writes the report to the `--json <path>` destination if the process
    /// was given one (trailing newline included, `wrote <path>` printed);
    /// returns whether a file was written.
    ///
    /// # Panics
    ///
    /// Panics if the destination cannot be written.
    pub fn write_if_requested(self) -> bool {
        let Some(path) = path_from_args() else {
            return false;
        };
        let report = self.build();
        std::fs::write(&path, report + "\n")
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        println!("\nwrote {}", path.display());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn object_renders_fields_in_insertion_order() {
        let obj = JsonObject::new()
            .str("variant", "dense")
            .num("images_per_s", 1790.125)
            .int("batch", 32)
            .build();
        assert_eq!(
            obj,
            r#"{"variant": "dense", "images_per_s": 1790.125, "batch": 32}"#
        );
    }

    #[test]
    fn floats_trim_trailing_zeros_and_handle_edge_values() {
        assert_eq!(fmt_f64(3.5), "3.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-0.00001), "0");
        assert_eq!(fmt_f64(0.12344), "0.1234"); // at most four decimals
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\n"), r#""a\"b\\c\n""#);
        assert_eq!(escape("plain"), r#""plain""#);
    }

    #[test]
    fn array_emits_one_element_per_line() {
        let arr = array(vec!["1".to_string(), "2".to_string()]);
        assert_eq!(arr, "[\n  1,\n  2\n]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn nested_raw_values_compose() {
        let inner = JsonObject::new().str("k", "v").build();
        let outer = JsonObject::new().raw("rows", array(vec![inner])).build();
        assert_eq!(outer, "{\"rows\": [\n  {\"k\": \"v\"}\n]}");
    }

    #[test]
    fn emitter_leads_with_the_bench_key_and_embeds_snapshots() {
        let registry = Registry::new();
        registry
            .counter("hits", &[("lane", "0")], "per-lane hits")
            .add(3);
        let report = Emitter::new("demo")
            .int("requests", 7)
            .metrics("telemetry", &registry.snapshot())
            .build();
        assert!(report.starts_with(r#"{"bench": "demo", "requests": 7"#));
        assert!(report.contains(r#""name": "hits""#));
        assert!(report.contains(r#""lane": "0""#));
    }
}
