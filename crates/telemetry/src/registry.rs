//! The [`Registry`]: named, labeled metric handles plus point-in-time
//! [`Snapshot`]s.
//!
//! Registration takes a short mutex (idempotent lookup by name + label
//! sequence); *recording* never does — callers hold `Arc` handles to the
//! metric primitives and update them lock-free, so instrumenting a hot
//! path costs one atomic op, not a registry lookup. A [`Snapshot`] copies
//! every metric's current value in registration order, which is what the
//! exposition formats and the snapshot-derived reports consume.

use crate::metrics::{
    Counter, FloatCounter, FloatGauge, Gauge, Histogram, HistogramSnapshot, Series, SeriesSnapshot,
};
use std::sync::{Arc, Mutex};

/// One registered metric's handle.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    FloatCounter(Arc<FloatCounter>),
    Gauge(Arc<Gauge>),
    FloatGauge(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
    Series(Arc<Series>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::FloatCounter(_) => "float counter",
            Handle::Gauge(_) => "gauge",
            Handle::FloatGauge(_) => "float gauge",
            Handle::Histogram(_) => "histogram",
            Handle::Series(_) => "series",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    handle: Handle,
}

/// A metric registry: the one place a subsystem's counters, gauges,
/// histograms, and series are declared, and the source of [`Snapshot`]s.
///
/// Registration is idempotent on `(name, labels)` — registering the same
/// metric twice returns the existing handle (and panics if the second
/// registration asks for a different metric type, which is always a
/// programming error). The label *sequence* is the identity: callers must
/// pass labels in a consistent order.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// A fresh, empty registry behind an `Arc` (the shape every
    /// instrumented subsystem takes it in).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        build: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && labels_match(&e.labels, labels))
        {
            return entry.handle.clone();
        }
        let handle = build();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or looks up) a [`Counter`].
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, || Handle::Counter(Arc::default())) {
            Handle::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or looks up) a [`FloatCounter`].
    pub fn float_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<FloatCounter> {
        match self.register(name, labels, help, || Handle::FloatCounter(Arc::default())) {
            Handle::FloatCounter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or looks up) a [`Gauge`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, || Handle::Gauge(Arc::default())) {
            Handle::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or looks up) a [`FloatGauge`].
    pub fn float_gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<FloatGauge> {
        match self.register(name, labels, help, || Handle::FloatGauge(Arc::default())) {
            Handle::FloatGauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or looks up) a [`Histogram`] over `boundaries_us`.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        boundaries_us: &[u64],
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, || {
            Handle::Histogram(Arc::new(Histogram::new(boundaries_us)))
        }) {
            Handle::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or looks up) a [`Series`].
    pub fn series(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Series> {
        match self.register(name, labels, help, || Handle::Series(Arc::default())) {
            Handle::Series(s) => s,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Copies every registered metric's current value, in registration
    /// order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        Snapshot {
            metrics: entries
                .iter()
                .map(|entry| MetricSnapshot {
                    name: entry.name.clone(),
                    labels: entry.labels.clone(),
                    help: entry.help.clone(),
                    value: match &entry.handle {
                        Handle::Counter(c) => MetricValue::Counter(c.get()),
                        Handle::FloatCounter(c) => MetricValue::FloatCounter(c.get()),
                        Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                        Handle::FloatGauge(g) => MetricValue::FloatGauge(g.get()),
                        Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        Handle::Series(s) => MetricValue::Series(s.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A [`Counter`]'s current count.
    Counter(u64),
    /// A [`FloatCounter`]'s current sum.
    FloatCounter(f64),
    /// A [`Gauge`]'s current level.
    Gauge(u64),
    /// A [`FloatGauge`]'s current level.
    FloatGauge(f64),
    /// A [`Histogram`]'s buckets and summary stats.
    Histogram(HistogramSnapshot),
    /// A [`Series`]'s retained reservoir.
    Series(SeriesSnapshot),
}

/// One metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's registered name.
    pub name: String,
    /// Its label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Its help text.
    pub help: String,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

impl MetricSnapshot {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A point-in-time copy of a whole [`Registry`], in registration order —
/// what the exposition formats render and snapshot-derived reports read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every registered metric's value.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// The metric named `name` carrying exactly `labels` (order-sensitive,
    /// like registration).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels)
                    .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
        })
    }

    /// A counter's value (0 when absent — an unregistered counter never
    /// counted anything).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A float counter's sum (0.0 when absent).
    pub fn float_counter(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels).map(|m| &m.value) {
            Some(MetricValue::FloatCounter(v)) => *v,
            _ => 0.0,
        }
    }

    /// A gauge's level (0 when absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels).map(|m| &m.value) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// A float gauge's level (0.0 when absent).
    pub fn float_gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels).map(|m| &m.value) {
            Some(MetricValue::FloatGauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// A series' reservoir, if registered.
    pub fn series(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        match self.get(name, labels).map(|m| &m.value) {
            Some(MetricValue::Series(s)) => Some(s),
            _ => None,
        }
    }

    /// A histogram's snapshot, if registered.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.get(name, labels).map(|m| &m.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Every metric named `name` whose label `key` parses as an index,
    /// sorted by that index — how per-lane / per-level / per-size counter
    /// families are read back as dense vectors.
    pub fn family_by(&self, name: &str, key: &str) -> Vec<(usize, &MetricSnapshot)> {
        let mut rows: Vec<(usize, &MetricSnapshot)> = self
            .metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| m.label(key).and_then(|v| v.parse().ok()).map(|i| (i, m)))
            .collect();
        rows.sort_by_key(|(i, _)| *i);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let registry = Registry::new();
        let a = registry.counter("hits", &[("lane", "0")], "hits per lane");
        let b = registry.counter("hits", &[("lane", "0")], "hits per lane");
        let other = registry.counter("hits", &[("lane", "1")], "hits per lane");
        a.inc();
        b.inc();
        other.add(5);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hits", &[("lane", "0")]), 2);
        assert_eq!(snap.counter("hits", &[("lane", "1")]), 5);
        assert_eq!(snap.metrics.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn re_registering_under_a_different_type_panics() {
        let registry = Registry::new();
        let _ = registry.counter("x", &[], "");
        let _ = registry.gauge("x", &[], "");
    }

    #[test]
    fn snapshot_reads_every_metric_kind() {
        let registry = Registry::new();
        registry.counter("c", &[], "a counter").add(3);
        registry.float_counter("f", &[], "a float sum").add(0.25);
        registry.gauge("g", &[], "a gauge").set(9);
        registry.float_gauge("fg", &[], "a float gauge").set(1.5);
        registry
            .histogram("h", &[], "a histogram", &[10, 100])
            .observe(7);
        registry.series("s", &[], "a series").record(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c", &[]), 3);
        assert_eq!(snap.float_counter("f", &[]), 0.25);
        assert_eq!(snap.gauge("g", &[]), 9);
        assert_eq!(snap.float_gauge("fg", &[]), 1.5);
        assert_eq!(snap.histogram("h", &[]).unwrap().count, 1);
        assert_eq!(snap.series("s", &[]).unwrap().samples_us, vec![42]);
        // Absent metrics read as zero, not a panic.
        assert_eq!(snap.counter("missing", &[]), 0);
        assert!(snap.series("missing", &[]).is_none());
    }

    #[test]
    fn family_by_sorts_on_the_parsed_label() {
        let registry = Registry::new();
        registry.counter("served", &[("lane", "2")], "").add(20);
        registry.counter("served", &[("lane", "0")], "").add(5);
        registry.counter("served", &[("lane", "1")], "").add(10);
        let snap = registry.snapshot();
        let family = snap.family_by("served", "lane");
        let values: Vec<(usize, u64)> = family
            .iter()
            .map(|(i, m)| match m.value {
                MetricValue::Counter(v) => (*i, v),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(values, vec![(0, 5), (1, 10), (2, 20)]);
    }

    #[test]
    fn handles_record_lock_free_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("total", &[], "");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(registry.snapshot().counter("total", &[]), 4000);
    }
}
