//! # heatvit-telemetry
//!
//! Observability substrate for the
//! [HeatViT](https://arxiv.org/abs/2211.08110) reproduction: a lock-free
//! metrics [`Registry`], bounded per-request span tracing
//! ([`SpanRecorder`]), and two exposition formats over point-in-time
//! [`Snapshot`]s — Prometheus-style text ([`render_prometheus`]) and the
//! workspace's no-serde JSON dialect ([`render_json`], [`json`]).
//!
//! Design rules, in priority order:
//!
//! 1. **Hot paths never lock.** Recording into a [`Counter`], [`Gauge`],
//!    [`FloatCounter`], [`FloatGauge`], or [`Histogram`] is one atomic
//!    operation through an `Arc` handle; the registry mutex is taken only
//!    at registration and snapshot time. The two deliberate exceptions are
//!    [`Series`] (an exact percentile reservoir) and [`SpanRecorder`] (an
//!    ordered ring), both short push-under-mutex critical sections kept
//!    off per-image compute paths.
//! 2. **Snapshots are the single source of truth.** End-of-run reports
//!    (`heatvit-serve`'s `ServeReport`) are materialized *from* a
//!    [`Snapshot`], so live metrics and the final report can never
//!    disagree — and a [`Series`] retains exact (deterministically
//!    decimated) samples so snapshot percentiles are bitwise identical to
//!    offline computation over the same observation stream.
//! 3. **Purely observational.** Nothing here feeds back into scheduling,
//!    admission, or training arithmetic; instrumented code produces
//!    bitwise-identical results with telemetry attached or not.
//!
//! ```
//! use heatvit_telemetry::{render_prometheus, Registry};
//!
//! let registry = Registry::new();
//! let served = registry.counter(
//!     "heatvit_serve_lane_served",
//!     &[("lane", "0")],
//!     "requests served per executing lane",
//! );
//! served.add(3);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("heatvit_serve_lane_served", &[("lane", "0")]), 3);
//! assert!(render_prometheus(&snapshot).contains("heatvit_serve_lane_served{lane=\"0\"} 3"));
//! ```

#![warn(missing_docs)]

pub mod expo;
pub mod json;
mod metrics;
mod registry;
mod trace;

pub use expo::{render_json, render_prometheus};
pub use metrics::{
    nearest_rank_us, Counter, FloatCounter, FloatGauge, Gauge, Histogram, HistogramSnapshot,
    Series, SeriesSnapshot, MAX_SERIES_SAMPLES,
};
pub use registry::{MetricSnapshot, MetricValue, Registry, Snapshot};
pub use trace::{BatchSpan, RequestSpan, ShedSpan, SpanRecorder, TraceEvent};
