//! Metric primitives: atomic [`Counter`]/[`FloatCounter`]/[`Gauge`]/
//! [`FloatGauge`], the fixed-boundary [`Histogram`], and the exact
//! bounded-reservoir [`Series`].
//!
//! Everything except [`Series`] records through plain atomics — no lock is
//! ever taken on a hot path. `Series` is the one deliberately-locked
//! metric: it retains an exact (then deterministically decimated) sample
//! reservoir so nearest-rank percentiles match offline computation
//! bit-for-bit, and its short critical section (one push, amortized
//! decimation) is the price of that exactness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing `u64` counter (lock-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` accumulator (lock-free: the value lives
/// as bits in an `AtomicU64`, added through a compare-and-swap loop).
///
/// Because floating-point addition is order-sensitive, concurrent adders
/// produce an order-dependent (though always consistent) sum; a
/// single-writer `FloatCounter` accumulates exactly the same bits as a
/// plain `f64 +=` sequence — which is what makes snapshot-derived means
/// bitwise comparable to a replayed reference implementation.
#[derive(Debug, Default)]
pub struct FloatCounter {
    bits: AtomicU64,
}

impl FloatCounter {
    /// Adds `v` to the running sum.
    pub fn add(&self, v: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
    }

    /// Current sum.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A settable `u64` level (queue depth, high-water mark, ledger balance) —
/// lock-free, with the read-modify-write helpers the serving ledgers need.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Stores `v` (release ordering, so a subsequent acquire [`Gauge::get`]
    /// on another thread observes it — the queue-depth mirror relies on
    /// this).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Release);
    }

    /// Current value (acquire ordering, pairing with [`Gauge::set`]).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Adds `n` (a ledger charge).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a ledger refund that must never
    /// wrap when charges and refunds race).
    pub fn sub_saturating(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Raises the gauge to `v` if above the current value (a high-water
    /// mark).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Stores `v` only if the gauge still holds zero (a write-once marker,
    /// e.g. a window-open timestamp). Returns whether this call set it.
    pub fn set_if_unset(&self, v: u64) -> bool {
        self.value
            .compare_exchange(0, v, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
}

/// A settable `f64` level (per-epoch loss, throughput) — lock-free via
/// bit-stored atomics like [`FloatCounter`].
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-boundary histogram over microsecond observations (lock-free:
/// one atomic bucket increment plus count/sum/max updates per observation).
///
/// Bucket `i` counts observations `<= boundaries[i]` (Prometheus `le`
/// semantics, non-cumulative internally); one implicit overflow bucket
/// catches the rest. The exact maximum is tracked separately so the worst
/// case never hides inside the overflow bucket. Percentiles are
/// nearest-rank over bucket upper bounds — bounded-resolution by design;
/// pair the histogram with a [`Series`] where exact percentiles matter.
#[derive(Debug)]
pub struct Histogram {
    boundaries_us: Vec<u64>,
    /// `boundaries_us.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// A histogram over ascending `boundaries_us` (strictly increasing,
    /// non-empty).
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are empty or not strictly ascending.
    pub fn new(boundaries_us: &[u64]) -> Self {
        assert!(!boundaries_us.is_empty(), "histogram needs >= 1 boundary");
        assert!(
            boundaries_us.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly ascending"
        );
        Self {
            boundaries_us: boundaries_us.to_vec(),
            buckets: (0..=boundaries_us.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn observe(&self, us: u64) {
        let index = self
            .boundaries_us
            .partition_point(|&b| b < us)
            .min(self.boundaries_us.len());
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            boundaries_us: self.boundaries_us.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The histogram's ascending bucket boundaries (µs, `le` semantics).
    pub boundaries_us: Vec<u64>,
    /// Non-cumulative per-bucket counts, one extra overflow bucket at the
    /// end.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Exact maximum observation, µs.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile, resolved to the upper boundary of the bucket
    /// holding that rank (the exact `max_us` for the overflow bucket; 0
    /// when empty). `q` in `(0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if index < self.boundaries_us.len() {
                    self.boundaries_us[index]
                } else {
                    self.max_us
                };
            }
        }
        self.max_us
    }

    /// Mean observation, µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// Hard cap on retained [`Series`] samples: when the reservoir fills, it is
/// decimated (every other sample kept) and the sampling stride doubles, so
/// memory stays bounded on a long-running server while percentiles remain
/// representative. Exact for the first 64k observations, a deterministic
/// 1-in-2ᵏ even spread thereafter; the maximum stays exact regardless.
pub const MAX_SERIES_SAMPLES: usize = 1 << 16;

/// The exact (bounded) sample reservoir behind a [`Series`].
#[derive(Debug)]
struct SeriesInner {
    samples_us: Vec<u64>,
    /// Record every `stride`-th observation (1 until the first decimation,
    /// then doubling).
    stride: u64,
    /// Observations seen, driving the stride phase.
    seen: u64,
    /// Exact worst observation.
    max_us: u64,
}

impl Default for SeriesInner {
    fn default() -> Self {
        Self {
            samples_us: Vec::new(),
            stride: 1,
            seen: 0,
            max_us: 0,
        }
    }
}

/// A bounded exact-sample series: every observation is retained (up to
/// [`MAX_SERIES_SAMPLES`], then a deterministic even-spread decimation), so
/// nearest-rank percentiles over a snapshot are *bitwise identical* to the
/// same computation over the raw observation stream. The one mutex-guarded
/// metric — see the module docs for why.
#[derive(Debug, Default)]
pub struct Series {
    inner: Mutex<SeriesInner>,
}

impl Series {
    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        let mut inner = self.inner.lock().expect("series poisoned");
        inner.max_us = inner.max_us.max(us);
        if inner.seen.is_multiple_of(inner.stride) {
            inner.samples_us.push(us);
            if inner.samples_us.len() >= MAX_SERIES_SAMPLES {
                // Decimate: keep every other retained sample and halve the
                // future sampling rate. Deterministic, bounded, and the
                // kept samples stay an even spread over the whole history.
                let mut index = 0usize;
                inner.samples_us.retain(|_| {
                    let keep = index.is_multiple_of(2);
                    index += 1;
                    keep
                });
                inner.stride *= 2;
            }
        }
        inner.seen += 1;
    }

    /// A point-in-time copy of the reservoir.
    pub fn snapshot(&self) -> SeriesSnapshot {
        let inner = self.inner.lock().expect("series poisoned");
        SeriesSnapshot {
            samples_us: inner.samples_us.clone(),
            seen: inner.seen,
            max_us: inner.max_us,
        }
    }
}

/// A point-in-time copy of a [`Series`] reservoir.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Retained samples in observation order (exact up to
    /// [`MAX_SERIES_SAMPLES`], then an even-spread decimation).
    pub samples_us: Vec<u64>,
    /// Total observations (exact through decimation).
    pub seen: u64,
    /// Exact worst observation, µs.
    pub max_us: u64,
}

impl SeriesSnapshot {
    /// `(p50_ms, p95_ms, max_ms)` over everything recorded — nearest-rank
    /// percentiles over the retained samples, the exact maximum.
    pub fn percentiles_ms(&self) -> (f64, f64, f64) {
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        (
            nearest_rank_us(&sorted, 0.50) as f64 / 1e3,
            nearest_rank_us(&sorted, 0.95) as f64 / 1e3,
            self.max_us as f64 / 1e3,
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice of microsecond
/// observations (0 for an empty slice).
pub fn nearest_rank_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter::default();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);

        let gauge = Gauge::default();
        gauge.set(7);
        gauge.add(3);
        gauge.sub_saturating(100);
        assert_eq!(gauge.get(), 0);
        gauge.set_max(9);
        gauge.set_max(4);
        assert_eq!(gauge.get(), 9);
    }

    #[test]
    fn gauge_set_if_unset_is_write_once() {
        let gauge = Gauge::default();
        assert!(gauge.set_if_unset(5));
        assert!(!gauge.set_if_unset(9));
        assert_eq!(gauge.get(), 5);
    }

    #[test]
    fn float_counter_matches_sequential_sum_bitwise() {
        let counter = FloatCounter::default();
        let mut reference = 0.0f64;
        for i in 0..100 {
            let v = (i as f64) * 0.3 + 0.1;
            counter.add(v);
            reference += v;
        }
        assert_eq!(counter.get().to_bits(), reference.to_bits());
    }

    #[test]
    fn float_gauge_stores_last_value() {
        let gauge = FloatGauge::default();
        gauge.set(1.5);
        gauge.set(-2.25);
        assert_eq!(gauge.get(), -2.25);
    }

    #[test]
    fn concurrent_counter_increments_from_n_threads() {
        // The loom-style interleaving check from the issue: N scoped
        // threads hammer one counter, one float counter, and one gauge
        // ledger; no increment may be lost.
        let counter = Counter::default();
        let float = FloatCounter::default();
        let ledger = Gauge::default();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        counter.inc();
                        float.add(0.5);
                        ledger.add(2);
                        ledger.sub_saturating(1);
                    }
                });
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(counter.get(), total);
        assert_eq!(float.get(), total as f64 * 0.5);
        assert_eq!(ledger.get(), total);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le_inclusive() {
        // The bucket-boundary coverage from the issue: observations on,
        // below, and above each boundary land in the right bucket.
        let hist = Histogram::new(&[10, 100, 1000]);
        hist.observe(0); // <= 10
        hist.observe(10); // == 10, still the first bucket (le semantics)
        hist.observe(11); // first value past the boundary
        hist.observe(100);
        hist.observe(500);
        hist.observe(1000);
        hist.observe(1001); // overflow bucket
        let snap = hist.snapshot();
        assert_eq!(snap.buckets, vec![2, 2, 2, 1]);
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum_us, 2622);
        assert_eq!(snap.max_us, 1001);
    }

    #[test]
    fn histogram_quantiles_resolve_to_bucket_upper_bounds() {
        let hist = Histogram::new(&[10, 100, 1000]);
        for us in [1, 2, 3, 50, 60, 900, 5000] {
            hist.observe(us);
        }
        let snap = hist.snapshot();
        // rank(0.5 * 7) = 4 → second bucket → le boundary 100.
        assert_eq!(snap.quantile_us(0.50), 100);
        // rank(0.95 * 7) = 7 → overflow bucket → the exact max.
        assert_eq!(snap.quantile_us(0.95), 5000);
        assert_eq!(snap.quantile_us(1.0), 5000);
        assert_eq!(Histogram::new(&[10]).snapshot().quantile_us(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_boundaries() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn concurrent_histogram_observations_lose_nothing() {
        let hist = Histogram::new(&[100, 10_000]);
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 5_000;
        let hist = &hist;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        hist.observe((t as u64 * PER_THREAD + i) % 20_000);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn series_stays_bounded_and_keeps_exact_max() {
        let series = Series::default();
        let total = MAX_SERIES_SAMPLES * 4;
        for i in 0..total {
            series.record(i as u64 + 1);
        }
        let snap = series.snapshot();
        assert!(snap.samples_us.len() < MAX_SERIES_SAMPLES);
        assert_eq!(snap.seen, total as u64);
        assert_eq!(snap.max_us, total as u64);
        let (p50, _, max) = snap.percentiles_ms();
        assert_eq!(max, total as f64 / 1e3);
        let mid = total as f64 / 1e3 / 2.0;
        assert!((p50 - mid).abs() < mid * 0.05, "{p50}");
    }

    #[test]
    fn nearest_rank_matches_reference_points() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank_us(&v, 0.50), 50);
        assert_eq!(nearest_rank_us(&v, 0.95), 95);
        assert_eq!(nearest_rank_us(&v, 1.0), 100);
        assert_eq!(nearest_rank_us(&[7], 0.95), 7);
        assert_eq!(nearest_rank_us(&[], 0.95), 0);
        assert_eq!(nearest_rank_us(&[1, 2], 0.50), 1);
    }
}
