//! Exposition: rendering a [`Snapshot`] as Prometheus-style text
//! ([`render_prometheus`]) or as a JSON value ([`render_json`]) in the
//! workspace's no-serde dialect ([`crate::json`]).

use crate::json::{array, escape, fmt_f64, JsonObject};
use crate::registry::{MetricSnapshot, MetricValue, Snapshot};
use std::fmt::Write as _;

fn type_of(value: &MetricValue) -> &'static str {
    match value {
        MetricValue::Counter(_) | MetricValue::FloatCounter(_) => "counter",
        MetricValue::Gauge(_) | MetricValue::FloatGauge(_) => "gauge",
        MetricValue::Histogram(_) => "histogram",
        MetricValue::Series(_) => "summary",
    }
}

/// `{k="v",k2="v2"}` (empty string when unlabeled); `extra` appends one
/// more pair (the `le`/`quantile` slot).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot as Prometheus-style text exposition: one
/// `# HELP`/`# TYPE` header per metric name (first-seen help text wins for
/// a labeled family), then one sample line per metric. Histograms emit
/// cumulative `_bucket{le=...}` lines plus `_sum`/`_count`; series emit
/// summary `{quantile=...}` lines (0.5, 0.95, and 1 — the exact maximum)
/// plus `_count` (total observations, exact through decimation).
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for metric in &snapshot.metrics {
        if !seen.contains(&metric.name.as_str()) {
            seen.push(&metric.name);
            let _ = writeln!(out, "# HELP {} {}", metric.name, metric.help);
            let _ = writeln!(out, "# TYPE {} {}", metric.name, type_of(&metric.value));
        }
        let name = &metric.name;
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name}{} {v}", label_block(&metric.labels, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{} {v}", label_block(&metric.labels, None));
            }
            MetricValue::FloatCounter(v) | MetricValue::FloatGauge(v) => {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    label_block(&metric.labels, None),
                    prom_f64(*v)
                );
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (index, count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = if index < h.boundaries_us.len() {
                        h.boundaries_us[index].to_string()
                    } else {
                        "+Inf".to_string()
                    };
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        label_block(&metric.labels, Some(("le", &le)))
                    );
                }
                let labels = label_block(&metric.labels, None);
                let _ = writeln!(out, "{name}_sum{labels} {}", h.sum_us);
                let _ = writeln!(out, "{name}_count{labels} {}", h.count);
            }
            MetricValue::Series(s) => {
                let mut sorted = s.samples_us.clone();
                sorted.sort_unstable();
                for (q, label) in [(0.50, "0.5"), (0.95, "0.95")] {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        label_block(&metric.labels, Some(("quantile", label))),
                        crate::metrics::nearest_rank_us(&sorted, q)
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    label_block(&metric.labels, Some(("quantile", "1"))),
                    s.max_us
                );
                let _ = writeln!(
                    out,
                    "{name}_count{} {}",
                    label_block(&metric.labels, None),
                    s.seen
                );
            }
        }
    }
    out
}

fn json_labels(metric: &MetricSnapshot) -> String {
    let fields: Vec<String> = metric
        .labels
        .iter()
        .map(|(k, v)| format!("{}: {}", escape(k), escape(v)))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Renders a snapshot as a JSON array of metric objects (`name`, `labels`,
/// `type`, and a type-appropriate `value`): histograms carry bucket
/// boundaries/counts plus `count`/`sum_us`/`max_us`; series are summarized
/// to `p50_us`/`p95_us`/`max_us`/`count` (the reservoir itself stays
/// internal).
pub fn render_json(snapshot: &Snapshot) -> String {
    array(snapshot.metrics.iter().map(|metric| {
        let base = JsonObject::new()
            .str("name", &metric.name)
            .raw("labels", json_labels(metric))
            .str("type", type_of(&metric.value));
        match &metric.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => base.int("value", *v),
            MetricValue::FloatCounter(v) | MetricValue::FloatGauge(v) => {
                base.raw("value", fmt_f64(*v))
            }
            MetricValue::Histogram(h) => base.raw(
                "value",
                JsonObject::new()
                    .raw(
                        "boundaries_us",
                        format!(
                            "[{}]",
                            h.boundaries_us
                                .iter()
                                .map(u64::to_string)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                    .raw(
                        "buckets",
                        format!(
                            "[{}]",
                            h.buckets
                                .iter()
                                .map(u64::to_string)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                    .int("count", h.count)
                    .int("sum_us", h.sum_us)
                    .int("max_us", h.max_us)
                    .build(),
            ),
            MetricValue::Series(s) => {
                let mut sorted = s.samples_us.clone();
                sorted.sort_unstable();
                base.raw(
                    "value",
                    JsonObject::new()
                        .int("p50_us", crate::metrics::nearest_rank_us(&sorted, 0.50))
                        .int("p95_us", crate::metrics::nearest_rank_us(&sorted, 0.95))
                        .int("max_us", s.max_us)
                        .int("count", s.seen)
                        .build(),
                )
            }
        }
        .build()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn demo_snapshot() -> Snapshot {
        let registry = Registry::new();
        registry
            .counter(
                "heatvit_serve_lane_served",
                &[("lane", "0")],
                "requests per lane",
            )
            .add(12);
        registry
            .counter(
                "heatvit_serve_lane_served",
                &[("lane", "1")],
                "requests per lane",
            )
            .add(3);
        registry
            .gauge(
                "heatvit_serve_lane_queue_depth",
                &[("lane", "0")],
                "live depth",
            )
            .set(4);
        let hist = registry.histogram("heatvit_serve_latency", &[], "latency µs", &[100, 1000]);
        for us in [50, 150, 5000] {
            hist.observe(us);
        }
        let series = registry.series("heatvit_serve_latency_exact", &[], "exact latency µs");
        for us in [10, 20, 30, 40] {
            series.record(us);
        }
        registry
            .float_counter("heatvit_serve_keep_sum", &[], "keep sum")
            .add(1.5);
        registry.snapshot()
    }

    #[test]
    fn prometheus_text_has_headers_and_family_lines() {
        let text = render_prometheus(&demo_snapshot());
        assert!(text.contains("# HELP heatvit_serve_lane_served requests per lane"));
        assert!(text.contains("# TYPE heatvit_serve_lane_served counter"));
        assert!(text.contains("heatvit_serve_lane_served{lane=\"0\"} 12"));
        assert!(text.contains("heatvit_serve_lane_served{lane=\"1\"} 3"));
        // The HELP/TYPE header appears once for the whole family.
        assert_eq!(text.matches("# TYPE heatvit_serve_lane_served").count(), 1);
        assert!(text.contains("heatvit_serve_lane_queue_depth{lane=\"0\"} 4"));
        assert!(text.contains("heatvit_serve_keep_sum 1.5"));
    }

    #[test]
    fn prometheus_histograms_are_cumulative_with_inf_bucket() {
        let text = render_prometheus(&demo_snapshot());
        assert!(text.contains("heatvit_serve_latency_bucket{le=\"100\"} 1"));
        assert!(text.contains("heatvit_serve_latency_bucket{le=\"1000\"} 2"));
        assert!(text.contains("heatvit_serve_latency_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("heatvit_serve_latency_sum 5200"));
        assert!(text.contains("heatvit_serve_latency_count 3"));
    }

    #[test]
    fn prometheus_series_render_as_summaries() {
        let text = render_prometheus(&demo_snapshot());
        assert!(text.contains("heatvit_serve_latency_exact{quantile=\"0.5\"} 20"));
        assert!(text.contains("heatvit_serve_latency_exact{quantile=\"0.95\"} 40"));
        assert!(text.contains("heatvit_serve_latency_exact{quantile=\"1\"} 40"));
        assert!(text.contains("heatvit_serve_latency_exact_count 4"));
    }

    #[test]
    fn json_rendering_is_loadable_shape() {
        let json = render_json(&demo_snapshot());
        assert!(json.starts_with("[\n"));
        assert!(json.contains(r#""name": "heatvit_serve_lane_served""#));
        assert!(json.contains(r#""labels": {"lane": "0"}"#));
        assert!(json.contains(r#""type": "histogram""#));
        assert!(json.contains(r#""boundaries_us": [100, 1000]"#));
        assert!(json.contains(r#""p95_us": 40"#));
        // Balanced brackets: every open brace closes (cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
