//! Lightweight per-request span tracing: plain-numeric [`TraceEvent`]s
//! pushed into a bounded ring-buffer [`SpanRecorder`].
//!
//! Spans are deliberately *not* a metrics substitute — they are the raw
//! event stream: one [`BatchSpan`] per flushed batch, one [`RequestSpan`]
//! per resolved request, one [`ShedSpan`] per refused admission, in the
//! exact order the serving side recorded them. That ordering is load-
//! bearing: replaying the ring through a reference accumulator must
//! reproduce the live metrics bit-for-bit (the parity suite in
//! `heatvit-serve` does exactly that). When the ring fills, the oldest
//! events are dropped and counted — recording never blocks progress on
//! capacity.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One resolved request's span: what it was, where it ran, how long it
/// took. Durations are µs offsets/elapsed so events stay plain numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpan {
    /// SLO class index (`Priority::index()`: 0 = High, 1 = Normal).
    pub class: usize,
    /// Service level that executed it (0 = most accurate).
    pub level: usize,
    /// Lane that executed its batch.
    pub lane: usize,
    /// Submit → batch-start wait, µs.
    pub queued_us: u64,
    /// Submit → resolve latency, µs.
    pub total_us: u64,
    /// Whether it resolved after its deadline.
    pub missed: bool,
    /// The serving level's accuracy proxy (token keep fraction vs dense).
    pub keep: f64,
    /// Size of the batch it rode in.
    pub batch_size: usize,
}

/// One flushed batch's span.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpan {
    /// Lane that executed the batch.
    pub lane: usize,
    /// Service level the batch ran at.
    pub level: usize,
    /// Requests in the batch.
    pub size: usize,
    /// Flush policy label (`"max_batch"`, `"deadline"`, `"idle"`,
    /// `"shutdown"`, `"steal"`).
    pub reason: &'static str,
    /// The latency model's µs prediction for this batch (made before the
    /// measurement fed back).
    pub predicted_us: u64,
    /// Measured execution, µs.
    pub measured_us: u64,
    /// Whether this batch scored the prediction-error metric (false for
    /// each level's warm-up batch).
    pub scored: bool,
    /// Batch completion as a µs offset from server start.
    pub done_off_us: u64,
}

/// One refused admission's span.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedSpan {
    /// SLO class index of the refused request.
    pub class: usize,
    /// The cheapest level's predicted latency that still missed, µs.
    pub predicted_us: u64,
}

/// One traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A resolved request.
    Request(RequestSpan),
    /// A flushed batch.
    Batch(BatchSpan),
    /// A refused admission.
    Shed(ShedSpan),
}

#[derive(Debug)]
struct RecorderInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. Recording takes a short mutex
/// (one push, possibly one pop); when full, the oldest event is dropped
/// and counted rather than blocking the recorder.
#[derive(Debug)]
pub struct SpanRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
}

impl SpanRecorder {
    /// A recorder retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span recorder capacity must be positive");
        Self {
            inner: Mutex::new(RecorderInner {
                events: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Appends one event, evicting (and counting) the oldest when full.
    pub fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("span recorder poisoned");
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Copies the retained events, oldest first (the ring stays intact).
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("span recorder poisoned");
        inner.events.iter().cloned().collect()
    }

    /// Drains the retained events, oldest first.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut inner = self.inner.lock().expect("span recorder poisoned");
        inner.events.drain(..).collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("span recorder poisoned").dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("span recorder poisoned")
            .events
            .len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shed(class: usize) -> TraceEvent {
        TraceEvent::Shed(ShedSpan {
            class,
            predicted_us: 0,
        })
    }

    #[test]
    fn ring_preserves_order_and_bounds_memory() {
        let recorder = SpanRecorder::new(3);
        for class in 0..5 {
            recorder.record(shed(class));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.dropped(), 2);
        let classes: Vec<usize> = recorder
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Shed(s) => s.class,
                _ => unreachable!(),
            })
            .collect();
        // Oldest two evicted, order preserved.
        assert_eq!(classes, vec![2, 3, 4]);
    }

    #[test]
    fn take_drains_without_resetting_the_drop_count() {
        let recorder = SpanRecorder::new(2);
        recorder.record(shed(0));
        recorder.record(shed(1));
        recorder.record(shed(2));
        assert_eq!(recorder.take().len(), 2);
        assert!(recorder.is_empty());
        assert_eq!(recorder.dropped(), 1);
        assert_eq!(recorder.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = SpanRecorder::new(0);
    }
}
