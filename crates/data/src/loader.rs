//! Mini-batch iteration with optional shuffling, plus the range-chunking
//! helper that shards a batch across engine worker threads.

use crate::synthetic::{Sample, SyntheticDataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::ops::Range;

/// Splits `0..len` into at most `parts` contiguous, disjoint index ranges of
/// near-equal size, in order: the first `len % parts` ranges carry one extra
/// index. Every index is covered exactly once and no returned range is empty,
/// so when `len < parts` only `len` ranges come back (and an empty input
/// yields no ranges at all).
///
/// This is the shard map the parallel engine uses to fan a loader batch out
/// over worker threads: because the ranges are a pure function of `(len,
/// parts)`, a sharded batch writes each image's results into the same slot
/// the sequential path would.
///
/// # Panics
///
/// Panics if `parts == 0`.
///
/// # Examples
///
/// ```
/// use heatvit_data::chunk_ranges;
///
/// assert_eq!(chunk_ranges(7, 3), vec![0..3, 3..5, 5..7]);
/// assert_eq!(chunk_ranges(2, 4), vec![0..1, 1..2]);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "parts must be positive");
    let parts = parts.min(len);
    if parts == 0 {
        return Vec::new();
    }
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let hi = lo + base + usize::from(i < extra);
        ranges.push(lo..hi);
        lo = hi;
    }
    ranges
}

/// A mini-batch of borrowed samples.
#[derive(Debug)]
pub struct Batch<'a> {
    /// The samples in this batch.
    pub samples: Vec<&'a Sample>,
}

impl Batch<'_> {
    /// Labels of the batch, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Deterministic mini-batch loader over a [`SyntheticDataset`].
///
/// # Examples
///
/// ```
/// use heatvit_data::{Loader, SyntheticConfig, SyntheticDataset};
///
/// let ds = SyntheticDataset::generate(SyntheticConfig::tiny(), 10, 0);
/// let loader = Loader::new(&ds, 4, true, 1);
/// let batches: Vec<_> = loader.iter_epoch(0).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// assert_eq!(batches[2].len(), 2);
/// ```
#[derive(Debug)]
pub struct Loader<'a> {
    dataset: &'a SyntheticDataset,
    batch_size: usize,
    shuffle: bool,
    seed: u64,
}

impl<'a> Loader<'a> {
    /// Creates a loader.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(dataset: &'a SyntheticDataset, batch_size: usize, shuffle: bool, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            dataset,
            batch_size,
            shuffle,
            seed,
        }
    }

    /// Number of batches per epoch (last batch may be partial).
    pub fn batches_per_epoch(&self) -> usize {
        self.dataset.len().div_ceil(self.batch_size)
    }

    /// Iterates one epoch. The permutation depends on `(seed, epoch)` so
    /// every epoch reshuffles but the whole run stays reproducible.
    pub fn iter_epoch(&self, epoch: u64) -> impl Iterator<Item = Batch<'a>> + '_ {
        let mut order: Vec<usize> = (0..self.dataset.len()).collect();
        if self.shuffle {
            let mut rng =
                StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(epoch));
            order.shuffle(&mut rng);
        }
        let dataset = self.dataset;
        let batch_size = self.batch_size;
        (0..self.batches_per_epoch()).map(move |b| {
            let lo = b * batch_size;
            let hi = (lo + batch_size).min(order.len());
            Batch {
                samples: order[lo..hi].iter().map(|&i| dataset.sample(i)).collect(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(SyntheticConfig::tiny(), 13, 0)
    }

    #[test]
    fn covers_every_sample_exactly_once() {
        let ds = dataset();
        let loader = Loader::new(&ds, 5, true, 3);
        let mut seen = vec![0usize; ds.len()];
        for batch in loader.iter_epoch(0) {
            for s in &batch.samples {
                // Identify samples by pointer into the dataset.
                let idx = (0..ds.len())
                    .find(|&i| std::ptr::eq(ds.sample(i), *s))
                    .unwrap();
                seen[idx] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn shuffling_differs_across_epochs() {
        let ds = dataset();
        let loader = Loader::new(&ds, 13, true, 3);
        let labels0 = loader.iter_epoch(0).next().unwrap().labels();
        let labels1 = loader.iter_epoch(1).next().unwrap().labels();
        assert_ne!(labels0, labels1);
    }

    #[test]
    fn unshuffled_is_in_order() {
        let ds = dataset();
        let loader = Loader::new(&ds, 4, false, 0);
        let first = loader.iter_epoch(0).next().unwrap();
        assert_eq!(first.labels(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_epoch_same_seed_is_identical() {
        let ds = dataset();
        let loader = Loader::new(&ds, 6, true, 9);
        let a: Vec<Vec<usize>> = loader.iter_epoch(4).map(|b| b.labels()).collect();
        let b: Vec<Vec<usize>> = loader.iter_epoch(4).map(|b| b.labels()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn chunk_ranges_cover_every_index_once_and_balance() {
        for len in 0..40 {
            for parts in 1..9 {
                let ranges = chunk_ranges(len, parts);
                assert_eq!(ranges.len(), parts.min(len));
                // Contiguous, in-order, non-empty cover of 0..len.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(
                        r.end > r.start,
                        "empty range {r:?} for len={len} parts={parts}"
                    );
                    next = r.end;
                }
                assert_eq!(next, len);
                assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), len);
                // Balanced: sizes differ by at most one, larger chunks first.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(|r| r.len()).max(),
                    ranges.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1);
                    assert_eq!(ranges.first().map(|r| r.len()), Some(max));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn chunk_ranges_rejects_zero_parts() {
        chunk_ranges(4, 0);
    }
}
