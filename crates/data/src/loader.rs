//! Mini-batch iteration with optional shuffling.

use crate::synthetic::{Sample, SyntheticDataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A mini-batch of borrowed samples.
#[derive(Debug)]
pub struct Batch<'a> {
    /// The samples in this batch.
    pub samples: Vec<&'a Sample>,
}

impl Batch<'_> {
    /// Labels of the batch, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Deterministic mini-batch loader over a [`SyntheticDataset`].
///
/// # Examples
///
/// ```
/// use heatvit_data::{Loader, SyntheticConfig, SyntheticDataset};
///
/// let ds = SyntheticDataset::generate(SyntheticConfig::tiny(), 10, 0);
/// let loader = Loader::new(&ds, 4, true, 1);
/// let batches: Vec<_> = loader.iter_epoch(0).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2
/// assert_eq!(batches[2].len(), 2);
/// ```
#[derive(Debug)]
pub struct Loader<'a> {
    dataset: &'a SyntheticDataset,
    batch_size: usize,
    shuffle: bool,
    seed: u64,
}

impl<'a> Loader<'a> {
    /// Creates a loader.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(dataset: &'a SyntheticDataset, batch_size: usize, shuffle: bool, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            dataset,
            batch_size,
            shuffle,
            seed,
        }
    }

    /// Number of batches per epoch (last batch may be partial).
    pub fn batches_per_epoch(&self) -> usize {
        self.dataset.len().div_ceil(self.batch_size)
    }

    /// Iterates one epoch. The permutation depends on `(seed, epoch)` so
    /// every epoch reshuffles but the whole run stays reproducible.
    pub fn iter_epoch(&self, epoch: u64) -> impl Iterator<Item = Batch<'a>> + '_ {
        let mut order: Vec<usize> = (0..self.dataset.len()).collect();
        if self.shuffle {
            let mut rng =
                StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(epoch));
            order.shuffle(&mut rng);
        }
        let dataset = self.dataset;
        let batch_size = self.batch_size;
        (0..self.batches_per_epoch()).map(move |b| {
            let lo = b * batch_size;
            let hi = (lo + batch_size).min(order.len());
            Batch {
                samples: order[lo..hi].iter().map(|&i| dataset.sample(i)).collect(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticConfig;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(SyntheticConfig::tiny(), 13, 0)
    }

    #[test]
    fn covers_every_sample_exactly_once() {
        let ds = dataset();
        let loader = Loader::new(&ds, 5, true, 3);
        let mut seen = vec![0usize; ds.len()];
        for batch in loader.iter_epoch(0) {
            for s in &batch.samples {
                // Identify samples by pointer into the dataset.
                let idx = (0..ds.len())
                    .find(|&i| std::ptr::eq(ds.sample(i), *s))
                    .unwrap();
                seen[idx] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn shuffling_differs_across_epochs() {
        let ds = dataset();
        let loader = Loader::new(&ds, 13, true, 3);
        let labels0 = loader.iter_epoch(0).next().unwrap().labels();
        let labels1 = loader.iter_epoch(1).next().unwrap().labels();
        assert_ne!(labels0, labels1);
    }

    #[test]
    fn unshuffled_is_in_order() {
        let ds = dataset();
        let loader = Loader::new(&ds, 4, false, 0);
        let first = loader.iter_epoch(0).next().unwrap();
        assert_eq!(first.labels(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_epoch_same_seed_is_identical() {
        let ds = dataset();
        let loader = Loader::new(&ds, 6, true, 9);
        let a: Vec<Vec<usize>> = loader.iter_epoch(4).map(|b| b.labels()).collect();
        let b: Vec<Vec<usize>> = loader.iter_epoch(4).map(|b| b.labels()).collect();
        assert_eq!(a, b);
    }
}
