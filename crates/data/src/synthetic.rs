//! Procedural image generator — the ImageNet-1K stand-in.
//!
//! HeatViT's token pruning exploits *spatial* redundancy: patches covering
//! the object carry the label, background patches are prunable, and the
//! object's size varies per image (which is exactly why image-adaptive
//! pruning beats static pruning, paper Fig. 4). This generator reproduces
//! those statistics synthetically: each class is a distinct geometric
//! texture, composited at a random location and scale over background
//! clutter. The object-coverage fraction is recorded per sample so
//! experiments can correlate learned keep rates with image content.

use heatvit_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The geometric texture family drawn for a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFamily {
    /// Filled disk.
    Disk,
    /// Annulus (ring).
    Ring,
    /// Axis-aligned filled square.
    Square,
    /// Filled diamond (L1 ball).
    Diamond,
    /// Horizontal stripes inside the object disk.
    HStripes,
    /// Vertical stripes inside the object disk.
    VStripes,
    /// Checkerboard inside the object square.
    Checker,
    /// Plus / cross shape.
    Cross,
    /// Upward triangle.
    Triangle,
    /// Diagonal X shape.
    DiagCross,
}

impl ShapeFamily {
    /// All families, indexed by class id.
    pub const ALL: [ShapeFamily; 10] = [
        ShapeFamily::Disk,
        ShapeFamily::Ring,
        ShapeFamily::Square,
        ShapeFamily::Diamond,
        ShapeFamily::HStripes,
        ShapeFamily::VStripes,
        ShapeFamily::Checker,
        ShapeFamily::Cross,
        ShapeFamily::Triangle,
        ShapeFamily::DiagCross,
    ];

    /// Signed membership of a point in the shape, in object-local
    /// coordinates (`u`, `v` ∈ [-1, 1] inside the bounding box).
    fn contains(&self, u: f32, v: f32) -> bool {
        let r2 = u * u + v * v;
        match self {
            ShapeFamily::Disk => r2 <= 1.0,
            ShapeFamily::Ring => (0.36..=1.0).contains(&r2),
            ShapeFamily::Square => u.abs() <= 0.85 && v.abs() <= 0.85,
            ShapeFamily::Diamond => u.abs() + v.abs() <= 1.1,
            ShapeFamily::HStripes => r2 <= 1.0 && ((v + 1.0) * 3.0) as i32 % 2 == 0,
            ShapeFamily::VStripes => r2 <= 1.0 && ((u + 1.0) * 3.0) as i32 % 2 == 0,
            ShapeFamily::Checker => {
                u.abs() <= 0.9
                    && v.abs() <= 0.9
                    && (((u + 1.0) * 2.5) as i32 + ((v + 1.0) * 2.5) as i32) % 2 == 0
            }
            ShapeFamily::Cross => u.abs() <= 0.35 || v.abs() <= 0.35,
            ShapeFamily::Triangle => v >= -0.9 && u.abs() <= (1.0 - (v + 0.9) / 1.9),
            ShapeFamily::DiagCross => (u - v).abs() <= 0.4 || (u + v).abs() <= 0.4,
        }
    }
}

/// Configuration of the synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Square image side length in pixels.
    pub image_size: usize,
    /// Number of channels (3 mirrors RGB; 1 for quick tests).
    pub channels: usize,
    /// Number of classes (≤ 10, one [`ShapeFamily`] each).
    pub num_classes: usize,
    /// Smallest object diameter as a fraction of the image side.
    pub min_object_scale: f32,
    /// Largest object diameter as a fraction of the image side.
    pub max_object_scale: f32,
    /// Standard deviation of the additive background/object noise.
    pub noise_std: f32,
}

impl SyntheticConfig {
    /// The configuration used by the trainable µDeiT experiments:
    /// 32×32 RGB, 8 classes, objects covering 25–90 % of the image side.
    pub fn micro() -> Self {
        Self {
            image_size: 32,
            channels: 3,
            num_classes: 8,
            min_object_scale: 0.25,
            max_object_scale: 0.9,
            noise_std: 0.25,
        }
    }

    /// A very small configuration for fast unit tests (16×16, 4 classes).
    pub fn tiny() -> Self {
        Self {
            image_size: 16,
            channels: 3,
            num_classes: 4,
            min_object_scale: 0.3,
            max_object_scale: 0.8,
            noise_std: 0.2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(self.image_size >= 4, "image too small");
        assert!(matches!(self.channels, 1 | 3), "channels must be 1 or 3");
        assert!(
            (1..=ShapeFamily::ALL.len()).contains(&self.num_classes),
            "num_classes must be in 1..=10"
        );
        assert!(
            0.0 < self.min_object_scale && self.min_object_scale <= self.max_object_scale,
            "invalid object scale range"
        );
        assert!(self.max_object_scale <= 1.0, "object larger than image");
        assert!(self.noise_std >= 0.0, "negative noise");
    }
}

/// One labelled image.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Image tensor `[channels, H, W]`, values roughly in `[0, 1]`.
    pub image: Tensor,
    /// Class id in `0..num_classes`.
    pub label: usize,
    /// Fraction of pixels covered by the object (drives adaptive pruning).
    pub object_fraction: f32,
    /// Object bounding box `(row0, col0, row1, col1)`, half-open.
    pub bbox: (usize, usize, usize, usize),
}

/// Generates one sample for class `label`.
///
/// # Panics
///
/// Panics if `label >= config.num_classes` or the config is invalid.
pub fn generate_sample(config: &SyntheticConfig, label: usize, rng: &mut StdRng) -> Sample {
    config.validate();
    assert!(label < config.num_classes, "label out of range");
    let n = config.image_size;
    let family = ShapeFamily::ALL[label];

    // Background: low-frequency gradient clutter plus noise.
    let gx: f32 = rng.gen_range(-0.3..0.3);
    let gy: f32 = rng.gen_range(-0.3..0.3);
    let base: f32 = rng.gen_range(0.2..0.45);

    // Object placement.
    let diameter = rng.gen_range(config.min_object_scale..=config.max_object_scale) * n as f32;
    let radius = diameter / 2.0;
    let cx = rng.gen_range(radius..(n as f32 - radius).max(radius + 1e-3));
    let cy = rng.gen_range(radius..(n as f32 - radius).max(radius + 1e-3));
    // Per-channel object tint keeps channels informative but correlated.
    let tint: Vec<f32> = (0..config.channels)
        .map(|_| rng.gen_range(0.75..1.0))
        .collect();

    let mut image = Tensor::zeros(&[config.channels, n, n]);
    let mut object_pixels = 0usize;
    let (mut r0, mut c0, mut r1, mut c1) = (n, n, 0usize, 0usize);
    for row in 0..n {
        for col in 0..n {
            let u = (col as f32 - cx) / radius;
            let v = (row as f32 - cy) / radius;
            let inside = u.abs() <= 1.0 && v.abs() <= 1.0 && family.contains(u, v);
            if inside {
                object_pixels += 1;
                r0 = r0.min(row);
                c0 = c0.min(col);
                r1 = r1.max(row + 1);
                c1 = c1.max(col + 1);
            }
            for (ch, &tint_value) in tint.iter().enumerate() {
                let bg = base + gx * (col as f32 / n as f32) + gy * (row as f32 / n as f32);
                let value = if inside { tint_value } else { bg };
                let noise = config.noise_std * heatvit_tensor::sample_standard_normal(rng);
                image.set(&[ch, row, col], (value + noise).clamp(0.0, 1.0));
            }
        }
    }
    if object_pixels == 0 {
        // Degenerate draw (possible only for sliver-thin shapes at tiny
        // scales): mark an empty box at the center.
        r0 = n / 2;
        c0 = n / 2;
        r1 = n / 2;
        c1 = n / 2;
    }
    Sample {
        image,
        label,
        object_fraction: object_pixels as f32 / (n * n) as f32,
        bbox: (r0, c0, r1, c1),
    }
}

/// A fully materialized synthetic dataset with balanced classes.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: SyntheticConfig,
    samples: Vec<Sample>,
}

impl SyntheticDataset {
    /// Generates `len` samples with labels cycling through the classes.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid.
    pub fn generate(config: SyntheticConfig, len: usize, seed: u64) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..len)
            .map(|i| generate_sample(&config, i % config.num_classes, &mut rng))
            .collect();
        Self { config, samples }
    }

    /// The generation configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn sample(&self, index: usize) -> &Sample {
        &self.samples[index]
    }

    /// Iterates over all samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Splits into `(train, val)` with `val_fraction` of samples held out.
    ///
    /// The stride is applied to each sample's occurrence index *within its
    /// class*, so both halves stay class-balanced for every fraction. (A
    /// positional stride would alias with the label cycle whenever the
    /// stride divides the class count — e.g. 8 classes at `val_fraction
    /// 0.25` would hold out only classes 3 and 7.)
    ///
    /// # Panics
    ///
    /// Panics if `val_fraction` is not within `(0, 1)`.
    pub fn split(&self, val_fraction: f32) -> (SyntheticDataset, SyntheticDataset) {
        assert!(
            (0.0..1.0).contains(&val_fraction) && val_fraction > 0.0,
            "val_fraction must be in (0, 1)"
        );
        let stride = (1.0 / val_fraction).round().max(2.0) as usize;
        let mut train = Vec::new();
        let mut val = Vec::new();
        let mut occurrence = vec![0usize; self.config.num_classes];
        for s in self.samples.iter() {
            let i = occurrence[s.label];
            occurrence[s.label] += 1;
            if i % stride == stride - 1 {
                val.push(s.clone());
            } else {
                train.push(s.clone());
            }
        }
        (
            SyntheticDataset {
                config: self.config,
                samples: train,
            },
            SyntheticDataset {
                config: self.config,
                samples: val,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticDataset::generate(SyntheticConfig::tiny(), 8, 5);
        let b = SyntheticDataset::generate(SyntheticConfig::tiny(), 8, 5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.image.allclose(&y.image, 0.0));
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn labels_are_balanced() {
        let ds = SyntheticDataset::generate(SyntheticConfig::tiny(), 40, 0);
        let mut counts = [0usize; 4];
        for s in ds.iter() {
            counts[s.label] += 1;
        }
        assert_eq!(counts, [10, 10, 10, 10]);
    }

    #[test]
    fn pixel_range_is_clamped() {
        let ds = SyntheticDataset::generate(SyntheticConfig::tiny(), 4, 1);
        for s in ds.iter() {
            assert!(s.image.min_all() >= 0.0);
            assert!(s.image.max_all() <= 1.0);
        }
    }

    #[test]
    fn object_fraction_tracks_scale() {
        let mut small_cfg = SyntheticConfig::micro();
        small_cfg.min_object_scale = 0.2;
        small_cfg.max_object_scale = 0.25;
        let mut big_cfg = SyntheticConfig::micro();
        big_cfg.min_object_scale = 0.85;
        big_cfg.max_object_scale = 0.9;
        let small = SyntheticDataset::generate(small_cfg, 16, 3);
        let big = SyntheticDataset::generate(big_cfg, 16, 3);
        let avg = |d: &SyntheticDataset| {
            d.iter().map(|s| s.object_fraction).sum::<f32>() / d.len() as f32
        };
        assert!(
            avg(&big) > 2.0 * avg(&small),
            "bigger objects must cover more pixels"
        );
    }

    #[test]
    fn bbox_contains_object() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = generate_sample(&SyntheticConfig::micro(), 0, &mut rng);
        let (r0, c0, r1, c1) = s.bbox;
        assert!(r0 < r1 && c0 < c1, "disk must have a non-empty bbox");
        let area = ((r1 - r0) * (c1 - c0)) as f32 / (32.0 * 32.0);
        // The bbox is at least as large as the object it encloses.
        assert!(area >= s.object_fraction * 0.9);
    }

    #[test]
    fn split_is_balanced_and_disjoint_in_size() {
        let ds = SyntheticDataset::generate(SyntheticConfig::tiny(), 40, 2);
        let (train, val) = ds.split(0.25);
        assert_eq!(train.len() + val.len(), 40);
        // 4 classes × 10 occurrences, every 4th occurrence per class held
        // out: 2 per class.
        assert_eq!(val.len(), 8);
    }

    #[test]
    fn split_holds_out_every_class_even_when_stride_divides_class_count() {
        // Regression: 8 cycling classes with a positional stride of 4 used
        // to put only classes 3 and 7 in the validation half.
        let mut cfg = SyntheticConfig::micro();
        cfg.num_classes = 8;
        let ds = SyntheticDataset::generate(cfg, 64, 0);
        let (train, val) = ds.split(0.25);
        for half in [&train, &val] {
            let mut counts = [0usize; 8];
            for s in half.iter() {
                counts[s.label] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "every class must appear in both halves, got {counts:?}"
            );
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "halves must stay balanced, got {counts:?}");
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean intra-class pixel distance should be smaller than mean
        // inter-class distance when objects are large and centered.
        let cfg = SyntheticConfig {
            image_size: 16,
            channels: 1,
            num_classes: 4,
            min_object_scale: 0.9,
            max_object_scale: 0.95,
            noise_std: 0.05,
        };
        let ds = SyntheticDataset::generate(cfg, 32, 7);
        let dist = |a: &Sample, b: &Sample| a.image.sub(&b.image).norm();
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..ds.len() {
            for j in (i + 1)..ds.len() {
                let d = dist(ds.sample(i), ds.sample(j));
                if ds.sample(i).label == ds.sample(j).label {
                    intra = (intra.0 + d, intra.1 + 1);
                } else {
                    inter = (inter.0 + d, inter.1 + 1);
                }
            }
        }
        let intra = intra.0 / intra.1 as f32;
        let inter = inter.0 / inter.1 as f32;
        assert!(
            inter > intra,
            "classes not separable: intra {intra} inter {inter}"
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_bounds_checked() {
        let mut rng = StdRng::seed_from_u64(0);
        generate_sample(&SyntheticConfig::tiny(), 4, &mut rng);
    }
}
