//! # heatvit-data
//!
//! Procedural synthetic image-classification data — the ImageNet-1K
//! substitute for the [HeatViT](https://arxiv.org/abs/2211.08110)
//! reproduction (see `DESIGN.md` §1 for the substitution argument).
//!
//! Each class is a geometric texture family ([`ShapeFamily`]) composited at a
//! random location and scale over background clutter, so that:
//!
//! * patches overlapping the object are informative, background patches are
//!   prunable (the redundancy token pruning exploits);
//! * the informative-region size varies per image (what image-*adaptive*
//!   pruning exploits over static pruning, paper Fig. 4);
//! * the per-sample coverage is recorded ([`Sample::object_fraction`]) so
//!   experiments can correlate learned keep rates with content.
//!
//! ## Example
//!
//! ```
//! use heatvit_data::{Loader, SyntheticConfig, SyntheticDataset};
//!
//! let ds = SyntheticDataset::generate(SyntheticConfig::micro(), 64, 0);
//! let (train, val) = ds.split(0.25);
//! let loader = Loader::new(&train, 16, true, 0);
//! for batch in loader.iter_epoch(0) {
//!     assert!(batch.len() <= 16);
//!     assert_eq!(batch.samples[0].image.dims(), &[3, 32, 32]);
//! }
//! assert_eq!(val.len(), 16);
//! ```

#![warn(missing_docs)]

pub mod augment;
mod loader;
mod synthetic;

pub use loader::{chunk_ranges, Batch, Loader};
pub use synthetic::{generate_sample, Sample, ShapeFamily, SyntheticConfig, SyntheticDataset};
