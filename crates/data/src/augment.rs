//! Lightweight training-time augmentations.
//!
//! DeiT's heavy augmentation recipe (RandAugment, mixup, …) is overkill for
//! the synthetic dataset; horizontal flips and small translations are enough
//! to stop the µDeiT backbones from memorizing pixel positions, while
//! preserving the object-coverage statistics the pruning experiments rely on.

use heatvit_tensor::Tensor;
use rand::Rng;

/// Horizontally mirrors a `[C, H, W]` image.
///
/// # Panics
///
/// Panics if `image` is not rank 3.
pub fn hflip(image: &Tensor) -> Tensor {
    assert_eq!(image.rank(), 3, "expected [C, H, W]");
    let (c, h, w) = (image.dim(0), image.dim(1), image.dim(2));
    Tensor::from_fn(&[c, h, w], |ix| image.at(&[ix[0], ix[1], w - 1 - ix[2]]))
}

/// Translates a `[C, H, W]` image by `(dy, dx)` pixels, filling exposed
/// borders with the image mean.
///
/// # Panics
///
/// Panics if `image` is not rank 3.
pub fn translate(image: &Tensor, dy: i32, dx: i32) -> Tensor {
    assert_eq!(image.rank(), 3, "expected [C, H, W]");
    let (c, h, w) = (image.dim(0), image.dim(1), image.dim(2));
    let fill = image.mean_all();
    Tensor::from_fn(&[c, h, w], |ix| {
        let src_r = ix[1] as i32 - dy;
        let src_c = ix[2] as i32 - dx;
        if (0..h as i32).contains(&src_r) && (0..w as i32).contains(&src_c) {
            image.at(&[ix[0], src_r as usize, src_c as usize])
        } else {
            fill
        }
    })
}

/// Randomly applies a flip (p=0.5) and a jitter of up to ±`max_shift`
/// pixels in each direction.
pub fn random_augment(image: &Tensor, max_shift: i32, rng: &mut impl Rng) -> Tensor {
    let mut out = if rng.gen_bool(0.5) {
        hflip(image)
    } else {
        image.clone()
    };
    if max_shift > 0 {
        let dy = rng.gen_range(-max_shift..=max_shift);
        let dx = rng.gen_range(-max_shift..=max_shift);
        if dy != 0 || dx != 0 {
            out = translate(&out, dy, dx);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ramp() -> Tensor {
        Tensor::from_fn(&[1, 2, 4], |ix| (ix[1] * 4 + ix[2]) as f32)
    }

    #[test]
    fn hflip_mirrors_columns() {
        let img = ramp();
        let f = hflip(&img);
        assert_eq!(f.at(&[0, 0, 0]), img.at(&[0, 0, 3]));
        assert_eq!(f.at(&[0, 1, 3]), img.at(&[0, 1, 0]));
    }

    #[test]
    fn hflip_is_involution() {
        let img = ramp();
        assert!(hflip(&hflip(&img)).allclose(&img, 0.0));
    }

    #[test]
    fn translate_moves_content() {
        let img = ramp();
        let t = translate(&img, 0, 1);
        assert_eq!(t.at(&[0, 0, 1]), img.at(&[0, 0, 0]));
        // Exposed border takes the mean fill.
        assert_eq!(t.at(&[0, 0, 0]), img.mean_all());
    }

    #[test]
    fn zero_translate_is_identity() {
        let img = ramp();
        assert!(translate(&img, 0, 0).allclose(&img, 0.0));
    }

    #[test]
    fn random_augment_preserves_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let img = ramp();
        for _ in 0..10 {
            let out = random_augment(&img, 1, &mut rng);
            assert_eq!(out.dims(), img.dims());
            assert!(out.max_all() <= img.max_all());
        }
    }
}
