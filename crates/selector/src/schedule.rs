//! Selector placement schedules and stage merging.
//!
//! A [`PruningSchedule`] records where selectors sit and which cumulative
//! keep ratio each one targets — the paper's `Keep Ratio (Stage 1/2/3)`
//! notation from Table VI. The block-to-stage training pipeline produces one
//! of these by inserting selectors back-to-front and then merging adjacent
//! selectors with similar ratios (Algorithm 1, Step 2).

use heatvit_vit::ViTConfig;

/// One selector placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorPlacement {
    /// Block index the selector precedes.
    pub block: usize,
    /// Cumulative keep ratio (fraction of the *original* patch tokens that
    /// survive from this stage on), in `(0, 1]`.
    pub target_keep: f32,
}

/// A full placement schedule, sorted by block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PruningSchedule {
    placements: Vec<SelectorPlacement>,
}

impl PruningSchedule {
    /// Creates a schedule from placements.
    ///
    /// # Panics
    ///
    /// Panics if placements are unordered, duplicated, have ratios outside
    /// `(0, 1]`, or increase the keep ratio (tokens cannot be resurrected).
    pub fn new(placements: Vec<SelectorPlacement>) -> Self {
        let mut last_block = None;
        let mut last_ratio = 1.0f32;
        for p in &placements {
            assert!(
                p.target_keep > 0.0 && p.target_keep <= 1.0,
                "keep ratio must be in (0, 1]"
            );
            if let Some(lb) = last_block {
                assert!(p.block > lb, "placements must be strictly ordered");
            }
            assert!(
                p.target_keep <= last_ratio + 1e-6,
                "cumulative keep ratio cannot increase"
            );
            last_block = Some(p.block);
            last_ratio = p.target_keep;
        }
        Self { placements }
    }

    /// The paper's canonical three-stage layout: selectors at `depth/4`,
    /// `depth/2` and `3·depth/4` (blocks 3/6/9 on a 12-block DeiT) with the
    /// given cumulative keep ratios.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 4` or ratios are not non-increasing in `(0, 1]`.
    pub fn three_stage(depth: usize, ratios: [f32; 3]) -> Self {
        assert!(depth >= 4, "need at least 4 blocks for three stages");
        Self::new(vec![
            SelectorPlacement {
                block: depth / 4,
                target_keep: ratios[0],
            },
            SelectorPlacement {
                block: depth / 2,
                target_keep: ratios[1],
            },
            SelectorPlacement {
                block: 3 * depth / 4,
                target_keep: ratios[2],
            },
        ])
    }

    /// The placements, in block order.
    pub fn placements(&self) -> &[SelectorPlacement] {
        &self.placements
    }

    /// Number of selectors.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// `true` if no selectors are placed.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Cumulative keep ratio in force at each block.
    pub fn keep_per_block(&self, depth: usize) -> Vec<f32> {
        let mut keep = vec![1.0f32; depth];
        for p in &self.placements {
            for k in keep.iter_mut().skip(p.block) {
                *k = p.target_keep;
            }
        }
        keep
    }

    /// Expected token count entering each block (kept patches + class token
    /// + package token once pruning has begun).
    pub fn tokens_per_block(&self, config: &ViTConfig) -> Vec<usize> {
        let n = config.num_patches() as f32;
        self.keep_per_block(config.depth)
            .iter()
            .map(|&k| {
                let kept = (k * n).ceil() as usize;
                kept + 1 + usize::from(k < 1.0)
            })
            .collect()
    }

    /// Merges adjacent placements whose ratios differ by less than
    /// `tolerance`, keeping the *first* selector of each run — Algorithm 1's
    /// stage consolidation (the paper uses an 8.5 % threshold).
    pub fn merge_similar(&self, tolerance: f32) -> Self {
        let mut merged: Vec<SelectorPlacement> = Vec::new();
        for p in &self.placements {
            match merged.last() {
                Some(prev) if (prev.target_keep - p.target_keep).abs() < tolerance => {
                    // Same stage: drop this selector.
                }
                _ => merged.push(*p),
            }
        }
        Self { placements: merged }
    }

    /// Unweighted mean of the per-block keep ratios (every block counts
    /// equally, regardless of how many MACs it runs at). For the
    /// compute-weighted summary used in experiment tables see
    /// [`PruningSchedule::macs_weighted_keep`].
    pub fn mean_keep(&self, depth: usize) -> f32 {
        let per_block = self.keep_per_block(depth);
        per_block.iter().sum::<f32>() / depth as f32
    }

    /// GMACs-weighted average keep ratio: each block's keep ratio weighted
    /// by the MACs that block actually executes under this schedule (the
    /// Table II flops model at the scheduled token counts). Heavily pruned
    /// blocks run fewer MACs, so they pull the average down less than in
    /// [`PruningSchedule::mean_keep`] — this is the honest "how much of the
    /// compute kept full tokens" number.
    pub fn macs_weighted_keep(&self, config: &ViTConfig) -> f32 {
        use heatvit_vit::flops::BlockComplexity;
        let keep = self.keep_per_block(config.depth);
        let tokens = self.tokens_per_block(config);
        let mut weighted = 0.0f64;
        let mut total = 0.0f64;
        for (k, n) in keep.iter().zip(tokens.iter()) {
            let macs = BlockComplexity::new(config, *n).total() as f64;
            weighted += *k as f64 * macs;
            total += macs;
        }
        if total == 0.0 {
            return 1.0;
        }
        (weighted / total) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_stage_places_at_quarter_points() {
        let s = PruningSchedule::three_stage(12, [0.7, 0.39, 0.21]);
        let blocks: Vec<usize> = s.placements().iter().map(|p| p.block).collect();
        assert_eq!(blocks, vec![3, 6, 9]);
    }

    #[test]
    fn keep_per_block_is_step_function() {
        let s = PruningSchedule::three_stage(12, [0.7, 0.39, 0.21]);
        let keep = s.keep_per_block(12);
        assert_eq!(keep[0], 1.0);
        assert_eq!(keep[3], 0.7);
        assert_eq!(keep[6], 0.39);
        assert_eq!(keep[11], 0.21);
    }

    #[test]
    fn tokens_match_table_vi_shape() {
        // DeiT-S, 0.70/0.39/0.21: first stage keeps ceil(0.7·196)+2 tokens.
        let cfg = heatvit_vit::ViTConfig::deit_small();
        let s = PruningSchedule::three_stage(12, [0.7, 0.39, 0.21]);
        let t = s.tokens_per_block(&cfg);
        assert_eq!(t[0], 197);
        assert_eq!(t[3], 140); // ceil(137.2)=138 kept + cls + package
        assert_eq!(t[9], 44); // ceil(41.16)=42 kept + cls + package
    }

    #[test]
    fn merge_collapses_similar_ratios() {
        let s = PruningSchedule::new(vec![
            SelectorPlacement {
                block: 3,
                target_keep: 0.70,
            },
            SelectorPlacement {
                block: 4,
                target_keep: 0.68,
            },
            SelectorPlacement {
                block: 8,
                target_keep: 0.40,
            },
        ]);
        let merged = s.merge_similar(0.085);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.placements()[0].block, 3);
        assert_eq!(merged.placements()[1].block, 8);
    }

    #[test]
    fn merge_keeps_distinct_stages() {
        let s = PruningSchedule::three_stage(12, [0.9, 0.6, 0.3]);
        assert_eq!(s.merge_similar(0.085).len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot increase")]
    fn ratios_must_be_non_increasing() {
        PruningSchedule::new(vec![
            SelectorPlacement {
                block: 3,
                target_keep: 0.5,
            },
            SelectorPlacement {
                block: 6,
                target_keep: 0.8,
            },
        ]);
    }

    #[test]
    fn mean_keep_is_the_unweighted_block_mean() {
        // Regression pin for the documented behavior: every block counts
        // equally — blocks 0–1 at 1.0 and blocks 2–3 at 0.5 average to 0.75.
        let s = PruningSchedule::new(vec![SelectorPlacement {
            block: 2,
            target_keep: 0.5,
        }]);
        assert!((s.mean_keep(4) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn macs_weighted_keep_discounts_pruned_blocks() {
        let cfg = heatvit_vit::ViTConfig::deit_small();
        let s = PruningSchedule::three_stage(12, [0.7, 0.39, 0.21]);
        let unweighted = s.mean_keep(cfg.depth);
        let weighted = s.macs_weighted_keep(&cfg);
        // Pruned blocks execute fewer MACs, so they carry less weight and
        // the weighted average sits strictly above the unweighted one.
        assert!(
            weighted > unweighted,
            "weighted {weighted} vs unweighted {unweighted}"
        );
        assert!(weighted < 1.0);
        // An empty schedule keeps everything under both measures.
        let dense = PruningSchedule::default();
        assert!((dense.macs_weighted_keep(&cfg) - 1.0).abs() < 1e-6);
        assert!((dense.mean_keep(cfg.depth) - 1.0).abs() < 1e-6);
    }
}
