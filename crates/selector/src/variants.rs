//! Alternative token-selector structures for the Fig. 12 ablation.
//!
//! The paper compares the MLP-based multi-head selector against
//! convolution-based selectors at matched compute and finds the MLP design
//! both more accurate and cheaper on hardware (it reuses the GEMM engine).
//! The CONV variant here is a faithful strawman: a 3×3 convolution over the
//! patch-token grid, realized as nine shift matrices feeding a linear layer
//! so it runs on the same tensor substrate.

use crate::gumbel::{threshold_decision, GumbelConfig};
use heatvit_nn::layers::{Activation, Linear};
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Builds the `[N, N]` shift matrix that moves each grid token to its
/// neighbor at offset `(dy, dx)` (zero rows at the border).
///
/// `side` is the patch-grid side length (`N = side²`).
fn shift_matrix(side: usize, dy: i32, dx: i32) -> Tensor {
    let n = side * side;
    Tensor::from_fn(&[n, n], |ix| {
        let (dst, src) = (ix[0], ix[1]);
        let dr = (dst / side) as i32 + dy;
        let dc = (dst % side) as i32 + dx;
        if dr >= 0 && dr < side as i32 && dc >= 0 && dc < side as i32 {
            let neighbor = dr as usize * side + dc as usize;
            if neighbor == src {
                return 1.0;
            }
        }
        0.0
    })
}

/// A convolution-based token classifier (Fig. 12 "CONV" ablation).
///
/// Features for each token are the 3×3 neighborhood of per-token embeddings
/// (gathered by constant shift matrices), projected by a linear layer, then
/// scored keep/prune — single-head, no attention branch, mirroring the
/// CNN-style selectors the paper argues against.
#[derive(Debug, Clone)]
pub struct ConvTokenClassifier {
    feature: Linear,
    scorer: Linear,
    side: usize,
    dim: usize,
    act: Activation,
    shifts: Vec<Tensor>,
}

impl ConvTokenClassifier {
    /// Creates a classifier for a `side × side` patch grid of `dim`-wide
    /// tokens.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0` or `dim == 0`.
    pub fn new(side: usize, dim: usize, act: Activation, rng: &mut impl Rng) -> Self {
        assert!(side > 0 && dim > 0, "grid and width must be non-zero");
        let hidden = (dim / 2).max(2);
        let mut shifts = Vec::with_capacity(9);
        for dy in -1..=1 {
            for dx in -1..=1 {
                shifts.push(shift_matrix(side, dy, dx));
            }
        }
        Self {
            feature: Linear::new(9 * dim, hidden, true, rng),
            scorer: Linear::new(hidden, 2, true, rng),
            side,
            dim,
            act,
            shifts,
        }
    }

    /// The patch-grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Differentiable forward over patch tokens `[N, D]` (`N = side²`).
    ///
    /// # Panics
    ///
    /// Panics if the token count or width mismatch the configuration.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        assert_eq!(tape.dims(x)[0], self.side * self.side, "token count");
        assert_eq!(tape.dims(x)[1], self.dim, "token width");
        let mut neighborhood = Vec::with_capacity(9);
        for shift in &self.shifts {
            let s = tape.constant(shift.clone());
            neighborhood.push(tape.matmul(s, x));
        }
        let stacked = tape.concat_cols(&neighborhood);
        let f = self.feature.forward(tape, stacked);
        let f = self.act.forward(tape, f);
        let s = self.scorer.forward(tape, f);
        tape.softmax_rows(s)
    }

    /// Inference forward (no tape): `[N, 2]` keep/prune scores.
    ///
    /// # Panics
    ///
    /// Panics if the token count or width mismatch the configuration.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.dim(0), self.side * self.side, "token count");
        assert_eq!(x.dim(1), self.dim, "token width");
        let shifted: Vec<Tensor> = self.shifts.iter().map(|s| s.matmul(x)).collect();
        let refs: Vec<&Tensor> = shifted.iter().collect();
        let stacked = Tensor::concat_cols(&refs);
        let f = self.act.infer(&self.feature.infer(&stacked));
        self.scorer.infer(&f).softmax_rows()
    }

    /// Hard keep decision at the default 0.5 threshold.
    pub fn decide(&self, x: &Tensor) -> Vec<bool> {
        threshold_decision(&self.infer(x), GumbelConfig::default().threshold)
    }

    /// Multiply–accumulate count for one grid of tokens, including the
    /// shift gathers charged as data movement (zero MACs) — matching how
    /// the FPGA would implement them.
    pub fn macs(&self) -> u64 {
        let n = self.side * self.side;
        self.feature.macs(n) + self.scorer.macs(n)
    }
}

impl Module for ConvTokenClassifier {
    fn params(&self) -> Vec<&Param> {
        let mut v = self.feature.params();
        v.extend(self.scorer.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.feature.params_mut();
        v.extend(self.scorer.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shift_matrix_moves_identity_grid() {
        // 2x2 grid: token layout [0 1; 2 3]. Shift (0, 1) pulls the right
        // neighbor: dst (0,0) <- src (0,1) = token 1.
        let s = shift_matrix(2, 0, 1);
        let x = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[4, 1]);
        let y = s.matmul(&x);
        assert_eq!(y.data(), &[20.0, 0.0, 40.0, 0.0]);
    }

    #[test]
    fn center_shift_is_identity() {
        let s = shift_matrix(3, 0, 0);
        assert!(s.allclose(&Tensor::eye(9), 0.0));
    }

    #[test]
    fn scores_are_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = ConvTokenClassifier::new(4, 12, Activation::Gelu, &mut rng);
        let x = Tensor::rand_normal(&[16, 12], 0.0, 1.0, &mut rng);
        let s = c.infer(&x);
        assert_eq!(s.dims(), &[16, 2]);
        for r in 0..16 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = ConvTokenClassifier::new(3, 8, Activation::Relu, &mut rng);
        let x = Tensor::rand_normal(&[9, 8], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let out = c.forward(&mut tape, xv);
        assert!(tape.value(out).allclose(&c.infer(&x), 1e-5));
    }

    #[test]
    fn conv_uses_neighborhood_context() {
        // Changing a neighbor token must be able to change a token's score;
        // for the MLP classifier it cannot (per-token scoring).
        let mut rng = StdRng::seed_from_u64(2);
        let c = ConvTokenClassifier::new(3, 8, Activation::Gelu, &mut rng);
        let x = Tensor::rand_normal(&[9, 8], 0.0, 1.0, &mut rng);
        let base = c.infer(&x);
        let mut x2 = x.clone();
        for v in x2.row_mut(1) {
            *v += 3.0; // perturb token 1 (a neighbor of token 0)
        }
        let bumped = c.infer(&x2);
        assert!(
            (base.at(&[0, 0]) - bumped.at(&[0, 0])).abs() > 1e-6,
            "neighbor perturbation must reach token 0"
        );
    }

    #[test]
    fn decide_keeps_at_least_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = ConvTokenClassifier::new(2, 4, Activation::Gelu, &mut rng);
        let x = Tensor::rand_normal(&[4, 4], 0.0, 1.0, &mut rng);
        assert!(c.decide(&x).iter().any(|&k| k));
    }
}
