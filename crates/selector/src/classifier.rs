//! The attention-based multi-head token classifier (paper Section IV-A).
//!
//! For each attention head `i`, the input tokens are split into per-head
//! subvectors and scored (Eqs. 3–5):
//!
//! ```text
//! E_local_i  = MLP(x_i)            ∈ R^{N×d/2}
//! E_global_i = Average(MLP(x_i))   ∈ R^{1×d/2}
//! s_i        = Softmax(MLP([E_local_i ; E_global_i × N])) ∈ R^{N×2}
//! ```
//!
//! A sigmoid attention branch weighs the heads per token (Eqs. 6–8):
//!
//! ```text
//! X̄ = Concat({mean_channel(x_i)})  ∈ R^{N×h}
//! A  = Sigmoid(MLP(X̄))             ∈ R^{N×h}
//! S̃  = Σᵢ sᵢ·aᵢ / Σᵢ aᵢ            ∈ R^{N×2}
//! ```
//!
//! Everything is built from linear layers so the FPGA GEMM engine executes
//! the classifier without new hardware (paper Section V).

use heatvit_nn::layers::{Activation, Linear};
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Per-head feature extractor + scorer widths, derived from the head width.
fn half(d: usize) -> usize {
    (d / 2).max(1)
}

/// The multi-head token classifier.
#[derive(Debug, Clone)]
pub struct MultiHeadTokenClassifier {
    /// Shared-architecture per-head feature MLPs (`d → d → d/2`).
    feature_fc1: Vec<Linear>,
    feature_fc2: Vec<Linear>,
    /// Per-head scorer MLPs (`d → d/2 → 2`).
    scorer_fc1: Vec<Linear>,
    scorer_fc2: Vec<Linear>,
    /// Attention branch (`h → 2h → h`).
    attn_fc1: Linear,
    attn_fc2: Linear,
    num_heads: usize,
    head_dim: usize,
    act: Activation,
}

/// Differentiable classifier outputs.
#[derive(Debug)]
pub struct ClassifierOutput {
    /// Combined token scores `S̃` `[N, 2]` (column 0 = keep probability).
    pub scores: Var,
    /// Per-head scores `sᵢ` `[N, 2]`.
    pub head_scores: Vec<Var>,
    /// Head-importance weights `A` `[N, h]`.
    pub head_weights: Var,
}

impl MultiHeadTokenClassifier {
    /// Creates a classifier for tokens of width `dim` split into
    /// `num_heads` heads, using `act` inside the MLPs (GELU in the paper;
    /// ReLU/Hardswish for the Fig. 12 ablation).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `num_heads`.
    pub fn new(dim: usize, num_heads: usize, act: Activation, rng: &mut impl Rng) -> Self {
        assert!(num_heads > 0, "at least one head required");
        assert_eq!(dim % num_heads, 0, "dim must divide evenly into heads");
        let d = dim / num_heads;
        let mut feature_fc1 = Vec::with_capacity(num_heads);
        let mut feature_fc2 = Vec::with_capacity(num_heads);
        let mut scorer_fc1 = Vec::with_capacity(num_heads);
        let mut scorer_fc2 = Vec::with_capacity(num_heads);
        for _ in 0..num_heads {
            feature_fc1.push(Linear::new(d, d, true, rng));
            feature_fc2.push(Linear::new(d, half(d), true, rng));
            scorer_fc1.push(Linear::new(2 * half(d), half(d), true, rng));
            scorer_fc2.push(Linear::new(half(d), 2, true, rng));
        }
        Self {
            feature_fc1,
            feature_fc2,
            scorer_fc1,
            scorer_fc2,
            attn_fc1: Linear::new(num_heads, 2 * num_heads, true, rng),
            attn_fc2: Linear::new(2 * num_heads, num_heads, true, rng),
            num_heads,
            head_dim: d,
            act,
        }
    }

    /// Number of heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head token width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The MLP activation in use.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Differentiable forward over patch tokens `x` `[N, h·d]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width or zero rows.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> ClassifierOutput {
        let n = tape.dims(x)[0];
        assert!(n > 0, "classifier needs at least one token");
        assert_eq!(
            tape.dims(x)[1],
            self.num_heads * self.head_dim,
            "classifier input width mismatch"
        );
        let mut head_scores = Vec::with_capacity(self.num_heads);
        let mut head_means = Vec::with_capacity(self.num_heads);
        for h in 0..self.num_heads {
            let (lo, hi) = (h * self.head_dim, (h + 1) * self.head_dim);
            let xh = tape.slice_cols(x, lo, hi);
            // Eq. 3: local receptive field.
            let f = self.feature_fc1[h].forward(tape, xh);
            let f = self.act.forward(tape, f);
            let local = self.feature_fc2[h].forward(tape, f);
            let local = self.act.forward(tape, local);
            // Eq. 4: global receptive field (token-mean of the features).
            let global = tape.mean_cols_keep(local);
            let global = tape.repeat_rows(global, n);
            // Eq. 5: score from [local ; global].
            let e = tape.concat_cols(&[local, global]);
            let s = self.scorer_fc1[h].forward(tape, e);
            let s = self.act.forward(tape, s);
            let s = self.scorer_fc2[h].forward(tape, s);
            head_scores.push(tape.softmax_rows(s));
            // Eq. 6 ingredient: per-head channel mean.
            head_means.push(tape.mean_rows_keep(xh));
        }
        // Eqs. 6–7: head importance per token.
        let xbar = tape.concat_cols(&head_means);
        let a = self.attn_fc1.forward(tape, xbar);
        let a = self.act.forward(tape, a);
        let a = self.attn_fc2.forward(tape, a);
        let head_weights = tape.sigmoid(a);
        // Eq. 8: importance-weighted average of head scores.
        let mut numerator: Option<Var> = None;
        for (h, &s) in head_scores.iter().enumerate() {
            let ah = tape.slice_cols(head_weights, h, h + 1);
            let ah = tape.reshape(ah, &[n]);
            let weighted = tape.mul_col_broadcast(s, ah);
            numerator = Some(match numerator {
                Some(acc) => tape.add(acc, weighted),
                None => weighted,
            });
        }
        let weight_sum = tape.mean_rows_keep(head_weights);
        let weight_sum = tape.scale(weight_sum, self.num_heads as f32);
        let weight_sum = tape.reshape(weight_sum, &[n]);
        let scores = tape.div_col_broadcast(numerator.expect("at least one head"), weight_sum);
        ClassifierOutput {
            scores,
            head_scores,
            head_weights,
        }
    }

    /// Inference forward (no tape): returns `S̃` `[N, 2]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width or zero rows.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let n = x.dim(0);
        assert!(n > 0, "classifier needs at least one token");
        assert_eq!(
            x.dim(1),
            self.num_heads * self.head_dim,
            "classifier input width mismatch"
        );
        let mut numerator = Tensor::zeros(&[n, 2]);
        let mut weight_sum = vec![0.0f32; n];
        // Head means for the attention branch.
        let mut xbar = Tensor::zeros(&[n, self.num_heads]);
        for h in 0..self.num_heads {
            let xh = x.slice_cols(h * self.head_dim, (h + 1) * self.head_dim);
            let means = xh.mean_rows();
            for r in 0..n {
                xbar.set(&[r, h], means.data()[r]);
            }
        }
        let a = self.attn_fc1.infer(&xbar);
        let a = self.act.infer(&a);
        let a = self.attn_fc2.infer(&a);
        let head_weights = a.map(heatvit_tensor::scalar::sigmoid);
        for h in 0..self.num_heads {
            let xh = x.slice_cols(h * self.head_dim, (h + 1) * self.head_dim);
            let f = self.act.infer(&self.feature_fc1[h].infer(&xh));
            let local = self.act.infer(&self.feature_fc2[h].infer(&f));
            let global = local.mean_cols();
            let mut e = Tensor::zeros(&[n, 2 * half(self.head_dim)]);
            for r in 0..n {
                let row = e.row_mut(r);
                row[..half(self.head_dim)].copy_from_slice(local.row(r));
                row[half(self.head_dim)..].copy_from_slice(global.data());
            }
            let s = self.act.infer(&self.scorer_fc1[h].infer(&e));
            let s = self.scorer_fc2[h].infer(&s).softmax_rows();
            for (r, ws) in weight_sum.iter_mut().enumerate() {
                let w = head_weights.at(&[r, h]);
                numerator.set(&[r, 0], numerator.at(&[r, 0]) + w * s.at(&[r, 0]));
                numerator.set(&[r, 1], numerator.at(&[r, 1]) + w * s.at(&[r, 1]));
                *ws += w;
            }
        }
        Tensor::from_fn(&[n, 2], |ix| {
            numerator.at(ix) / weight_sum[ix[0]].max(1e-12)
        })
    }

    /// Multiply–accumulate count for `n` tokens (selector overhead
    /// accounting; paper claims it is negligible vs. the backbone).
    pub fn macs(&self, n: usize) -> u64 {
        let per_head: u64 = [
            &self.feature_fc1[0],
            &self.feature_fc2[0],
            &self.scorer_fc1[0],
            &self.scorer_fc2[0],
        ]
        .iter()
        .map(|l| l.macs(n))
        .sum();
        per_head * self.num_heads as u64 + self.attn_fc1.macs(n) + self.attn_fc2.macs(n)
    }
}

impl Module for MultiHeadTokenClassifier {
    fn params(&self) -> Vec<&Param> {
        let mut v = Vec::new();
        for h in 0..self.num_heads {
            v.extend(self.feature_fc1[h].params());
            v.extend(self.feature_fc2[h].params());
            v.extend(self.scorer_fc1[h].params());
            v.extend(self.scorer_fc2[h].params());
        }
        v.extend(self.attn_fc1.params());
        v.extend(self.attn_fc2.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = Vec::new();
        let heads = self
            .feature_fc1
            .iter_mut()
            .zip(self.feature_fc2.iter_mut())
            .zip(self.scorer_fc1.iter_mut().zip(self.scorer_fc2.iter_mut()));
        for ((f1, f2), (s1, s2)) in heads {
            v.extend(f1.params_mut());
            v.extend(f2.params_mut());
            v.extend(s1.params_mut());
            v.extend(s2.params_mut());
        }
        v.extend(self.attn_fc1.params_mut());
        v.extend(self.attn_fc2.params_mut());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn classifier() -> (MultiHeadTokenClassifier, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let c = MultiHeadTokenClassifier::new(24, 3, Activation::Gelu, &mut rng);
        (c, rng)
    }

    #[test]
    fn scores_are_row_distributions() {
        let (c, mut rng) = classifier();
        let x = Tensor::rand_normal(&[7, 24], 0.0, 1.0, &mut rng);
        let s = c.infer(&x);
        assert_eq!(s.dims(), &[7, 2]);
        for r in 0..7 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            assert!(s.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn forward_matches_infer() {
        let (c, mut rng) = classifier();
        let x = Tensor::rand_normal(&[5, 24], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let out = c.forward(&mut tape, xv);
        assert!(tape.value(out.scores).allclose(&c.infer(&x), 1e-4));
        assert_eq!(out.head_scores.len(), 3);
        assert_eq!(tape.dims(out.head_weights), &[5, 3]);
    }

    #[test]
    fn head_weights_are_sigmoid_bounded() {
        let (c, mut rng) = classifier();
        let x = Tensor::rand_normal(&[4, 24], 0.0, 2.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let out = c.forward(&mut tape, xv);
        let w = tape.value(out.head_weights);
        assert!(w.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let (mut c, mut rng) = classifier();
        let x = Tensor::rand_normal(&[6, 24], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let out = c.forward(&mut tape, xv);
        let keep = tape.slice_cols(out.scores, 0, 1);
        let loss = tape.mean_all(keep);
        let grads = tape.backward(loss);
        tape.write_grads(&grads, c.params_mut());
        for p in c.params() {
            assert!(p.grad().is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn macs_are_negligible_vs_backbone() {
        // Selector overhead on DeiT-S-like dims must stay below 2 % of one
        // encoder block (paper: "negligible computational overhead").
        let mut rng = StdRng::seed_from_u64(1);
        let c = MultiHeadTokenClassifier::new(384, 6, Activation::Gelu, &mut rng);
        let selector = c.macs(197);
        let block =
            heatvit_vit::flops::BlockComplexity::new(&heatvit_vit::ViTConfig::deit_small(), 197)
                .total();
        assert!(
            (selector as f64) < 0.05 * block as f64,
            "selector {selector} vs block {block}"
        );
    }

    #[test]
    fn different_tokens_get_different_scores() {
        let (c, mut rng) = classifier();
        let x = Tensor::rand_normal(&[10, 24], 0.0, 2.0, &mut rng);
        let s = c.infer(&x);
        let first = s.at(&[0, 0]);
        assert!(
            (0..10).any(|r| (s.at(&[r, 0]) - first).abs() > 1e-4),
            "classifier collapsed to a constant"
        );
    }
}
