//! # heatvit-selector
//!
//! The adaptive token-pruning module of
//! [HeatViT](https://arxiv.org/abs/2211.08110) — the paper's core
//! algorithmic contribution:
//!
//! * [`MultiHeadTokenClassifier`] — per-head local/global MLP scoring with a
//!   sigmoid attention branch that weighs heads per token (Eqs. 3–8);
//! * [`gumbel`] — straight-through Gumbel-Softmax keep/prune decisions
//!   (Eq. 9);
//! * [`packager`] — keep-score-weighted consolidation of pruned tokens into
//!   one package token (Eq. 10);
//! * [`PrunedViT`] — a backbone with selectors interleaved, performing
//!   *dense repacking* so every downstream GEMM stays dense (the hardware
//!   token-selection flow of Fig. 9);
//! * [`StaticPrunedViT`] — the static-pruning baselines of Section II-D;
//! * [`ConvTokenClassifier`] — the convolution-based strawman of Fig. 12;
//! * [`PruningSchedule`] — placement/keep-ratio bookkeeping with
//!   block-to-stage merging.
//!
//! ## Example
//!
//! ```
//! use heatvit_selector::{PrunedViT, TokenSelector};
//! use heatvit_vit::{ViTConfig, VisionTransformer};
//! use heatvit_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let backbone = VisionTransformer::new(ViTConfig::micro(8), &mut rng);
//! let mut model = PrunedViT::new(backbone);
//! model.insert_selector(3, TokenSelector::new(48, 3, &mut rng));
//!
//! let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
//! let out = model.infer(&image);
//! assert_eq!(out.tokens_per_block.len(), 6);
//! assert!(out.tokens_per_block[3] <= out.tokens_per_block[0] + 1);
//! ```

#![warn(missing_docs)]

mod classifier;
pub mod gumbel;
pub mod packager;
mod pruned;
mod schedule;
mod scratch;
mod selector;
mod static_prune;
mod variants;

pub use classifier::{ClassifierOutput, MultiHeadTokenClassifier};
pub use pruned::{PrunedInference, PrunedTrainOutput, PrunedViT};
pub use schedule::{PruningSchedule, SelectorPlacement};
pub use scratch::PruneScratch;
pub use selector::{InferDecision, TokenSelector, TrainDecision};
pub use static_prune::{StaticInference, StaticPrunedViT, StaticRule, StaticStage};
pub use variants::ConvTokenClassifier;
