//! The complete token selector: classifier + Gumbel decision.

use crate::classifier::MultiHeadTokenClassifier;
use crate::gumbel::{gumbel_softmax_st, threshold_decision, GumbelConfig, GumbelDecision};
use heatvit_nn::layers::Activation;
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Differentiable selector decision for one image.
#[derive(Debug)]
pub struct TrainDecision {
    /// Exact keep-probability column of `S̃` `[N]` (packager weights).
    pub keep_scores: Var,
    /// Gumbel-relaxed keep probabilities `[N]`.
    pub keep_soft: Var,
    /// Straight-through 0/1 mask `[N]`.
    pub mask_st: Var,
    /// Hard keep decisions.
    pub keep_hard: Vec<bool>,
}

/// Deterministic selector decision (inference).
#[derive(Debug, Clone)]
pub struct InferDecision {
    /// Hard keep decisions per token.
    pub keep: Vec<bool>,
    /// Exact keep probabilities `S̃[:, 0]`.
    pub keep_scores: Vec<f32>,
}

impl InferDecision {
    /// Indices of kept tokens.
    pub fn kept_indices(&self) -> Vec<usize> {
        self.keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i))
            .collect()
    }

    /// Indices of pruned tokens.
    pub fn pruned_indices(&self) -> Vec<usize> {
        self.keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| (!k).then_some(i))
            .collect()
    }

    /// Fraction of tokens kept.
    pub fn keep_fraction(&self) -> f32 {
        if self.keep.is_empty() {
            return 1.0;
        }
        self.keep.iter().filter(|&&k| k).count() as f32 / self.keep.len() as f32
    }
}

/// An adaptive token selector (one classifier plus its decision rule).
///
/// # Examples
///
/// ```
/// use heatvit_selector::TokenSelector;
/// use heatvit_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let selector = TokenSelector::new(24, 3, &mut rng);
/// let tokens = Tensor::rand_normal(&[8, 24], 0.0, 1.0, &mut rng);
/// let decision = selector.infer(&tokens);
/// assert_eq!(decision.keep.len(), 8);
/// assert!(decision.keep.iter().any(|&k| k)); // never prunes everything
/// ```
#[derive(Debug, Clone)]
pub struct TokenSelector {
    classifier: MultiHeadTokenClassifier,
    gumbel: GumbelConfig,
}

impl TokenSelector {
    /// Creates a selector with GELU MLPs (the paper's configuration).
    pub fn new(dim: usize, num_heads: usize, rng: &mut impl Rng) -> Self {
        Self::with_activation(dim, num_heads, Activation::Gelu, rng)
    }

    /// Creates a selector with a custom classifier activation
    /// (ReLU / Hardswish for the Fig. 12 ablation).
    pub fn with_activation(
        dim: usize,
        num_heads: usize,
        act: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            classifier: MultiHeadTokenClassifier::new(dim, num_heads, act, rng),
            gumbel: GumbelConfig::default(),
        }
    }

    /// Overrides the Gumbel temperature/threshold.
    pub fn set_gumbel(&mut self, config: GumbelConfig) {
        self.gumbel = config;
    }

    /// The decision configuration.
    pub fn gumbel(&self) -> GumbelConfig {
        self.gumbel
    }

    /// The underlying classifier.
    pub fn classifier(&self) -> &MultiHeadTokenClassifier {
        &self.classifier
    }

    /// Differentiable decision over patch tokens `[N, D]` (class token
    /// excluded by the caller).
    pub fn forward_train(
        &self,
        tape: &mut Tape,
        patch_tokens: Var,
        rng: &mut impl Rng,
    ) -> TrainDecision {
        let n = tape.dims(patch_tokens)[0];
        let out = self.classifier.forward(tape, patch_tokens);
        let keep_col = tape.slice_cols(out.scores, 0, 1);
        let keep_scores = tape.reshape(keep_col, &[n]);
        let GumbelDecision {
            keep_soft,
            mask_st,
            keep_hard,
        } = gumbel_softmax_st(tape, out.scores, self.gumbel, rng);
        TrainDecision {
            keep_scores,
            keep_soft,
            mask_st,
            keep_hard,
        }
    }

    /// Deterministic decision over patch tokens `[N, D]`.
    pub fn infer(&self, patch_tokens: &Tensor) -> InferDecision {
        let scores = self.classifier.infer(patch_tokens);
        let keep = threshold_decision(&scores, self.gumbel.threshold);
        let keep_scores = (0..scores.dim(0)).map(|r| scores.at(&[r, 0])).collect();
        InferDecision { keep, keep_scores }
    }

    /// Classifier multiply–accumulate count for `n` tokens.
    pub fn macs(&self, n: usize) -> u64 {
        self.classifier.macs(n)
    }
}

impl Module for TokenSelector {
    fn params(&self) -> Vec<&Param> {
        self.classifier.params()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.classifier.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_and_infer_decisions_are_consistent_in_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let sel = TokenSelector::new(16, 2, &mut rng);
        let x = Tensor::rand_normal(&[6, 16], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let xv = tape.constant(x.clone());
        let d = sel.forward_train(&mut tape, xv, &mut rng);
        assert_eq!(d.keep_hard.len(), 6);
        assert_eq!(tape.dims(d.keep_soft), &[6]);
        assert_eq!(tape.dims(d.mask_st), &[6]);
        let inf = sel.infer(&x);
        assert_eq!(inf.keep.len(), 6);
    }

    #[test]
    fn infer_keep_scores_match_classifier() {
        let mut rng = StdRng::seed_from_u64(1);
        let sel = TokenSelector::new(16, 2, &mut rng);
        let x = Tensor::rand_normal(&[5, 16], 0.0, 1.0, &mut rng);
        let inf = sel.infer(&x);
        let scores = sel.classifier().infer(&x);
        for (r, &s) in inf.keep_scores.iter().enumerate() {
            assert!((s - scores.at(&[r, 0])).abs() < 1e-6);
        }
    }

    #[test]
    fn kept_and_pruned_indices_partition() {
        let mut rng = StdRng::seed_from_u64(2);
        let sel = TokenSelector::new(16, 2, &mut rng);
        let x = Tensor::rand_normal(&[9, 16], 0.0, 1.0, &mut rng);
        let inf = sel.infer(&x);
        let mut all = inf.kept_indices();
        all.extend(inf.pruned_indices());
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        let frac = inf.keep_fraction();
        assert!((0.0..=1.0).contains(&frac));
    }
}
