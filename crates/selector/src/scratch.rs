//! Reusable buffers for the pruned inference paths.
//!
//! Both the adaptive ([`crate::PrunedViT`]) and static
//! ([`crate::StaticPrunedViT`]) models repeat the same repacking dance per
//! selector stage: slice off the class token, score the patch tokens, gather
//! the survivors into a smaller dense matrix, and concatenate the parts back
//! together. [`PruneScratch`] owns every buffer that dance needs — tensors
//! for the sliced/gathered/repacked matrices, index vectors for the
//! keep/prune partitions, and the backbone's [`InferScratch`] — so a batched
//! engine allocates them once per batch instead of once per image.

use heatvit_quant::QuantScratch;
use heatvit_tensor::Tensor;
use heatvit_tfprune::TfScratch;
use heatvit_vit::InferScratch;

/// Workspace for dense token repacking plus backbone inference.
///
/// Cheap to construct; the single-image convenience paths build a fresh one,
/// which makes the scratch and non-scratch paths execute identical
/// arithmetic (bit-identical results).
#[derive(Debug, Clone, Default)]
pub struct PruneScratch {
    /// Backbone (per-block) activation buffers.
    pub vit: InferScratch,
    /// Integer-pipeline buffers (used by the `heatvit-quant` backend when it
    /// runs under the same batched engine; unused by the float variants).
    pub quant: QuantScratch,
    /// Training-free pruning buffers (used by the `heatvit-tfprune` backends
    /// under the same batched engine; unused by the learned variants). Owns
    /// its own backbone scratch, so the training-free paths never alias the
    /// buffers above.
    pub tf: TfScratch,
    /// Patch-token rows (class token excluded) `[N-1, D]`.
    pub(crate) patches: Tensor,
    /// The class-token row `[1, D]`.
    pub(crate) cls: Tensor,
    /// Gathered informative rows `[K, D]`.
    pub(crate) kept_rows: Tensor,
    /// Gathered pruned rows `[N-1-K, D]` (package input).
    pub(crate) pruned_rows: Tensor,
    /// The repacked token matrix handed to the next block.
    pub(crate) repacked: Tensor,
    /// Indices of kept patch tokens (also reused as a sort buffer).
    pub(crate) kept: Vec<usize>,
    /// Indices of pruned patch tokens / ranking order buffer.
    pub(crate) pruned: Vec<usize>,
    /// Keep scores of the pruned tokens (packager weights).
    pub(crate) pruned_scores: Vec<f32>,
    /// Original patch-grid index of each current row (`None` = class or
    /// package token).
    pub(crate) origin: Vec<Option<usize>>,
    /// Staging buffer for the post-repack `origin` mapping.
    pub(crate) new_origin: Vec<Option<usize>>,
}

// Each engine worker thread owns one scratch; a future non-`Send` field must
// fail to build here, not at the distant thread-spawn site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<PruneScratch>();
};
