//! The token packager (paper Section IV-B, Eq. 10).
//!
//! Non-informative tokens are not discarded: they are consolidated into a
//! single *package token* by keep-score-weighted averaging,
//!
//! ```text
//! P = Σₜ x̂ₜ · s̃ₜ[0]  /  Σₜ s̃ₜ[0]   ∈ R^{1×D}
//! ```
//!
//! so later blocks can still recover information from mistakenly pruned
//! tokens. The packaged token is concatenated with the informative ones to
//! keep every downstream GEMM dense (no sparse indexing on hardware).

use heatvit_nn::{Tape, Var};
use heatvit_tensor::Tensor;

/// Weighted-average package token from pruned rows (inference path).
///
/// `pruned` is `[T, D]`, `keep_scores` the corresponding `s̃ₜ[0]` values.
/// Returns `None` when `T == 0` (nothing was pruned, no token to append).
///
/// # Panics
///
/// Panics if `keep_scores.len() != pruned.dim(0)`.
pub fn package_tokens(pruned: &Tensor, keep_scores: &[f32]) -> Option<Tensor> {
    assert_eq!(
        pruned.dim(0),
        keep_scores.len(),
        "one keep score per pruned token required"
    );
    if pruned.dim(0) == 0 {
        return None;
    }
    let total: f32 = keep_scores.iter().sum();
    let weights: Vec<f32> = if total <= 1e-12 {
        // All scores ~0: fall back to a plain average.
        vec![1.0 / keep_scores.len() as f32; keep_scores.len()]
    } else {
        keep_scores.iter().map(|&s| s / total).collect()
    };
    let weighted = pruned.scale_rows(&weights);
    let cols = weighted.dim(1);
    Some(
        weighted
            .mean_cols()
            .scale(pruned.dim(0) as f32)
            .reshape(&[1, cols]),
    )
}

/// Differentiable package token (training path).
///
/// `tokens` is the full `[N, D]` token matrix on the tape; `pruned_indices`
/// selects the rows to consolidate and `keep_scores` is the `[N]` keep-score
/// column of the classifier output (gradients flow into both the token
/// embeddings and the scores). Returns `None` when nothing is pruned.
///
/// # Panics
///
/// Panics if any index is out of bounds.
pub fn package_tokens_tape(
    tape: &mut Tape,
    tokens: Var,
    keep_scores: Var,
    pruned_indices: &[usize],
) -> Option<Var> {
    if pruned_indices.is_empty() {
        return None;
    }
    let n = tape.dims(tokens)[0];
    for &i in pruned_indices {
        assert!(i < n, "pruned index {i} out of bounds");
    }
    let pruned = tape.gather_rows(tokens, pruned_indices);
    // Gather the matching scores by treating them as an [N, 1] matrix.
    let scores_mat = tape.reshape(keep_scores, &[n, 1]);
    let pruned_scores = tape.gather_rows(scores_mat, pruned_indices);
    let t = pruned_indices.len();
    let pruned_scores = tape.reshape(pruned_scores, &[t]);
    let weighted = tape.mul_col_broadcast(pruned, pruned_scores);
    // Column sums = T · column means.
    let summed = tape.mean_cols_keep(weighted);
    let summed = tape.scale(summed, t as f32);
    let score_sum = tape.sum_all(pruned_scores);
    // Guard against an all-zero score sum (matches the inference fallback).
    let score_sum = tape.add_scalar(score_sum, 1e-12);
    Some(tape.div_col_broadcast(summed, score_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_give_plain_average() {
        let pruned = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let p = package_tokens(&pruned, &[0.5, 0.5]).unwrap();
        assert_eq!(p.dims(), &[1, 2]);
        assert_eq!(p.data(), &[2.0, 3.0]);
    }

    #[test]
    fn higher_scores_dominate_package() {
        let pruned = Tensor::from_vec(vec![0.0, 0.0, 10.0, 10.0], &[2, 2]);
        let p = package_tokens(&pruned, &[0.1, 0.9]).unwrap();
        assert!((p.data()[0] - 9.0).abs() < 1e-5);
    }

    #[test]
    fn empty_prune_set_yields_none() {
        let pruned = Tensor::zeros(&[0, 4]);
        assert!(package_tokens(&pruned, &[]).is_none());
    }

    #[test]
    fn zero_scores_fall_back_to_average() {
        let pruned = Tensor::from_vec(vec![2.0, 4.0], &[2, 1]);
        let p = package_tokens(&pruned, &[0.0, 0.0]).unwrap();
        assert!((p.data()[0] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn tape_path_matches_inference_path() {
        let tokens = Tensor::from_fn(&[5, 3], |ix| (ix[0] * 3 + ix[1]) as f32 * 0.3);
        let scores = Tensor::from_vec(vec![0.9, 0.2, 0.8, 0.1, 0.3], &[5]);
        let pruned_idx = [1usize, 3, 4];

        let mut tape = Tape::new();
        let tv = tape.constant(tokens.clone());
        let sv = tape.constant(scores.clone());
        let p = package_tokens_tape(&mut tape, tv, sv, &pruned_idx).unwrap();

        let pruned_rows = tokens.gather_rows(&pruned_idx);
        let pruned_scores: Vec<f32> = pruned_idx.iter().map(|&i| scores.data()[i]).collect();
        let expect = package_tokens(&pruned_rows, &pruned_scores).unwrap();
        assert!(tape.value(p).allclose(&expect, 1e-5));
    }

    #[test]
    fn gradients_flow_into_scores_and_tokens() {
        let tokens = Tensor::from_fn(&[4, 2], |ix| ix[0] as f32 + 1.0 + ix[1] as f32);
        let scores = Tensor::from_vec(vec![0.6, 0.4, 0.7, 0.2], &[4]);
        let mut tape = Tape::new();
        let tv = tape.leaf(tokens);
        let sv = tape.leaf(scores);
        let p = package_tokens_tape(&mut tape, tv, sv, &[0, 2]).unwrap();
        let loss = tape.sum_all(p);
        let grads = tape.backward(loss);
        assert!(grads.get(tv).unwrap().data().iter().any(|&g| g != 0.0));
        assert!(grads.get(sv).unwrap().data().iter().any(|&g| g != 0.0));
        // Kept rows get no token gradient through the packager.
        let gt = grads.get(tv).unwrap();
        assert_eq!(gt.row(1), &[0.0, 0.0]);
        assert_eq!(gt.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn package_preserves_information_better_than_discard() {
        // The package token is a convex combination of the pruned tokens, so
        // it stays inside their value range — information is averaged, not
        // lost entirely.
        let pruned = Tensor::from_vec(vec![1.0, 5.0, 3.0], &[3, 1]);
        let p = package_tokens(&pruned, &[0.3, 0.3, 0.3]).unwrap();
        assert!(p.data()[0] >= 1.0 && p.data()[0] <= 5.0);
    }
}
