//! Gumbel-Softmax sampling and the straight-through keep mask (paper Eq. 9).

use heatvit_nn::{Tape, Var};
use heatvit_tensor::Tensor;
use rand::Rng;

/// Configuration of the Gumbel-Softmax relaxation.
#[derive(Debug, Clone, Copy)]
pub struct GumbelConfig {
    /// Relaxation temperature τ (lower = harder decisions).
    pub temperature: f32,
    /// Keep threshold on the (soft or exact) keep probability.
    pub threshold: f32,
}

impl Default for GumbelConfig {
    fn default() -> Self {
        Self {
            temperature: 1.0,
            threshold: 0.5,
        }
    }
}

/// One sample from the standard Gumbel distribution.
pub fn sample_gumbel(rng: &mut impl Rng) -> f32 {
    let u: f32 = rng.gen_range(1e-9..1.0f32);
    -(-u.ln()).ln()
}

/// Result of a straight-through Gumbel-Softmax draw over token keep/prune
/// probabilities.
#[derive(Debug)]
pub struct GumbelDecision {
    /// Soft keep probabilities `[N]` (differentiable).
    pub keep_soft: Var,
    /// Straight-through mask `[N]`: forwards the hard 0/1 decision, but
    /// gradients flow as if it were `keep_soft`.
    pub mask_st: Var,
    /// The hard decisions.
    pub keep_hard: Vec<bool>,
}

/// Applies straight-through Gumbel-Softmax to classifier scores.
///
/// `scores` must be `[N, 2]` row-stochastic (column 0 = keep). The relaxed
/// sample is `softmax((ln S̃ + g)/τ)` with i.i.d. Gumbel noise `g`; the hard
/// decision thresholds the relaxed keep probability. If every token would be
/// pruned, the single highest-scoring token is kept so downstream blocks
/// always receive at least one patch token.
///
/// # Panics
///
/// Panics if `scores` is not `[N, 2]`.
pub fn gumbel_softmax_st(
    tape: &mut Tape,
    scores: Var,
    config: GumbelConfig,
    rng: &mut impl Rng,
) -> GumbelDecision {
    let dims = tape.dims(scores).to_vec();
    assert_eq!(dims.len(), 2, "scores must be rank 2");
    assert_eq!(dims[1], 2, "scores must have keep/prune columns");
    let n = dims[0];
    let noise = Tensor::from_fn(&[n, 2], |_| sample_gumbel(rng));
    let logits = tape.ln(scores);
    let noised = tape.add_const(logits, noise);
    let scaled = tape.scale(noised, 1.0 / config.temperature);
    let relaxed = tape.softmax_rows(scaled);
    let keep_col = tape.slice_cols(relaxed, 0, 1);
    let keep_soft = tape.reshape(keep_col, &[n]);

    let soft_values = tape.value(keep_soft).clone();
    let mut keep_hard: Vec<bool> = soft_values
        .data()
        .iter()
        .map(|&p| p > config.threshold)
        .collect();
    if keep_hard.iter().all(|&k| !k) {
        let best = soft_values
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        keep_hard[best] = true;
    }
    // Straight-through: forward = hard, backward = soft.
    let hard_minus_soft = Tensor::from_vec(
        keep_hard
            .iter()
            .zip(soft_values.data().iter())
            .map(|(&h, &s)| f32::from(h) - s)
            .collect(),
        &[n],
    );
    let mask_st = tape.add_const(keep_soft, hard_minus_soft);
    GumbelDecision {
        keep_soft,
        mask_st,
        keep_hard,
    }
}

/// Deterministic (inference) keep decision from exact scores `[N, 2]`:
/// keep where `S̃[:, 0] ≥ threshold`, with the same keep-at-least-one rule
/// as the training path.
///
/// # Panics
///
/// Panics if `scores` is not `[N, 2]`.
pub fn threshold_decision(scores: &Tensor, threshold: f32) -> Vec<bool> {
    assert_eq!(scores.rank(), 2, "scores must be rank 2");
    assert_eq!(scores.dim(1), 2, "scores must have keep/prune columns");
    let mut keep: Vec<bool> = (0..scores.dim(0))
        .map(|r| scores.at(&[r, 0]) >= threshold)
        .collect();
    if keep.iter().all(|&k| !k) && !keep.is_empty() {
        let best = (0..scores.dim(0))
            .max_by(|&a, &b| scores.at(&[a, 0]).total_cmp(&scores.at(&[b, 0])))
            .unwrap();
        keep[best] = true;
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scores_tensor(keeps: &[f32]) -> Tensor {
        let n = keeps.len();
        Tensor::from_fn(&[n, 2], |ix| {
            if ix[1] == 0 {
                keeps[ix[0]]
            } else {
                1.0 - keeps[ix[0]]
            }
        })
    }

    #[test]
    fn gumbel_samples_have_right_mean() {
        // Standard Gumbel mean is the Euler–Mascheroni constant ≈ 0.5772.
        let mut rng = StdRng::seed_from_u64(0);
        let mean: f32 = (0..50_000).map(|_| sample_gumbel(&mut rng)).sum::<f32>() / 50_000.0;
        assert!((mean - 0.5772).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn st_mask_forward_is_hard() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let s = tape.leaf(scores_tensor(&[0.95, 0.05, 0.9, 0.1]));
        let d = gumbel_softmax_st(&mut tape, s, GumbelConfig::default(), &mut rng);
        for (i, &h) in d.keep_hard.iter().enumerate() {
            let v = tape.value(d.mask_st).data()[i];
            assert_eq!(v, f32::from(h), "mask value must be exactly 0/1");
        }
    }

    #[test]
    fn st_mask_gradient_is_soft() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tape = Tape::new();
        let s = tape.leaf(scores_tensor(&[0.8, 0.2]));
        let d = gumbel_softmax_st(&mut tape, s, GumbelConfig::default(), &mut rng);
        let loss = tape.sum_all(d.mask_st);
        let grads = tape.backward(loss);
        // Gradient reaches the scores despite the hard forward.
        let g = grads.get(s).expect("scores must receive gradient");
        assert!(g.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn strong_scores_survive_noise_mostly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut kept = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut tape = Tape::new();
            let s = tape.leaf(scores_tensor(&[0.99, 0.01]));
            let d = gumbel_softmax_st(&mut tape, s, GumbelConfig::default(), &mut rng);
            if d.keep_hard[0] {
                kept += 1;
            }
        }
        assert!(kept > trials * 8 / 10, "kept only {kept}/{trials}");
    }

    #[test]
    fn at_least_one_token_survives() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let mut tape = Tape::new();
            let s = tape.leaf(scores_tensor(&[0.01, 0.02, 0.01]));
            let d = gumbel_softmax_st(&mut tape, s, GumbelConfig::default(), &mut rng);
            assert!(d.keep_hard.iter().any(|&k| k));
        }
        assert_eq!(
            threshold_decision(&scores_tensor(&[0.1, 0.3, 0.2]), 0.5),
            vec![false, true, false]
        );
    }

    #[test]
    fn lower_temperature_sharpens_soft_mask() {
        let sharpness = |tau: f32| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut tape = Tape::new();
            let s = tape.leaf(scores_tensor(&[0.7, 0.3, 0.6, 0.4]));
            let cfg = GumbelConfig {
                temperature: tau,
                threshold: 0.5,
            };
            let d = gumbel_softmax_st(&mut tape, s, cfg, &mut rng);
            tape.value(d.keep_soft)
                .data()
                .iter()
                .map(|&p| (p - 0.5).abs())
                .sum::<f32>()
        };
        assert!(sharpness(0.1) > sharpness(10.0));
    }

    #[test]
    fn threshold_decision_is_deterministic() {
        let s = scores_tensor(&[0.9, 0.49, 0.51]);
        assert_eq!(threshold_decision(&s, 0.5), vec![true, false, true]);
        assert_eq!(threshold_decision(&s, 0.5), vec![true, false, true]);
    }
}
