//! Static token-pruning baselines (paper Section II-D).
//!
//! Static pruning removes a *fixed* fraction of tokens for every image,
//! ignoring per-image information content. Three rules are provided:
//!
//! * [`StaticRule::CliffAttention`] — keep the top-k tokens by class-token
//!   attention (the EViT/ATS family of criteria);
//! * [`StaticRule::TokenNorm`] — keep the top-k tokens by embedding norm;
//! * [`StaticRule::Random`] — random keep (lower bound).
//!
//! These baselines share the backbone and the dense-repacking flow with the
//! adaptive model, so Fig. 2/Fig. 4 comparisons isolate exactly the decision
//! policy.

use crate::scratch::PruneScratch;
use heatvit_tensor::Tensor;
use heatvit_vit::VisionTransformer;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The static keep criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticRule {
    /// Rank tokens by mean class-token attention from the previous block.
    CliffAttention,
    /// Rank tokens by their embedding L2 norm.
    TokenNorm,
    /// Keep a uniformly random subset (seeded).
    Random,
}

/// One static pruning stage: in front of `block`, keep `ceil(ratio · N)`
/// tokens of the `N` current patch tokens.
#[derive(Debug, Clone, Copy)]
pub struct StaticStage {
    /// Block index the stage precedes.
    pub block: usize,
    /// Fraction of current patch tokens to keep, in `(0, 1]`.
    pub keep_ratio: f32,
}

/// A backbone with static (input-agnostic) token pruning.
///
/// `Clone` so a serving deployment can stamp out per-server replicas of one
/// configured baseline, matching the other backend types.
#[derive(Debug, Clone)]
pub struct StaticPrunedViT {
    backbone: VisionTransformer,
    stages: Vec<StaticStage>,
    rule: StaticRule,
    seed: u64,
}

/// Inference result of a statically pruned ViT.
#[derive(Debug, Clone)]
pub struct StaticInference {
    /// Classification logits `[1, classes]`.
    pub logits: Tensor,
    /// Token count entering each block.
    pub tokens_per_block: Vec<usize>,
}

// Serving worker pools own models and move them across threads; a future
// non-`Send`/`Sync` field must fail to build here rather than at the spawn
// site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StaticPrunedViT>();
};

impl StaticPrunedViT {
    /// Canonical variant label this backend registers in engine and serving
    /// report tables.
    pub const VARIANT: &'static str = "static-pruned";

    /// Wraps a backbone with the given stages and rule.
    ///
    /// # Panics
    ///
    /// Panics if any stage is out of range, out of order, or has an invalid
    /// ratio.
    pub fn new(
        backbone: VisionTransformer,
        stages: Vec<StaticStage>,
        rule: StaticRule,
        seed: u64,
    ) -> Self {
        let depth = backbone.config().depth;
        let mut last = 0;
        for s in &stages {
            assert!(s.block < depth, "stage block out of range");
            assert!(s.block >= last, "stages must be in block order");
            assert!(
                s.keep_ratio > 0.0 && s.keep_ratio <= 1.0,
                "keep ratio must be in (0, 1]"
            );
            last = s.block;
        }
        Self {
            backbone,
            stages,
            rule,
            seed,
        }
    }

    /// The wrapped backbone.
    pub fn backbone(&self) -> &VisionTransformer {
        &self.backbone
    }

    /// The installed pruning stages, in block order.
    pub fn stages(&self) -> &[StaticStage] {
        &self.stages
    }

    /// The token count entering each block, computed without running
    /// inference. Static pruning is input-agnostic, so this is *exact*:
    /// every image sees these counts (mirrors the clamp-and-ceil keep
    /// arithmetic of [`StaticPrunedViT::infer_with`] stage by stage).
    pub fn planned_tokens_per_block(&self) -> Vec<usize> {
        let depth = self.backbone.config().depth;
        let mut n_patches = self.backbone.config().num_patches();
        let mut out = Vec::with_capacity(depth);
        let mut stage_iter = self.stages.iter().peekable();
        for bi in 0..depth {
            if let Some(stage) = stage_iter.peek() {
                if stage.block == bi {
                    n_patches =
                        ((stage.keep_ratio * n_patches as f32).ceil() as usize).clamp(1, n_patches);
                    stage_iter.next();
                }
            }
            out.push(n_patches + 1); // + class token
        }
        out
    }

    /// Ranks current patch tokens; higher score = more informative.
    fn scores(&self, tokens: &Tensor, cls_attention: Option<&[f32]>, rng: &mut StdRng) -> Vec<f32> {
        let n = tokens.dim(0);
        match self.rule {
            StaticRule::CliffAttention => match cls_attention {
                Some(a) => a.to_vec(),
                // First block has no incoming attention; fall back to norms.
                None => (0..n).map(|r| row_norm(tokens, r)).collect(),
            },
            StaticRule::TokenNorm => (0..n).map(|r| row_norm(tokens, r)).collect(),
            StaticRule::Random => {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                let mut s = vec![0.0f32; n];
                for (rank, &i) in order.iter().enumerate() {
                    s[i] = rank as f32;
                }
                s
            }
        }
    }

    /// Inference with static pruning and dense repacking.
    pub fn infer(&self, image: &Tensor) -> StaticInference {
        self.infer_with(image, &mut PruneScratch::default())
    }

    /// [`StaticPrunedViT::infer`] reusing a caller-provided scratch
    /// workspace (bit-identical results; see
    /// [`PruneScratch`](crate::PruneScratch)).
    pub fn infer_with(&self, image: &Tensor, scratch: &mut PruneScratch) -> StaticInference {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tokens = self.backbone.patch_embed().infer(image);
        let mut tokens_per_block = Vec::with_capacity(self.backbone.config().depth);
        // Mean CLS attention over heads from the previous block, per current
        // patch token.
        let mut cls_attention: Option<Vec<f32>> = None;
        let mut stage_iter = self.stages.iter().peekable();
        for (bi, block) in self.backbone.blocks().iter().enumerate() {
            if let Some(stage) = stage_iter.peek() {
                if stage.block == bi {
                    let n_patches = tokens.dim(0) - 1;
                    let k =
                        ((stage.keep_ratio * n_patches as f32).ceil() as usize).clamp(1, n_patches);
                    tokens.slice_rows_into(1, tokens.dim(0), &mut scratch.patches);
                    let scores = self.scores(&scratch.patches, cls_attention.as_deref(), &mut rng);
                    // `pruned` doubles as the ranking-order buffer; `kept`
                    // receives the top-k, restored to block order.
                    scratch.pruned.clear();
                    scratch.pruned.extend(0..n_patches);
                    scratch
                        .pruned
                        .sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
                    scratch.kept.clear();
                    scratch.kept.extend_from_slice(&scratch.pruned[..k]);
                    scratch.kept.sort_unstable();
                    tokens.slice_rows_into(0, 1, &mut scratch.cls);
                    scratch
                        .patches
                        .gather_rows_into(&scratch.kept, &mut scratch.kept_rows);
                    Tensor::concat_rows_into(
                        &[&scratch.cls, &scratch.kept_rows],
                        &mut scratch.repacked,
                    );
                    std::mem::swap(&mut tokens, &mut scratch.repacked);
                    stage_iter.next();
                }
            }
            tokens_per_block.push(tokens.dim(0));
            let (out, maps) = block.infer_with(&tokens, None, &mut scratch.vit);
            // CLS attention to each patch token, averaged over heads.
            let n = tokens.dim(0);
            let mut attn = vec![0.0f32; n - 1];
            for map in &maps {
                for (j, a) in attn.iter_mut().enumerate() {
                    *a += map.at(&[0, j + 1]);
                }
            }
            for a in &mut attn {
                *a /= maps.len() as f32;
            }
            cls_attention = Some(attn);
            tokens = out;
        }
        StaticInference {
            logits: self.backbone.classify_tokens_infer(&tokens),
            tokens_per_block,
        }
    }

    /// Runs a batch of images through one shared scratch workspace.
    /// Equivalent to mapping [`StaticPrunedViT::infer`] over `images`.
    pub fn infer_batch(&self, images: &[Tensor]) -> Vec<StaticInference> {
        let mut scratch = PruneScratch::default();
        images
            .iter()
            .map(|image| self.infer_with(image, &mut scratch))
            .collect()
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).logits.argmax_rows()[0]
    }

    /// Multiply–accumulate count of one inference using the actual
    /// per-block token counts from `inference` (the static analogue of
    /// [`crate::PrunedViT::macs`]; ranking overhead is not charged since the
    /// rules reuse attention maps or norms the blocks already produce).
    pub fn macs(&self, inference: &StaticInference) -> u64 {
        self.macs_for_tokens(&inference.tokens_per_block)
    }

    /// [`StaticPrunedViT::macs`] at an arbitrary per-block token schedule
    /// (the cost-prediction entry point, typically over
    /// [`StaticPrunedViT::planned_tokens_per_block`]).
    pub fn macs_for_tokens(&self, tokens_per_block: &[usize]) -> u64 {
        let mut total = self.backbone.patch_embed().macs();
        for (i, block) in self.backbone.blocks().iter().enumerate() {
            total += block.macs(tokens_per_block[i]);
        }
        total + self.backbone.config().embed_dim as u64 * self.backbone.config().num_classes as u64
    }
}

fn row_norm(t: &Tensor, r: usize) -> f32 {
    t.row(r).iter().map(|&v| v * v).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_vit::ViTConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn backbone(seed: u64) -> (VisionTransformer, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
        (b, rng)
    }

    #[test]
    fn keeps_exactly_the_requested_count() {
        let (b, mut rng) = backbone(0);
        let model = StaticPrunedViT::new(
            b,
            vec![StaticStage {
                block: 2,
                keep_ratio: 0.5,
            }],
            StaticRule::TokenNorm,
            0,
        );
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        assert_eq!(out.tokens_per_block[0], 17);
        assert_eq!(out.tokens_per_block[2], 9); // ceil(0.5·16) + cls
    }

    #[test]
    fn same_count_for_every_image() {
        // The defining property of static pruning (paper Fig. 4 left).
        let (b, mut rng) = backbone(1);
        let model = StaticPrunedViT::new(
            b,
            vec![StaticStage {
                block: 1,
                keep_ratio: 0.6,
            }],
            StaticRule::CliffAttention,
            0,
        );
        let mut counts = Vec::new();
        for _ in 0..4 {
            let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
            counts.push(model.infer(&image).tokens_per_block[1]);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn attention_rule_uses_previous_block_maps() {
        let (b, mut rng) = backbone(2);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        // Stage after block 0 → attention data available.
        let model = StaticPrunedViT::new(
            b,
            vec![StaticStage {
                block: 1,
                keep_ratio: 0.4,
            }],
            StaticRule::CliffAttention,
            0,
        );
        let out = model.infer(&image);
        assert_eq!(out.tokens_per_block[1], 8); // ceil(0.4·16)=7 +1 cls
    }

    #[test]
    fn random_rule_is_seed_deterministic() {
        let (b1, mut rng) = backbone(3);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let (b2, _) = backbone(3);
        let stage = vec![StaticStage {
            block: 2,
            keep_ratio: 0.5,
        }];
        let m1 = StaticPrunedViT::new(b1, stage.clone(), StaticRule::Random, 7);
        let m2 = StaticPrunedViT::new(b2, stage, StaticRule::Random, 7);
        assert!(m1
            .infer(&image)
            .logits
            .allclose(&m2.infer(&image).logits, 0.0));
    }

    #[test]
    fn planned_tokens_match_inference_exactly() {
        // The whole point of the static baseline as a serving backend: its
        // cost is known before any image arrives.
        let (b, mut rng) = backbone(5);
        let model = StaticPrunedViT::new(
            b,
            vec![
                StaticStage {
                    block: 1,
                    keep_ratio: 0.7,
                },
                StaticStage {
                    block: 3,
                    keep_ratio: 0.5,
                },
            ],
            StaticRule::CliffAttention,
            0,
        );
        let planned = model.planned_tokens_per_block();
        for _ in 0..3 {
            let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
            let out = model.infer(&image);
            assert_eq!(out.tokens_per_block, planned);
            assert_eq!(model.macs_for_tokens(&planned), model.macs(&out));
        }
    }

    #[test]
    #[should_panic(expected = "block order")]
    fn stages_must_be_ordered() {
        let (b, _) = backbone(4);
        StaticPrunedViT::new(
            b,
            vec![
                StaticStage {
                    block: 4,
                    keep_ratio: 0.5,
                },
                StaticStage {
                    block: 2,
                    keep_ratio: 0.5,
                },
            ],
            StaticRule::TokenNorm,
            0,
        );
    }
}
