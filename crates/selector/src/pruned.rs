//! A ViT backbone with token selectors interleaved between blocks.
//!
//! This is the model HeatViT deploys (paper Fig. 1): selectors progressively
//! shrink the token matrix, pruned tokens are consolidated into a package
//! token, and the surviving tokens are repacked *densely* so every downstream
//! GEMM runs on a smaller dense matrix — exactly the accelerator's token
//! selection flow (Fig. 9).

use crate::packager::{package_tokens, package_tokens_tape};
use crate::scratch::PruneScratch;
use crate::selector::{InferDecision, TokenSelector, TrainDecision};
use heatvit_nn::{Module, Param, Tape, Var};
use heatvit_tensor::Tensor;
use heatvit_vit::VisionTransformer;
use rand::Rng;

/// Inference result of a pruned ViT.
#[derive(Debug, Clone)]
pub struct PrunedInference {
    /// Classification logits `[1, classes]`.
    pub logits: Tensor,
    /// Token count entering each block (including class/package tokens).
    pub tokens_per_block: Vec<usize>,
    /// Keep fraction decided by each selector, in placement order.
    pub selector_keep_fractions: Vec<f32>,
    /// For each selector, the original patch-grid indices that survived it
    /// (package/class tokens excluded). Used by the Fig. 4 visualization.
    pub surviving_patches: Vec<Vec<usize>>,
}

/// Differentiable forward result of a pruned ViT.
#[derive(Debug)]
pub struct PrunedTrainOutput {
    /// Classification logits `[1, classes]` on the tape.
    pub logits: Var,
    /// Mean Gumbel-soft keep probability per selector (`[1]` nodes) — the
    /// `D̂` term of the latency-sparsity loss (paper Eq. 20).
    pub selector_keep_means: Vec<Var>,
    /// Mean straight-through mask per selector (`[1]` nodes): the forward
    /// value is the *hard* keep fraction this Gumbel draw actually
    /// executed, while gradients flow through the soft relaxation. An
    /// observability output — the latency-sparsity penalty itself is built
    /// on [`PrunedTrainOutput::selector_keep_scores`].
    pub selector_mask_means: Vec<Var>,
    /// Exact keep-probability column per selector (`[N]` nodes, `N` = patch
    /// tokens entering that selector). The deterministic inference path
    /// thresholds these same scores at 0.5, so a loss built on them (the
    /// latency-sparsity ratio surrogate and the decisiveness regularizer)
    /// controls the keep rate the deployed model actually executes.
    pub selector_keep_scores: Vec<Var>,
    /// Hard keep fraction per selector for monitoring.
    pub selector_keep_fractions: Vec<f32>,
    /// Token count entering each block.
    pub tokens_per_block: Vec<usize>,
}

/// A backbone ViT plus per-block optional token selectors.
#[derive(Debug, Clone)]
pub struct PrunedViT {
    backbone: VisionTransformer,
    selectors: Vec<Option<TokenSelector>>,
    package_enabled: bool,
    /// Nominal keep ratio in force from each block on (fraction of the
    /// original patch tokens), used for cost prediction only — the
    /// selectors decide the actual per-image keep set.
    nominal_keep: Vec<f32>,
}

// Serving worker pools own models and move them across threads; a future
// non-`Send`/`Sync` field must fail to build here rather than at the spawn
// site.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PrunedViT>();
};

impl PrunedViT {
    /// Canonical variant label this backend registers in engine and serving
    /// report tables.
    pub const VARIANT: &'static str = "adaptive-pruned";

    /// Wraps a backbone with no selectors installed.
    pub fn new(backbone: VisionTransformer) -> Self {
        let depth = backbone.config().depth;
        Self {
            backbone,
            selectors: (0..depth).map(|_| None).collect(),
            package_enabled: true,
            nominal_keep: vec![1.0; depth],
        }
    }

    /// The wrapped backbone.
    pub fn backbone(&self) -> &VisionTransformer {
        &self.backbone
    }

    /// Mutable access to the backbone (fine-tuning).
    pub fn backbone_mut(&mut self) -> &mut VisionTransformer {
        &mut self.backbone
    }

    /// Enables or disables the token packager (the Fig. 12 "discard"
    /// ablation sets this to `false`).
    pub fn set_package_enabled(&mut self, enabled: bool) {
        self.package_enabled = enabled;
    }

    /// Whether pruned tokens are packaged rather than discarded.
    pub fn package_enabled(&self) -> bool {
        self.package_enabled
    }

    /// Installs `selector` in front of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn insert_selector(&mut self, block: usize, selector: TokenSelector) {
        assert!(block < self.selectors.len(), "block index out of range");
        self.selectors[block] = Some(selector);
    }

    /// Removes the selector in front of block `block`, returning it.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn remove_selector(&mut self, block: usize) -> Option<TokenSelector> {
        assert!(block < self.selectors.len(), "block index out of range");
        self.selectors[block].take()
    }

    /// The selector slots, one per block.
    pub fn selectors(&self) -> &[Option<TokenSelector>] {
        &self.selectors
    }

    /// Blocks that currently have a selector installed.
    pub fn selector_blocks(&self) -> Vec<usize> {
        self.selectors
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    /// Parameters of the installed selectors only, in block order — what the
    /// selector-tuning phase of the training loop steps while the backbone
    /// stays frozen at its (teacher) weights.
    pub fn selector_params(&self) -> Vec<&Param> {
        self.selectors
            .iter()
            .flatten()
            .flat_map(|s| s.params())
            .collect()
    }

    /// Mutable access to the selector parameters only (see
    /// [`PrunedViT::selector_params`]).
    pub fn selector_params_mut(&mut self) -> Vec<&mut Param> {
        self.selectors
            .iter_mut()
            .flatten()
            .flat_map(|s| s.params_mut())
            .collect()
    }

    /// Inference with dense token repacking.
    pub fn infer(&self, image: &Tensor) -> PrunedInference {
        self.infer_with(image, &mut PruneScratch::default())
    }

    /// [`PrunedViT::infer`] reusing a caller-provided scratch workspace.
    ///
    /// Bit-identical to the allocating path: the keep-mask partitions, the
    /// gathered/repacked token matrices, and the backbone activations all
    /// live in `scratch`, so a warmed-up workspace makes the repacking flow
    /// allocation-free per image — the software mirror of the accelerator's
    /// token-selection pipeline writing into fixed on-chip buffers (paper
    /// Fig. 9).
    pub fn infer_with(&self, image: &Tensor, scratch: &mut PruneScratch) -> PrunedInference {
        let mut tokens = self.backbone.patch_embed().infer(image);
        // Original patch index of each current row (None = class or package).
        scratch.origin.clear();
        scratch.origin.push(None);
        scratch.origin.extend((0..tokens.dim(0) - 1).map(Some));
        let mut tokens_per_block = Vec::with_capacity(self.backbone.config().depth);
        let mut fractions = Vec::new();
        let mut surviving = Vec::new();
        for (block, selector) in self.backbone.blocks().iter().zip(self.selectors.iter()) {
            if let Some(sel) = selector {
                let n = tokens.dim(0);
                tokens.slice_rows_into(1, n, &mut scratch.patches);
                let decision: InferDecision = sel.infer(&scratch.patches);
                scratch.kept.clear();
                scratch.pruned.clear();
                for (i, &keep) in decision.keep.iter().enumerate() {
                    if keep {
                        scratch.kept.push(i);
                    } else {
                        scratch.pruned.push(i);
                    }
                }
                fractions.push(decision.keep_fraction());
                surviving.push(
                    scratch
                        .kept
                        .iter()
                        .filter_map(|&i| scratch.origin[i + 1])
                        .collect::<Vec<usize>>(),
                );
                tokens.slice_rows_into(0, 1, &mut scratch.cls);
                scratch
                    .patches
                    .gather_rows_into(&scratch.kept, &mut scratch.kept_rows);
                scratch.new_origin.clear();
                scratch.new_origin.push(None);
                scratch
                    .new_origin
                    .extend(scratch.kept.iter().map(|&i| scratch.origin[i + 1]));
                let mut parts: Vec<&Tensor> = vec![&scratch.cls, &scratch.kept_rows];
                let package;
                if self.package_enabled {
                    scratch
                        .patches
                        .gather_rows_into(&scratch.pruned, &mut scratch.pruned_rows);
                    scratch.pruned_scores.clear();
                    scratch
                        .pruned_scores
                        .extend(scratch.pruned.iter().map(|&i| decision.keep_scores[i]));
                    if let Some(p) = package_tokens(&scratch.pruned_rows, &scratch.pruned_scores) {
                        package = p;
                        parts.push(&package);
                        scratch.new_origin.push(None);
                    }
                }
                Tensor::concat_rows_into(&parts, &mut scratch.repacked);
                drop(parts);
                // Hand the repacked matrix to `tokens` and recycle the old
                // token storage as the next stage's repack buffer.
                std::mem::swap(&mut tokens, &mut scratch.repacked);
                std::mem::swap(&mut scratch.origin, &mut scratch.new_origin);
            }
            tokens_per_block.push(tokens.dim(0));
            let (out, _) = block.infer_with(&tokens, None, &mut scratch.vit);
            tokens = out;
        }
        PrunedInference {
            logits: self.backbone.classify_tokens_infer(&tokens),
            tokens_per_block,
            selector_keep_fractions: fractions,
            surviving_patches: surviving,
        }
    }

    /// Runs a batch of images through one shared scratch workspace.
    /// Equivalent to mapping [`PrunedViT::infer`] over `images`, with warm
    /// buffers after the first image.
    pub fn infer_batch(&self, images: &[Tensor]) -> Vec<PrunedInference> {
        let mut scratch = PruneScratch::default();
        images
            .iter()
            .map(|image| self.infer_with(image, &mut scratch))
            .collect()
    }

    /// Differentiable forward with Gumbel-sampled hard pruning.
    ///
    /// Kept tokens are multiplied by their straight-through mask value
    /// (forward ×1, backward routes task gradients into the keep scores);
    /// pruned tokens reach later blocks only through the package token.
    pub fn forward_train(
        &self,
        tape: &mut Tape,
        image: &Tensor,
        rng: &mut impl Rng,
    ) -> PrunedTrainOutput {
        let mut tokens = self.backbone.patch_embed().forward(tape, image);
        let mut keep_means = Vec::new();
        let mut mask_means = Vec::new();
        let mut score_vars = Vec::new();
        let mut fractions = Vec::new();
        let mut tokens_per_block = Vec::with_capacity(self.backbone.config().depth);
        for (block, selector) in self.backbone.blocks().iter().zip(self.selectors.iter()) {
            if let Some(sel) = selector {
                let n = tape.dims(tokens)[0];
                let patches = tape.slice_rows(tokens, 1, n);
                let decision: TrainDecision = sel.forward_train(tape, patches, rng);
                let kept: Vec<usize> = decision
                    .keep_hard
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &k)| k.then_some(i))
                    .collect();
                let pruned: Vec<usize> = decision
                    .keep_hard
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &k)| (!k).then_some(i))
                    .collect();
                fractions.push(kept.len() as f32 / decision.keep_hard.len() as f32);
                keep_means.push(tape.mean_all(decision.keep_soft));
                mask_means.push(tape.mean_all(decision.mask_st));
                score_vars.push(decision.keep_scores);

                let cls = tape.slice_rows(tokens, 0, 1);
                let kept_tokens = tape.gather_rows(patches, &kept);
                // Straight-through weighting of the kept rows.
                let mask_mat = tape.reshape(decision.mask_st, &[n - 1, 1]);
                let kept_mask = tape.gather_rows(mask_mat, &kept);
                let kept_mask = tape.reshape(kept_mask, &[kept.len()]);
                let kept_tokens = tape.mul_col_broadcast(kept_tokens, kept_mask);
                let mut parts = vec![cls, kept_tokens];
                if self.package_enabled {
                    if let Some(p) =
                        package_tokens_tape(tape, patches, decision.keep_scores, &pruned)
                    {
                        parts.push(p);
                    }
                }
                tokens = tape.concat_rows(&parts);
            }
            tokens_per_block.push(tape.dims(tokens)[0]);
            let (out, _) = block.forward(tape, tokens, None, false);
            tokens = out;
        }
        PrunedTrainOutput {
            logits: self.backbone.classify_tokens(tape, tokens),
            selector_keep_means: keep_means,
            selector_mask_means: mask_means,
            selector_keep_scores: score_vars,
            selector_keep_fractions: fractions,
            tokens_per_block,
        }
    }

    /// Predicted class for one image.
    pub fn predict(&self, image: &Tensor) -> usize {
        self.infer(image).logits.argmax_rows()[0]
    }

    /// Multiply–accumulate count of one inference, including selector
    /// overhead, using the actual per-block token counts from `inference`.
    pub fn macs(&self, inference: &PrunedInference) -> u64 {
        self.macs_for_tokens(&inference.tokens_per_block)
    }

    /// [`PrunedViT::macs`] at an arbitrary per-block token schedule —
    /// the cost-prediction entry point (e.g. over
    /// [`PrunedViT::expected_tokens_per_block`], no inference needed).
    pub fn macs_for_tokens(&self, tokens_per_block: &[usize]) -> u64 {
        let mut total = self.backbone.patch_embed().macs();
        for (i, block) in self.backbone.blocks().iter().enumerate() {
            let n = tokens_per_block[i];
            total += block.macs(n);
            if let Some(sel) = &self.selectors[i] {
                total += sel.macs(n.saturating_sub(1));
            }
        }
        total + self.backbone.config().embed_dim as u64 * self.backbone.config().num_classes as u64
    }

    /// Declares the nominal keep ratio of the selector at `block`: the
    /// fraction of the *original* patch tokens expected to survive from
    /// that block on (the schedule's target keep, paper Table I). Cost
    /// prediction only — the selector still decides per image.
    ///
    /// # Panics
    ///
    /// Panics if `block` has no selector installed or `keep` is outside
    /// `(0, 1]`.
    pub fn set_nominal_keep(&mut self, block: usize, keep: f32) {
        assert!(
            block < self.selectors.len() && self.selectors[block].is_some(),
            "no selector installed at block {block}"
        );
        assert!(keep > 0.0 && keep <= 1.0, "keep ratio must be in (0, 1]");
        for k in self.nominal_keep.iter_mut().skip(block) {
            *k = keep;
        }
    }

    /// Nominal keep ratio in force at each block (1.0 until a
    /// [`PrunedViT::set_nominal_keep`] declaration takes effect).
    pub fn nominal_keep(&self) -> &[f32] {
        &self.nominal_keep
    }

    /// Expected token count entering each block under the declared nominal
    /// keep ratios: kept patches + class token + package token once pruning
    /// has begun (if packaging is enabled). With no declarations this is
    /// the dense schedule — a conservative (over-)estimate for cost
    /// prediction.
    pub fn expected_tokens_per_block(&self) -> Vec<usize> {
        let n = self.backbone.config().num_patches() as f32;
        self.nominal_keep
            .iter()
            .map(|&k| {
                let kept = ((k * n).ceil() as usize).clamp(1, n as usize);
                kept + 1 + usize::from(k < 1.0 && self.package_enabled)
            })
            .collect()
    }
}

impl Module for PrunedViT {
    fn params(&self) -> Vec<&Param> {
        let mut v = self.backbone.params();
        for s in self.selectors.iter().flatten() {
            v.extend(s.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = self.backbone.params_mut();
        for s in self.selectors.iter_mut().flatten() {
            v.extend(s.params_mut());
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heatvit_vit::ViTConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pruned_model(seed: u64) -> (PrunedViT, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let backbone = VisionTransformer::new(ViTConfig::micro(4), &mut rng);
        let mut model = PrunedViT::new(backbone);
        let dim = model.backbone().config().embed_dim;
        let heads = model.backbone().config().num_heads;
        model.insert_selector(2, TokenSelector::new(dim, heads, &mut rng));
        model.insert_selector(4, TokenSelector::new(dim, heads, &mut rng));
        (model, rng)
    }

    #[test]
    fn no_selectors_matches_backbone() {
        let mut rng = StdRng::seed_from_u64(0);
        let backbone = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
        let model = PrunedViT::new(backbone);
        let image = Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        assert!(out.logits.allclose(&model.backbone().infer(&image), 1e-5));
        assert!(out.selector_keep_fractions.is_empty());
    }

    #[test]
    fn token_counts_shrink_after_selectors() {
        let (model, mut rng) = pruned_model(1);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        assert_eq!(out.tokens_per_block.len(), 6);
        // Before the first selector the full 17 tokens flow.
        assert_eq!(out.tokens_per_block[0], 17);
        // After a selector the count can only shrink or stay (plus package).
        assert!(out.tokens_per_block[2] <= 18);
        assert!(out.tokens_per_block[4] <= out.tokens_per_block[2] + 1);
        assert_eq!(out.selector_keep_fractions.len(), 2);
    }

    #[test]
    fn surviving_patches_reference_original_grid() {
        let (model, mut rng) = pruned_model(2);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        for survivors in &out.surviving_patches {
            for &p in survivors {
                assert!(p < 16, "patch index {p} outside the 4x4 grid");
            }
        }
        // The second selector's survivors must be a subset of the first's.
        let first: std::collections::HashSet<_> =
            out.surviving_patches[0].iter().copied().collect();
        for p in &out.surviving_patches[1] {
            assert!(first.contains(p), "token {p} resurrected after pruning");
        }
    }

    #[test]
    fn forward_train_produces_ratio_terms() {
        let (model, mut rng) = pruned_model(3);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let out = model.forward_train(&mut tape, &image, &mut rng);
        assert_eq!(out.selector_keep_means.len(), 2);
        for &m in &out.selector_keep_means {
            let v = tape.value(m).data()[0];
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(tape.dims(out.logits), &[1, 4]);
    }

    #[test]
    fn mask_mean_forward_equals_hard_fraction() {
        let (model, mut rng) = pruned_model(7);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let out = model.forward_train(&mut tape, &image, &mut rng);
        assert_eq!(out.selector_mask_means.len(), 2);
        for (&m, &frac) in out
            .selector_mask_means
            .iter()
            .zip(out.selector_keep_fractions.iter())
        {
            let v = tape.value(m).data()[0];
            assert!(
                (v - frac).abs() < 1e-6,
                "ST mask mean {v} must forward the hard keep fraction {frac}"
            );
        }
    }

    #[test]
    fn selector_params_cover_exactly_the_installed_selectors() {
        let (mut model, _) = pruned_model(8);
        let expected: usize = model
            .selectors()
            .iter()
            .flatten()
            .map(|s| s.params().len())
            .sum();
        assert!(expected > 0);
        assert_eq!(model.selector_params().len(), expected);
        assert_eq!(model.selector_params_mut().len(), expected);
        // Selector params are disjoint from the backbone's.
        let backbone_ids: std::collections::HashSet<u64> =
            model.backbone().params().iter().map(|p| p.id()).collect();
        for p in model.selector_params() {
            assert!(!backbone_ids.contains(&p.id()));
        }
    }

    #[test]
    fn gradients_reach_selector_parameters() {
        let (mut model, mut rng) = pruned_model(4);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let mut tape = Tape::new();
        let out = model.forward_train(&mut tape, &image, &mut rng);
        let ce = tape.cross_entropy(out.logits, &[1]);
        // Add the ratio term so keep_soft also receives gradient.
        let mut loss = ce;
        for &m in &out.selector_keep_means {
            let target = tape.scalar(0.7);
            let diff = tape.sub(m, target);
            let sq = tape.mul(diff, diff);
            loss = tape.add(loss, sq);
        }
        let grads = tape.backward(loss);
        tape.write_grads(&grads, model.params_mut());
        let blocks = model.selector_blocks();
        for b in blocks {
            let sel = model.selectors()[b].as_ref().unwrap();
            let with_grad = sel.params().iter().filter(|p| p.grad().is_some()).count();
            assert!(
                with_grad * 2 >= sel.params().len(),
                "selector at block {b}: only {with_grad}/{} params got grads",
                sel.params().len()
            );
        }
    }

    #[test]
    fn discard_mode_omits_package_token() {
        let (mut model, mut rng) = pruned_model(5);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let with_package = model.infer(&image);
        model.set_package_enabled(false);
        let without = model.infer(&image);
        // If anything was pruned, discard mode has one token fewer.
        let s1 = with_package.selector_keep_fractions[0];
        if s1 < 1.0 {
            assert!(without.tokens_per_block[2] < with_package.tokens_per_block[2]);
        }
    }

    #[test]
    fn macs_reflect_token_reduction() {
        let (model, mut rng) = pruned_model(6);
        let image = Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng);
        let out = model.infer(&image);
        let pruned_macs = model.macs(&out);
        let dense_macs = model.backbone().macs();
        if out.selector_keep_fractions.iter().any(|&f| f < 0.9) {
            assert!(pruned_macs < dense_macs);
        }
    }
}
