//! Float GEMM vs. int8 GEMM (the FPGA's DSP-packed arithmetic).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit_bench::token_matrix;
use heatvit_quant::{qmatmul, QTensor};

fn bench_quant_gemm(c: &mut Criterion) {
    let a = token_matrix(128, 128, 0);
    let b = token_matrix(128, 128, 1);
    let qa = QTensor::quantize(&a);
    let qb = QTensor::quantize(&b);

    c.bench_function("quant/f32 matmul 128x128", |bench| {
        bench.iter(|| black_box(&a).matmul(black_box(&b)))
    });
    c.bench_function("quant/int8 qmatmul 128x128", |bench| {
        bench.iter(|| qmatmul(black_box(&qa), black_box(&qb)))
    });
    c.bench_function("quant/calibrate+quantize 128x128", |bench| {
        bench.iter(|| QTensor::quantize(black_box(&a)))
    });
}

criterion_group!(benches, bench_quant_gemm);
criterion_main!(benches);
