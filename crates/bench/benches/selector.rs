//! Token-selector scoring cost.
//!
//! The selector must be cheap relative to the blocks it prunes for (paper
//! Table II charges it at well under one block). This bench measures the
//! multi-head classifier scoring pass and the full decision (scoring +
//! thresholding) on a DeiT-T-shaped token matrix.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit_bench::token_matrix;
use heatvit_selector::TokenSelector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_selector_scoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let selector = TokenSelector::new(192, 3, &mut rng);
    let tokens = token_matrix(196, 192, 1);

    c.bench_function("selector/classifier scores 196x192", |b| {
        b.iter(|| selector.classifier().infer(black_box(&tokens)))
    });
    c.bench_function("selector/full decision 196x192", |b| {
        b.iter(|| selector.infer(black_box(&tokens)))
    });
}

criterion_group!(benches, bench_selector_scoring);
criterion_main!(benches);
