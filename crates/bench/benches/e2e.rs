//! End-to-end engine throughput: dense vs. pruned variants on one batch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit::Engine;
use heatvit_bench::{
    adaptive_pruned, micro_backbone, quantized_adaptive, quantized_dense, static_pruned,
    synthetic_batch,
};

fn bench_engine_variants(c: &mut Criterion) {
    let images = synthetic_batch(4, 0);

    let mut dense = Engine::new(micro_backbone(0));
    c.bench_function("e2e/dense micro batch=4", |b| {
        b.iter(|| dense.infer_batch(black_box(&images)))
    });

    let mut adaptive = Engine::new(adaptive_pruned(micro_backbone(0), 0));
    c.bench_function("e2e/adaptive-pruned micro batch=4", |b| {
        b.iter(|| adaptive.infer_batch(black_box(&images)))
    });

    let mut fixed = Engine::new(static_pruned(micro_backbone(0)));
    c.bench_function("e2e/static-pruned micro batch=4", |b| {
        b.iter(|| fixed.infer_batch(black_box(&images)))
    });

    let backbone = micro_backbone(0);
    let mut int8_dense = Engine::new(quantized_dense(&backbone));
    c.bench_function("e2e/int8-dense micro batch=4", |b| {
        b.iter(|| int8_dense.infer_batch(black_box(&images)))
    });

    let mut int8_adaptive = Engine::new(quantized_adaptive(&backbone));
    c.bench_function("e2e/int8-adaptive micro batch=4", |b| {
        b.iter(|| int8_adaptive.infer_batch(black_box(&images)))
    });
}

criterion_group!(benches, bench_engine_variants);
criterion_main!(benches);
