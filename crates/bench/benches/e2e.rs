//! End-to-end engine throughput: every [`BackendKind`] on one batch,
//! driven through the type-erased `Engine<Backend>`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit::{BackendKind, Engine};
use heatvit_bench::{build_backend, synthetic_batch};

fn bench_engine_variants(c: &mut Criterion) {
    let images = synthetic_batch(4, 0);
    for kind in BackendKind::ALL {
        let engine = Engine::builder(build_backend(kind)).build();
        c.bench_function(&format!("e2e/{kind} micro batch=4"), |b| {
            b.iter(|| engine.infer_batch(black_box(&images)))
        });
    }
}

criterion_group!(benches, bench_engine_variants);
criterion_main!(benches);
