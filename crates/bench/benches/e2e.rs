fn main() {}
