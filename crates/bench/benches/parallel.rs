//! Thread-scaling of the sharded engine: the same batch pushed through
//! worker pools of 1, 2, 4, and 8 threads for each backend kind. Outputs
//! are bitwise identical across the sweep — only the wall clock moves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit::{BackendKind, Engine};
use heatvit_bench::{build_backend, synthetic_batch};

const BATCH: usize = 16;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The four distinct execution pipelines; the int8-dense kind shares the
/// int8-adaptive code path, so it adds no scaling information.
const KINDS: [BackendKind; 4] = [
    BackendKind::Dense,
    BackendKind::AdaptivePruned,
    BackendKind::StaticPruned,
    BackendKind::Int8Adaptive,
];

fn bench_parallel_engine(c: &mut Criterion) {
    let images = synthetic_batch(BATCH, 0);
    for kind in KINDS {
        for threads in THREADS {
            let engine = Engine::builder(build_backend(kind))
                .threads(threads)
                .build();
            c.bench_function(
                &format!("parallel/{kind} batch={BATCH} threads={threads}"),
                |b| b.iter(|| engine.infer_batch(black_box(&images))),
            );
        }
    }
}

criterion_group!(benches, bench_parallel_engine);
criterion_main!(benches);
