//! Thread-scaling of the sharded engine: the same batch pushed through
//! worker pools of 1, 2, 4, and 8 threads for each of the four backends
//! (dense, adaptive-pruned, static-pruned, int8-adaptive). Outputs are
//! bitwise identical across the sweep — only the wall clock moves.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit::{Engine, InferenceModel};
use heatvit_bench::{
    adaptive_pruned, micro_backbone, quantized_adaptive, static_pruned, synthetic_batch,
};
use heatvit_tensor::Tensor;

const BATCH: usize = 16;
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One backend's sweep: a fresh engine per pool size, same images throughout.
fn sweep<M: InferenceModel>(
    c: &mut Criterion,
    name: &str,
    build: impl Fn() -> M,
    images: &[Tensor],
) {
    for &threads in &THREADS {
        let mut engine = Engine::with_threads(build(), threads);
        c.bench_function(
            &format!("parallel/{name} batch={BATCH} threads={threads}"),
            |b| b.iter(|| engine.infer_batch(black_box(images))),
        );
    }
}

fn bench_parallel_engine(c: &mut Criterion) {
    let images = synthetic_batch(BATCH, 0);
    sweep(c, "dense", || micro_backbone(0), &images);
    sweep(
        c,
        "adaptive",
        || adaptive_pruned(micro_backbone(0), 0),
        &images,
    );
    sweep(c, "static", || static_pruned(micro_backbone(0)), &images);
    let backbone = micro_backbone(0);
    sweep(c, "int8", || quantized_adaptive(&backbone), &images);
}

criterion_group!(benches, bench_parallel_engine);
criterion_main!(benches);
