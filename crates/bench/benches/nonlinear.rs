//! Exact vs. polynomial-approximated nonlinearities (paper Section V-D).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit_bench::token_matrix;
use heatvit_quant::approx::{
    gelu_approx_tensor, softmax_approx_rows, DEFAULT_DELTA1, DEFAULT_DELTA2,
};
use heatvit_tensor::scalar;

fn bench_gelu(c: &mut Criterion) {
    let x = token_matrix(196, 192, 0);
    c.bench_function("nonlinear/gelu exact 196x192", |b| {
        b.iter(|| black_box(&x).map(scalar::gelu))
    });
    c.bench_function("nonlinear/gelu approx (Eq. 12) 196x192", |b| {
        b.iter(|| gelu_approx_tensor(black_box(&x), DEFAULT_DELTA1))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let scores = token_matrix(197, 197, 1);
    c.bench_function("nonlinear/softmax exact 197x197", |b| {
        b.iter(|| black_box(&scores).softmax_rows())
    });
    c.bench_function("nonlinear/softmax shift-approx (Eq. 13) 197x197", |b| {
        b.iter(|| softmax_approx_rows(black_box(&scores), DEFAULT_DELTA2))
    });
}

criterion_group!(benches, bench_gelu, bench_softmax);
criterion_main!(benches);
