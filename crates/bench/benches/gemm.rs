//! Dense GEMM vs. pruned-repacked GEMM.
//!
//! The core hardware argument of HeatViT: after token pruning, gathering the
//! surviving rows into a smaller dense matrix keeps the GEMM engine fully
//! utilized (paper Fig. 9). This bench measures the DeiT-T-shaped QKV
//! projection GEMM at the full 197-token count, at a 60%-kept repacked
//! count, and the repack (gather) cost itself — plus the other hot ViT
//! shapes the packed microkernels target: the MLP fc1 expansion
//! (197×192 · 192×576), the per-head attention-score product Q·Kᵀ, and the
//! int8 counterparts of all three. The README's "Kernel performance" table
//! is produced from these entries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit_bench::token_matrix;
use heatvit_quant::{qmatmul_transb_with, qmatmul_with, QTensor};
use heatvit_tensor::Tensor;

const TOKENS: usize = 197;
const DIM: usize = 192;
/// MLP hidden width of the DeiT-T-shaped block (4× expansion).
const HIDDEN: usize = 4 * DIM;
/// Per-head width of the attention-score product (192 / 3 heads).
const HEAD_DIM: usize = 64;

fn kept_indices(frac: f64) -> Vec<usize> {
    let kept = (TOKENS as f64 * frac) as usize;
    (0..kept).map(|i| i * TOKENS / kept).collect()
}

fn bench_dense_gemm(c: &mut Criterion) {
    let x = token_matrix(TOKENS, DIM, 0);
    let w = token_matrix(DIM, DIM, 1);
    c.bench_function("gemm/dense 197x192 . 192x192", |b| {
        b.iter(|| black_box(&x).matmul(black_box(&w)))
    });
}

fn bench_repacked_gemm(c: &mut Criterion) {
    let x = token_matrix(TOKENS, DIM, 0);
    let w = token_matrix(DIM, DIM, 1);
    let keep = kept_indices(0.6);
    let repacked = x.gather_rows(&keep);
    c.bench_function("gemm/repacked 118x192 . 192x192", |b| {
        b.iter(|| black_box(&repacked).matmul(black_box(&w)))
    });
    c.bench_function("gemm/repack gather 197->118 rows", |b| {
        let mut out = Tensor::default();
        b.iter(|| {
            black_box(&x).gather_rows_into(black_box(&keep), &mut out);
        })
    });
}

fn bench_attention_scores(c: &mut Criterion) {
    let q = token_matrix(TOKENS, HEAD_DIM, 2);
    let k = token_matrix(TOKENS, HEAD_DIM, 3);
    c.bench_function("gemm/attention scores Q.K^T 197x64", |b| {
        b.iter(|| black_box(&q).matmul_transb(black_box(&k)))
    });
}

fn bench_mlp_fc1_gemm(c: &mut Criterion) {
    let x = token_matrix(TOKENS, DIM, 4);
    let w = token_matrix(DIM, HIDDEN, 5);
    c.bench_function("gemm/mlp fc1 197x192 . 192x576", |b| {
        b.iter(|| black_box(&x).matmul(black_box(&w)))
    });
}

fn bench_int8_gemm(c: &mut Criterion) {
    let x = QTensor::quantize(&token_matrix(TOKENS, DIM, 6));
    let w = QTensor::quantize(&token_matrix(DIM, DIM, 7));
    let w_fc1 = QTensor::quantize(&token_matrix(DIM, HIDDEN, 8));
    let q = QTensor::quantize(&token_matrix(TOKENS, HEAD_DIM, 9));
    let k = QTensor::quantize(&token_matrix(TOKENS, HEAD_DIM, 10));
    let mut pack = Vec::new();
    let mut out = Tensor::default();
    c.bench_function("gemm/int8 dense 197x192 . 192x192", |b| {
        b.iter(|| qmatmul_with(black_box(&x), black_box(&w), &mut pack, &mut out))
    });
    c.bench_function("gemm/int8 mlp fc1 197x192 . 192x576", |b| {
        b.iter(|| qmatmul_with(black_box(&x), black_box(&w_fc1), &mut pack, &mut out))
    });
    c.bench_function("gemm/int8 attn scores Q.K^T 197x64", |b| {
        b.iter(|| qmatmul_transb_with(black_box(&q), black_box(&k), &mut pack, &mut out))
    });
}

criterion_group!(
    benches,
    bench_dense_gemm,
    bench_repacked_gemm,
    bench_attention_scores,
    bench_mlp_fc1_gemm,
    bench_int8_gemm,
);
criterion_main!(benches);
