//! Dense GEMM vs. pruned-repacked GEMM.
//!
//! The core hardware argument of HeatViT: after token pruning, gathering the
//! surviving rows into a smaller dense matrix keeps the GEMM engine fully
//! utilized (paper Fig. 9). This bench measures the DeiT-T-shaped QKV
//! projection GEMM at the full 197-token count, at a 60%-kept repacked
//! count, and the repack (gather) cost itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use heatvit_bench::token_matrix;
use heatvit_tensor::Tensor;

const TOKENS: usize = 197;
const DIM: usize = 192;

fn kept_indices(frac: f64) -> Vec<usize> {
    let kept = (TOKENS as f64 * frac) as usize;
    (0..kept).map(|i| i * TOKENS / kept).collect()
}

fn bench_dense_gemm(c: &mut Criterion) {
    let x = token_matrix(TOKENS, DIM, 0);
    let w = token_matrix(DIM, DIM, 1);
    c.bench_function("gemm/dense 197x192 . 192x192", |b| {
        b.iter(|| black_box(&x).matmul(black_box(&w)))
    });
}

fn bench_repacked_gemm(c: &mut Criterion) {
    let x = token_matrix(TOKENS, DIM, 0);
    let w = token_matrix(DIM, DIM, 1);
    let keep = kept_indices(0.6);
    let repacked = x.gather_rows(&keep);
    c.bench_function("gemm/repacked 118x192 . 192x192", |b| {
        b.iter(|| black_box(&repacked).matmul(black_box(&w)))
    });
    c.bench_function("gemm/repack gather 197->118 rows", |b| {
        let mut out = Tensor::default();
        b.iter(|| {
            black_box(&x).gather_rows_into(black_box(&keep), &mut out);
        })
    });
}

fn bench_attention_scores(c: &mut Criterion) {
    let q = token_matrix(TOKENS, 64, 2);
    let k = token_matrix(TOKENS, 64, 3);
    c.bench_function("gemm/attention scores Q.K^T 197x64", |b| {
        b.iter(|| black_box(&q).matmul_transb(black_box(&k)))
    });
}

criterion_group!(
    benches,
    bench_dense_gemm,
    bench_repacked_gemm,
    bench_attention_scores
);
criterion_main!(benches);
