//! Benchmark harness for the HeatViT reproduction (see `src/bin/` for per-table/figure binaries).
pub use heatvit_vit as vit;
