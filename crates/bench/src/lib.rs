//! Benchmark harness for the HeatViT reproduction.
//!
//! The criterion microbenches live in `benches/` (GEMM repacking, selector
//! scoring, int8 GEMM, nonlinearity approximations, end-to-end engine) and
//! the `run_all` binary prints the dense vs. adaptive-pruned vs.
//! static-pruned vs. int8-quantized throughput table over a synthetic
//! batch. This library provides the shared fixtures so every bench measures
//! the same models and data.

#![warn(missing_docs)]

pub use heatvit::telemetry::json;

use heatvit::{Backend, BackendKind};
use heatvit_data::{SyntheticConfig, SyntheticDataset};
use heatvit_quant::{QuantPruneStage, QuantizedViT};
use heatvit_selector::{PrunedViT, StaticPrunedViT, StaticRule, StaticStage, TokenSelector};
use heatvit_tensor::Tensor;
use heatvit_tfprune::{ClsAttnPrunedViT, TfStage, TokenMergeViT, TopKPrunedViT, TopKStage};
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of classes used by every benchmark fixture.
pub const BENCH_CLASSES: usize = 8;

/// The dense micro backbone (weights deterministic in `seed`).
pub fn micro_backbone(seed: u64) -> VisionTransformer {
    let mut rng = StdRng::seed_from_u64(seed);
    VisionTransformer::new(ViTConfig::micro(BENCH_CLASSES), &mut rng)
}

/// The adaptive-pruned variant over a given backbone: selectors in front of
/// blocks 1 and 3 (a two-stage schedule on the 6-block micro config).
pub fn adaptive_pruned(backbone: VisionTransformer, seed: u64) -> PrunedViT {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut model = PrunedViT::new(backbone);
    for &block in &DEMO_SELECTOR_BLOCKS {
        model.insert_selector(block, TokenSelector::new(dim, heads, &mut rng));
    }
    // Declare the schedule's keep targets so the model's cost profile (and
    // every latency model over it) sees the planned token counts instead of
    // a dense-shaped upper bound.
    for (&block, &keep) in DEMO_SELECTOR_BLOCKS.iter().zip(DEMO_STAGE_KEEPS.iter()) {
        model.set_nominal_keep(block, keep);
    }
    model
}

/// The static-pruned variant over a given backbone, with keep ratios
/// matched to a typical adaptive schedule (0.7 then 0.6).
pub fn static_pruned(backbone: VisionTransformer) -> StaticPrunedViT {
    StaticPrunedViT::new(
        backbone,
        DEMO_SELECTOR_BLOCKS
            .iter()
            .zip(DEMO_STAGE_KEEPS.iter())
            .map(|(&block, &keep_ratio)| StaticStage { block, keep_ratio })
            .collect(),
        StaticRule::CliffAttention,
        0,
    )
}

/// The ratio stages every training-free ratio variant shares: the demo
/// schedule's blocks and keeps, so cls-attn and token-merge run at exactly
/// the keep rate of the learned/static baselines (and of each other — the
/// mergence-vs-hard-drop agreement comparison is only meaningful at equal
/// keep rates).
pub fn tf_stages() -> Vec<TfStage> {
    DEMO_SELECTOR_BLOCKS
        .iter()
        .zip(DEMO_STAGE_KEEPS.iter())
        .map(|(&block, &keep_ratio)| TfStage { block, keep_ratio })
        .collect()
}

/// The training-free CLS-attention hard-drop variant over a given backbone,
/// at the demo schedule's stages.
pub fn cls_attn_pruned(backbone: VisionTransformer) -> ClsAttnPrunedViT {
    ClsAttnPrunedViT::new(backbone, tf_stages())
}

/// The training-free token-mergence variant over a given backbone — same
/// stages (and therefore the same token schedule and MAC budget, up to the
/// charged merge overhead) as [`cls_attn_pruned`].
pub fn token_merge(backbone: VisionTransformer) -> TokenMergeViT {
    TokenMergeViT::new(backbone, tf_stages())
}

/// Keep *counts* of the fixed-layer top-k demo schedule (12 then 7 of the
/// micro config's 16 patch tokens — close to the ratio family's 12/8, so
/// the report rows are comparable).
pub const DEMO_TOPK_KEEPS: [usize; 2] = [12, 7];

/// Blocks the fixed-layer top-k demo schedule prunes in front of (offset
/// from the ratio family's to exercise distinct depths).
pub const DEMO_TOPK_BLOCKS: [usize; 2] = [2, 4];

/// The training-free fixed-layer top-k variant over a given backbone:
/// static keep counts [`DEMO_TOPK_KEEPS`] at blocks [`DEMO_TOPK_BLOCKS`],
/// ranked by CLS attention plus value-norm share.
pub fn topk_pruned(backbone: VisionTransformer) -> TopKPrunedViT {
    TopKPrunedViT::new(
        backbone,
        DEMO_TOPK_BLOCKS
            .iter()
            .zip(DEMO_TOPK_KEEPS.iter())
            .map(|(&block, &keep)| TopKStage { block, keep })
            .collect(),
    )
}

/// Seed of the held-out calibration batch (disjoint from the bench batch).
pub const CALIBRATION_SEED: u64 = 0xCA11B;

/// The int8-dense variant: the backbone's weights quantized to int8, static
/// activation scales calibrated on a held-out synthetic batch.
pub fn quantized_dense(backbone: &VisionTransformer) -> QuantizedViT {
    let mut model = QuantizedViT::from_float(backbone);
    model.calibrate(&synthetic_batch(8, CALIBRATION_SEED));
    model
}

/// The int8-adaptive variant: the quantized backbone with attention-driven
/// token pruning in front of blocks 2 and 4 — a two-stage schedule on the
/// 6-block micro config, each stage pruning patch tokens whose class-token
/// attention falls below 0.9× the mean.
pub fn quantized_adaptive(backbone: &VisionTransformer) -> QuantizedViT {
    let mut model = QuantizedViT::from_float(backbone).with_prune_stages(vec![
        QuantPruneStage {
            block: 2,
            attn_frac: 0.9,
        },
        QuantPruneStage {
            block: 4,
            attn_frac: 0.9,
        },
    ]);
    // Nominal keep per attention-threshold stage for cost prediction (the
    // 0.9×-mean cut retains roughly the demo schedule's fraction; actual
    // counts are input-dependent, which the cost profile marks inexact).
    model.set_nominal_keep(&DEMO_STAGE_KEEPS);
    model.calibrate(&synthetic_batch(8, CALIBRATION_SEED));
    model
}

/// The canonical benchmark fixture for a [`BackendKind`]: the micro
/// backbone (seed 0) wrapped in the kind's pruning/quantization
/// configuration, type-erased into a [`Backend`] handle.
///
/// Every kind shares the same backbone weights, so cross-backend rows in
/// `run_all`/`serve_demo` compare pruning and quantization policy, not
/// initialization luck. Deterministic: two calls build bit-identical
/// models.
pub fn build_backend(kind: BackendKind) -> Backend {
    let backbone = micro_backbone(0);
    match kind {
        BackendKind::Dense => Backend::from(backbone),
        BackendKind::AdaptivePruned => Backend::from(adaptive_pruned(backbone, 0)),
        BackendKind::StaticPruned => Backend::from(static_pruned(backbone)),
        BackendKind::ClsAttn => Backend::from(cls_attn_pruned(backbone)),
        BackendKind::TokenMerge => Backend::from(token_merge(backbone)),
        BackendKind::TopK => Backend::from(topk_pruned(backbone)),
        BackendKind::Int8Dense => Backend::from(quantized_dense(&backbone)),
        BackendKind::Int8Adaptive => Backend::from(quantized_adaptive(&backbone)),
    }
}

/// A batch of synthetic 32×32 images matching the micro config.
pub fn synthetic_batch(count: usize, seed: u64) -> Vec<Tensor> {
    SyntheticDataset::generate(SyntheticConfig::micro(), count, seed)
        .iter()
        .map(|s| s.image.clone())
        .collect()
}

/// A deterministic `[n, d]` token matrix for layer-level benches.
pub fn token_matrix(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::rand_normal(&[n, d], 0.0, 1.0, &mut rng)
}

/// Blocks the hand-placed two-stage demo schedule installs selectors in
/// front of (shared by [`adaptive_pruned`], [`static_pruned`], and the
/// `train_demo` students so every variant prunes at the same depths).
pub const DEMO_SELECTOR_BLOCKS: [usize; 2] = [1, 3];

/// Per-stage keep ratios of the hand-placed two-stage demo schedule
/// (each stage's fraction of *incoming* patch tokens, the convention
/// [`StaticStage::keep_ratio`] and the trainer's keep targets share).
pub const DEMO_STAGE_KEEPS: [f32; 2] = [0.7, 0.6];

/// The hand-placed two-stage schedule in the paper's *cumulative* notation:
/// the per-stage ratios of [`DEMO_STAGE_KEEPS`] at the
/// [`DEMO_SELECTOR_BLOCKS`] placements compound to 0.7 and 0.42 of the
/// original patch tokens. This is the baseline the learned block-to-stage
/// pipeline is compared against.
pub fn hand_placed_schedule() -> heatvit_selector::PruningSchedule {
    let mut cumulative = 1.0f32;
    heatvit_selector::PruningSchedule::new(
        DEMO_SELECTOR_BLOCKS
            .iter()
            .zip(DEMO_STAGE_KEEPS.iter())
            .map(|(&block, &keep)| {
                cumulative *= keep;
                heatvit_selector::SelectorPlacement {
                    block,
                    target_keep: cumulative,
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_consistent() {
        let a = micro_backbone(1);
        let b = micro_backbone(1);
        let img = &synthetic_batch(1, 0)[0];
        assert_eq!(a.infer(img).data(), b.infer(img).data());
        assert_eq!(img.dims(), &[3, 32, 32]);

        let pruned = adaptive_pruned(a, 1);
        let out = pruned.infer(img);
        assert_eq!(out.tokens_per_block.len(), 6);

        let stat = static_pruned(b);
        assert_eq!(stat.infer(img).tokens_per_block.len(), 6);
    }

    #[test]
    fn hand_placed_schedule_compounds_the_stage_keeps() {
        let s = hand_placed_schedule();
        assert_eq!(s.len(), 2);
        assert_eq!(s.placements()[0].block, DEMO_SELECTOR_BLOCKS[0]);
        assert!((s.placements()[0].target_keep - 0.7).abs() < 1e-6);
        assert_eq!(s.placements()[1].block, DEMO_SELECTOR_BLOCKS[1]);
        assert!((s.placements()[1].target_keep - 0.42).abs() < 1e-6);
    }

    #[test]
    fn build_backend_registers_every_kind_under_its_label() {
        use heatvit::InferenceModel;
        for kind in BackendKind::ALL {
            let backend = build_backend(kind);
            assert_eq!(backend.kind(), kind);
            assert_eq!(backend.variant(), kind.label());
        }
        // Same weights per kind: two builds are bit-identical.
        let img = &synthetic_batch(1, 5)[0];
        let mut scratch = heatvit_selector::PruneScratch::default();
        let a = build_backend(BackendKind::AdaptivePruned).infer_one(img, &mut scratch);
        let b = build_backend(BackendKind::AdaptivePruned).infer_one(img, &mut scratch);
        assert_eq!(a.logits.data(), b.logits.data());
    }

    #[test]
    fn training_free_fixtures_share_the_demo_keep_rates() {
        let backbone = micro_backbone(1);
        let cls = cls_attn_pruned(backbone.clone());
        let merge = token_merge(backbone.clone());
        // Equal keep rates by construction: the mergence-vs-hard-drop
        // comparison is at identical token schedules.
        assert_eq!(
            cls.planned_tokens_per_block(),
            merge.planned_tokens_per_block()
        );
        // And they mirror the static baseline's schedule (same ceil
        // arithmetic over the same blocks/ratios).
        let stat = static_pruned(backbone.clone());
        assert_eq!(cls.planned_tokens_per_block(), {
            let img = &synthetic_batch(1, 7)[0];
            stat.infer(img).tokens_per_block
        });
        let topk = topk_pruned(backbone);
        assert_eq!(topk.planned_tokens_per_block(), vec![17, 17, 13, 13, 8, 8]);
    }

    #[test]
    fn quantized_fixtures_are_calibrated_and_named() {
        let backbone = micro_backbone(1);
        let dense = quantized_dense(&backbone);
        assert!(dense.is_calibrated());
        assert_eq!(dense.variant_name(), "int8-dense");
        let adaptive = quantized_adaptive(&backbone);
        assert!(adaptive.is_calibrated());
        assert_eq!(adaptive.variant_name(), "int8-adaptive");
        let img = &synthetic_batch(1, 3)[0];
        assert_eq!(dense.infer(img).tokens_per_block, vec![17; 6]);
        assert!(adaptive.infer(img).tokens_per_block[4] <= 18);
    }
}
